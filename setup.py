"""Legacy setup shim.

This environment is offline and lacks the ``wheel`` package, so the
PEP 517 editable-install path is unavailable; this file lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
