"""Figure 5 benchmark: application-level benchmarks.

Shape assertions (Section 5.6):
- cat+tr: "M3 is about twice as fast".
- tar/untar: "M3 requires only 20% and 16% ... of the time Linux takes"
  (we accept the same direction within a tolerant band).
- find: "Linux is slightly faster" than M3.
- sqlite: "only slightly faster on M3" (compute-dominated).
"""

from repro.eval import fig5_apps
from benchmarks.conftest import write_result


def test_fig5_apps(benchmark, results_dir):
    results = benchmark.pedantic(fig5_apps.run, rounds=1, iterations=1)

    def ratio(name):
        return results[name]["M3"]["total"] / results[name]["Lx"]["total"]

    # cat+tr about twice as fast on M3.
    assert 0.35 <= ratio("cat+tr") <= 0.65, ratio("cat+tr")
    # tar and untar: M3 several times faster (paper: 20%/16%).
    assert ratio("tar") <= 0.40, ratio("tar")
    assert ratio("untar") <= 0.40, ratio("untar")
    # find: Linux slightly faster.
    assert 1.0 < ratio("find") <= 1.25, ratio("find")
    # sqlite: M3 only slightly faster.
    assert 0.85 <= ratio("sqlite") < 1.0, ratio("sqlite")

    # Lx-$ sits between M3 and Lx wherever copies matter.
    for name in ("cat+tr", "tar", "untar"):
        systems = results[name]
        assert systems["M3"]["total"] < systems["Lx-$"]["total"] <= \
            systems["Lx"]["total"]

    # The App stacks are identical across systems for the native pair
    # and the trace replays (same computation on both systems).
    for name, systems in results.items():
        assert systems["M3"]["app"] == systems["Lx"]["app"]

    write_result(results_dir, "fig5_apps", fig5_apps.bench_table(results))
