"""Figure 3 benchmark: syscalls and file operations.

Shape assertions from the paper (Section 5.3-5.4):
- M3 null syscall ~200 cycles (~30 transfer + ~170 software); Linux 410.
- M3 beats Linux on read/write/pipe by several times; Lx-$ in between.
- M3's time is transfer-dominated; Linux's is OS-dominated.
"""

from repro.eval import fig3_micro
from benchmarks.conftest import write_result


def test_fig3_micro(benchmark, results_dir):
    results = benchmark.pedantic(fig3_micro.run, rounds=1, iterations=1)

    syscall = results["syscall"]
    assert 150 <= syscall["M3"]["total"] <= 260  # "about 200 cycles"
    assert syscall["Lx"]["total"] == 410
    assert 20 <= syscall["M3"]["xfers"] <= 45  # "about 30 cycles" transfers
    assert 140 <= syscall["M3"]["other"] <= 200  # "the other 170 cycles"

    for op in ("read", "write", "pipe"):
        m3 = results[op]["M3"]["total"]
        lx = results[op]["Lx"]["total"]
        lx_cache = results[op]["Lx-$"]["total"]
        # M3 wins by a clear factor; the warm-cache variant sits between.
        assert lx / m3 > 2.5, f"{op}: Lx/M3 = {lx / m3:.2f}"
        assert m3 < lx_cache < lx, f"{op}: ordering broken"
        # "a large portion of the difference is made up by data transfers":
        # M3's stack is transfer-dominated, Linux's is not.
        assert results[op]["M3"]["xfers"] > results[op]["M3"]["other"]
        assert results[op]["Lx"]["other"] > results[op]["M3"]["other"]

    # Write is more expensive than read on Linux (block zeroing).
    assert results["write"]["Lx"]["total"] > results["read"]["Lx"]["total"]

    write_result(results_dir, "fig3_micro", fig3_micro.bench_table(results))
