"""Ablation benchmarks: design-choice claims made in the paper's prose.

See :mod:`repro.eval.ablations` for what each sweep probes.
"""

from repro.eval import ablations
from benchmarks.conftest import write_result


def test_buffer_size_sweep(benchmark, results_dir):
    """"M3 benefits from larger buffer sizes until all available space
    in the SPM is used" (Section 5.4)."""
    rows = benchmark.pedantic(ablations.buffer_size_sweep, rounds=1,
                              iterations=1)
    times = [cycles for _size, cycles in rows]
    assert all(a > b for a, b in zip(times, times[1:]))  # strictly better
    # ...but with diminishing returns: the last doubling gains far less
    # than the first one.
    first_gain = times[0] - times[1]
    last_gain = times[-2] - times[-1]
    assert last_gain < first_gain / 4
    write_result(results_dir, "abl_buffer_size",
                 ablations.buffer_size_table(rows))


def test_pipe_slot_sweep(benchmark, results_dir):
    """One ring slot serialises the pipe ends; more slots pipeline them."""
    rows = benchmark.pedantic(ablations.pipe_slot_sweep, rounds=1,
                              iterations=1)
    by_slots = dict(rows)
    assert by_slots[1] > by_slots[4] > by_slots[8] * 0.99
    assert by_slots[1] / by_slots[16] > 1.5  # pipelining pays
    write_result(results_dir, "abl_pipe_slots",
                 ablations.pipe_slot_table(rows))


def test_hop_latency_sweep(benchmark, results_dir):
    """Syscall cost grows (mildly) with NoC hop latency."""
    rows = benchmark.pedantic(ablations.hop_latency_sweep, rounds=1,
                              iterations=1)
    times = [cycles for _hop, cycles in rows]
    assert all(a <= b for a, b in zip(times, times[1:]))
    assert times[-1] > times[0]
    # Even a slow NoC keeps the syscall well under Linux's 410 cycles:
    # the software path dominates, not the wire.
    assert times[-1] < 410
    write_result(results_dir, "abl_hop_latency",
                 ablations.hop_latency_table(rows))


def test_placement_sweep(benchmark, results_dir):
    """Placing an app farther from the kernel costs hop cycles."""
    rows = benchmark.pedantic(ablations.placement_sweep, rounds=1,
                              iterations=1)
    times = [cycles for _node, cycles in rows]
    assert times[-1] > times[0]
    assert all(a <= b for a, b in zip(times, times[1:]))
    write_result(results_dir, "abl_placement",
                 ablations.placement_table(rows))


def test_multiplexing_tradeoff(benchmark, results_dir):
    """Section 3.4's trade: dedicated PEs are faster; a shared PE costs
    wall time (context switches) but far fewer cores."""
    trade = benchmark.pedantic(ablations.multiplexing_tradeoff, rounds=1,
                               iterations=1)
    dedicated = trade["dedicated"]
    shared = trade["shared"]
    assert dedicated["wall"] < shared["wall"]
    assert shared["pes"] < dedicated["pes"]
    # The shared run must pay real switch costs (2 per worker at least).
    assert shared["switches"] >= 2 * ablations.WORKER_COUNT
    # But it is not pathological: bounded by serialisation + switches.
    assert shared["wall"] < 8 * dedicated["wall"]
    write_result(results_dir, "abl_multiplexing",
                 ablations.multiplexing_table(trade))


def test_cache_vs_bulk(benchmark, results_dir):
    """Section 7's cache extension vs the prototype's SPM+bulk model:
    bulk DTU transfers win for streaming, caches win for hot sets."""
    results = benchmark.pedantic(ablations.cache_vs_bulk, rounds=1,
                                 iterations=1)
    assert results["stream_bulk"] < results["stream_cached"] / 5
    assert results["hot_cached"] < results["hot_bulk"]
    write_result(results_dir, "abl_cache", ablations.cache_table(results))


def test_multi_fs_instances(benchmark, results_dir):
    """Section 7 future work: additional m3fs instances recover the
    scalability the single instance loses in Figure 6's find run."""
    rows = benchmark.pedantic(ablations.multi_fs_sweep, rounds=1,
                              iterations=1)
    by_servers = dict(rows)
    assert by_servers[2] < 0.7 * by_servers[1]
    assert by_servers[4] < by_servers[2]
    write_result(results_dir, "abl_multi_fs",
                 ablations.multi_fs_table(rows))
