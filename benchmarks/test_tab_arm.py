"""Section 5.2 benchmark: Linux on Xtensa vs ARM.

Paper numbers: syscall 410 (Xtensa) / 320 (ARM); creating a 2 MiB file
has ~2.2 M / ~2.4 M cycles overhead; copying it ~3.2 M on both.
"""

from repro.eval import tab_arm
from benchmarks.conftest import write_result


def test_tab_arm(benchmark, results_dir):
    rows = benchmark.pedantic(tab_arm.run, rounds=1, iterations=1)
    metrics = {name: (xtensa, arm) for name, xtensa, arm in rows}

    syscall = metrics["null syscall (cycles)"]
    assert syscall == (410, 320)  # exact paper values

    create = metrics["create 2 MiB file, overhead (cycles)"]
    copy = metrics["copy 2 MiB file, overhead (cycles)"]
    # Magnitudes within ~25% of the paper's 2.2M/2.4M and 3.2M/3.2M.
    assert 1.65e6 <= create[0] <= 2.75e6
    assert 1.8e6 <= create[1] <= 3.0e6
    assert create[1] > create[0]  # ARM slightly higher, as reported
    assert 2.4e6 <= copy[0] <= 4.0e6
    assert 2.4e6 <= copy[1] <= 4.0e6
    # "3.2 million cycles overhead on both architectures": near-equal.
    assert abs(copy[0] - copy[1]) / copy[0] < 0.10

    write_result(results_dir, "tab_arm", tab_arm.bench_table(rows))
