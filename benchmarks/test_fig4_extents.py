"""Figure 4 benchmark: read/write time vs blocks per extent.

Shape assertions (Section 5.5): times fall monotonically with extent
size, improvements beyond the 256-block sweet spot are marginal, and
the fragmented (16-block) end is clearly worse.
"""

from repro import params
from repro.eval import fig4_extents
from benchmarks.conftest import write_result


def test_fig4_extents(benchmark, results_dir):
    rows = benchmark.pedantic(fig4_extents.run, rounds=1, iterations=1)
    by_blocks = {blocks: (read, write) for blocks, read, write in rows}

    reads = [read for _b, read, _w in rows]
    writes = [write for _b, _r, write in rows]
    # Monotone improvement with larger extents.
    assert all(a >= b for a, b in zip(reads, reads[1:]))
    assert all(a >= b for a, b in zip(writes, writes[1:]))

    # The fragmented end is visibly worse than the sweet spot...
    assert by_blocks[16][0] > 1.10 * by_blocks[256][0]
    assert by_blocks[16][1] > 1.10 * by_blocks[256][1]
    # ...while everything beyond 256 gains almost nothing ("the sweet
    # spot is 256 blocks").  Writes keep a little allocation overhead
    # per extent, so their plateau tolerance is slightly wider.
    assert by_blocks[256][0] < 1.02 * by_blocks[2048][0]
    assert by_blocks[256][1] < 1.06 * by_blocks[2048][1]
    assert params.M3FS_APPEND_BLOCKS == 256

    write_result(results_dir, "fig4_extents", fig4_extents.bench_table(rows))
