"""Shared benchmark plumbing: the results directory for rendered tables."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, table: str) -> None:
    (results_dir / f"{name}.txt").write_text(table + "\n")
