"""Figure 6 rerun with a partitioned mesh (multi-kernel scale-out).

Shape assertions (Section 7): splitting the mesh into kernel domains,
each with its own kernel and m3fs instance, shrinks the 16-instance
degradation — the per-instance average strictly improves from 1 to 4
domains for both find and untar.
"""

from repro.eval import fig6_multikernel
from benchmarks.conftest import write_result


def test_fig6_multikernel(benchmark, results_dir):
    results = benchmark.pedantic(
        fig6_multikernel.run,
        rounds=1,
        iterations=1,
    )

    averages = {
        bench: {count: avg for count, avg, _norm in series}
        for bench, series in results.items()
    }

    # Strictly improving with every added kernel domain.
    for bench in ("find", "untar"):
        series = averages[bench]
        assert series[2] < series[1], f"{bench} did not improve at 2 domains"
        assert series[4] < series[2], f"{bench} did not improve at 4 domains"

    # find is contention-dominated: two domains roughly halve its
    # per-instance time, well beyond untar's DRAM-bound improvement.
    assert averages["find"][2] < 0.6 * averages["find"][1]
    assert averages["untar"][4] < 0.9 * averages["untar"][1]

    write_result(results_dir, "fig6_multikernel",
                 fig6_multikernel.bench_table(results))
