"""Figure 6 benchmark: scalability with a single kernel and m3fs.

Shape assertions (Section 5.7): "all benchmarks scale very well with up
to 4 instances"; at 16, find (and untar, allocation-heavy) degrade the
most, while tar and sqlite stay acceptable.
"""

from repro.eval import fig6_scale
from benchmarks.conftest import write_result

INSTANCE_COUNTS = [1, 4, 16]


def test_fig6_scale(benchmark, results_dir):
    results = benchmark.pedantic(
        fig6_scale.run,
        kwargs={"instance_counts": INSTANCE_COUNTS},
        rounds=1,
        iterations=1,
    )

    normalised = {
        bench: {count: norm for count, _avg, norm in series}
        for bench, series in results.items()
    }

    # Near-perfect scaling to 4 instances for every benchmark.
    for bench, series in normalised.items():
        assert series[4] <= 1.10, f"{bench} already degraded at 4: {series[4]}"

    # find degrades the most at 16 — "the performance of find and untar
    # decreases significantly".
    worst = max(normalised, key=lambda b: normalised[b][16])
    assert worst == "find"
    assert normalised["find"][16] > 1.8
    assert normalised["untar"][16] > normalised["tar"][16]
    # tar and sqlite "are still acceptable".
    assert normalised["tar"][16] < 1.4
    assert normalised["sqlite"][16] < 1.3

    write_result(results_dir, "fig6_scale", fig6_scale.bench_table(results))
