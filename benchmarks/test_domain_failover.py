"""Domain-failover benchmark: kill one of two kernel domains mid-run.

Shape assertions:
- Every workload in the surviving domain ends correctly: the ``find``
  replay completes, the live-migrated VPE finishes on its new PE with
  an intact SPM journal, and the cross-domain session opened before the
  kill worked.
- The parked cross-domain wait is answered with an error (not left
  hanging), the dead domain's PEs are quarantined, and the cached
  service-owner entry for the dead domain's m3fs is purged.
- Detection happens after the kill, failover completes after
  detection, and no parked wait is left unanswered.
- Seeded runs are deterministic: a fresh run renders a byte-identical
  report.
"""

from benchmarks.conftest import write_result
from repro.eval import domain_failover


def test_domain_failover(benchmark, results_dir):
    results = benchmark.pedantic(domain_failover.run, rounds=1, iterations=1)

    find_verdict, find_wall = results["find"]
    assert find_verdict == "find-ok"
    assert find_wall > 0

    mig_verdict, origin, new_node, final_node, moved = results["migration"]
    assert mig_verdict == "mig-ok", "SPM journal corrupted by migration"
    assert moved and final_node == new_node != origin
    assert results["migrations"] == 1

    spill_outcome, session_ok, _done = results["spill"]
    assert session_ok, "cross-domain session never worked"
    assert "err-replied" in spill_outcome, spill_outcome

    assert results["detected_at"] > results["killed_at"]
    assert results["failover_done_at"] >= results["detected_at"]
    assert results["dead_domain_quarantined"]
    assert results["service_cache_purged"]
    assert results["unanswered_waits"] == 0

    rpc = results["rpc"]
    assert rpc["heartbeats"] > 0
    assert rpc["timeouts"] > 0, "heartbeat verdicts should be timeouts"

    # Determinism: a fresh run with the same seed renders byte-identically.
    table = domain_failover.bench_table(results)
    assert domain_failover.bench_table(domain_failover.run()) == table

    write_result(results_dir, "domain_failover", table)
