"""Figure 7 benchmark: the FFT accelerator.

Shape assertions (Section 5.8): the accelerator is ~30x faster than the
software FFT; M3's pipe/exec/file overheads are far below Linux's; and
the parent-side code is identical between the two M3 configurations.
"""

import pytest

from repro import params
from repro.eval import fig7_accel
from benchmarks.conftest import write_result


def test_fig7_accel(benchmark, results_dir):
    results = benchmark.pedantic(fig7_accel.run, rounds=1, iterations=1)
    linux = results["Linux"]
    m3_soft = results["M3"]
    m3_accel = results["M3+accelerator"]

    # "about a factor of 30" on the FFT itself.
    assert m3_soft["fft"] / m3_accel["fft"] == pytest.approx(
        params.FFT_ACCEL_SPEEDUP, rel=0.05
    )
    # End-to-end: the accelerated chain crushes both software versions.
    assert m3_accel["total"] < 0.2 * linux["total"]
    assert m3_soft["total"] < linux["total"]
    # The software FFT dominates both software configurations.
    assert m3_soft["fft"] / m3_soft["total"] > 0.9
    # M3's surrounding overhead (everything but FFT) is several times
    # smaller than Linux's — "the fast abstractions of M3 lower the bar
    # for using accelerators".
    linux_overhead = linux["total"] - linux["fft"]
    m3_overhead = m3_accel["total"] - m3_accel["fft"]
    assert m3_overhead < 0.5 * linux_overhead

    write_result(results_dir, "fig7_accel", fig7_accel.bench_table(results))
