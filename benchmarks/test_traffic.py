"""Traffic-serving benchmark: the open-loop throughput–latency eval.

Shape assertions:
- Every load point completes its full request count — the serving
  stack (loadgen -> NIC wire -> gateways -> routed kv tier) loses
  nothing, clean or faulted.
- The curve behaves like an open-loop curve: goodput grows with the
  offered rate, and the heaviest point pays for it with a p99 well
  above the lightest point's.
- Bursty arrivals at the same offered rate inflate the tail.
- The faulted point really dropped packets, recovered all of them via
  DTU retransmits, and still completed everything.
- The session router spread the gateway sessions over both replicas,
  and both replicas served requests.
- Seeded runs are deterministic: a fresh run renders a byte-identical
  report.
"""

from benchmarks.conftest import write_result
from repro.eval import traffic


def test_traffic(benchmark, results_dir):
    results = benchmark.pedantic(traffic.run, rounds=1, iterations=1)

    points = results["curve"] + [results["bursty"], results["faulted"]]
    for point in points:
        assert point["completed"] == point["sent"] == traffic.REQUESTS, (
            point["name"], point["completed"])
        assert point["kv_errors"] == 0

    lightest, heaviest = results["curve"][0], results["curve"][-1]
    assert heaviest["goodput"] > 3 * lightest["goodput"]
    assert heaviest["p99"] > 4 * lightest["p99"], "no queueing at saturation?"
    assert all(point["p50"] <= point["p99"] <= point["p999"]
               for point in points)

    reference = next(point for point in results["curve"]
                     if point["mean_gap"] == traffic.REFERENCE_GAP)
    assert results["bursty"]["p99"] > 2 * reference["p99"]

    faulted = results["faulted"]
    assert faulted["fault_events"] > 0
    assert faulted["noc_lost"] == faulted["fault_events"]
    assert faulted["retransmits"] > 0, "losses should be retransmitted"

    assert sorted(reference["route_counts"]) == ["kv0", "kv1"]
    assert all(served > 0
               for served in reference["replica_requests"].values())

    tail = results["tail"]
    # the slowest request sits inside the p999 sub-bucket's bound
    assert reference["p50"] < tail["latency"] <= reference["p999"]
    assert sum(tail["breakdown"].values()) == tail["traced_cycles"]
    assert tail["breakdown"].get("service", 0) > 0, "kv never on the path?"

    # Determinism: a fresh run with the same seeds renders byte-identically.
    table = traffic.bench_table(results)
    assert traffic.bench_table(traffic.run()) == table

    write_result(results_dir, "traffic", table)
