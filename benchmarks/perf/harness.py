"""Measure simulator wall-clock performance; write/check BENCH_perf.json.

Two measurements:

- **Engine throughput**: a synthetic workload of communicating
  processes (mailbox ping-pong rings plus timer churn) run on a bare
  :class:`repro.sim.Simulator`; reported as simulated cycles per
  wall-clock second and executed callbacks per second.
- **Per-figure wall time**: every evaluation output (each figure,
  each ablation sweep, the Figure-6 point sweep, the profile run)
  timed individually through the same workers ``repro.eval.runall``
  uses, plus the suite total.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.harness --write
    PYTHONPATH=src python -m benchmarks.perf.harness --check

``--write`` refreshes the committed ``BENCH_perf.json`` baseline;
``--check`` exits non-zero if the engine throughput drops, or the
total wall time grows, by more than ``--tolerance`` (default 30%)
against the baseline.  Per-figure times are reported in the check
output but only the aggregate numbers gate, because individual small
figures are too noisy on shared CI runners.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.eval import ablations, fig6_multikernel, fig6_scale, runall
from repro.sim import Mailbox, Simulator

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "BENCH_perf.json"

#: engine workload geometry: RINGS independent mailbox rings of WIDTH
#: processes each, passing a token HOPS times with a 3-cycle delay per
#: hop, plus one timer process per ring churning Signal timeouts.
ENGINE_RINGS = 8
ENGINE_WIDTH = 4
ENGINE_HOPS = 4_000
SCHEMA_VERSION = 1


# -- engine throughput ---------------------------------------------------------


def _ring(sim: Simulator, ring: int, counters: list) -> None:
    mailboxes = [
        Mailbox(sim, f"ring{ring}.mbox{i}") for i in range(ENGINE_WIDTH)
    ]

    def stage(this: int):
        nxt = mailboxes[(this + 1) % ENGINE_WIDTH]
        while True:
            token = yield mailboxes[this].get()
            counters[0] += 1
            if token == 0:
                return
            yield sim.delay(3)
            nxt.put(token - 1 if this == ENGINE_WIDTH - 1 else token)

    for index in range(ENGINE_WIDTH):
        sim.process(stage(index), name=f"r{ring}s{index}")
    mailboxes[0].put(ENGINE_HOPS)


def engine_workload(sim: Simulator | None = None) -> tuple[int, int]:
    """Run the synthetic workload; (simulated cycles, tokens passed)."""
    if sim is None:
        sim = Simulator()
    counters = [0]
    for ring in range(ENGINE_RINGS):
        _ring(sim, ring, counters)
    sim.run()
    return sim.now, counters[0]


#: repeat the engine microbenchmark and keep the fastest run: the
#: best-of filters scheduler noise on shared runners (observed swings
#: are ±20% on one sample), which a 30% gate cannot absorb.
ENGINE_REPEATS = 3


def measure_engine() -> dict:
    best_elapsed, cycles, tokens = None, 0, 0
    for _ in range(ENGINE_REPEATS):
        start = time.perf_counter()
        cycles, tokens = engine_workload()
        elapsed = time.perf_counter() - start
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return {
        "simulated_cycles": cycles,
        "wall_seconds": round(best_elapsed, 4),
        "sim_cycles_per_second": round(cycles / best_elapsed, 1),
        "token_hops": tokens,
    }


def measure_engine_sharded() -> dict:
    """Engine throughput through the exact-mode sharded facade.

    The same workload as :func:`measure_engine`, driven through
    ``ShardedSimulator`` at each shard count — this is the facade the
    full system runs on under ``M3System(shards=n)``, so the ratio to
    the monolithic number is the per-event cost of the (cycle, seq)
    heap merge.
    """
    from repro.noc.topology import MeshTopology
    from repro.sim.shard import ShardPlan, ShardedSimulator

    topology = MeshTopology(4, 3)
    nodes = list(range(8))
    rates: dict[str, float] = {}
    for shards in (1, 2, 4):
        chunk, extra = divmod(len(nodes), shards)
        domains, base = [], 0
        for index in range(shards):
            width = chunk + (1 if index < extra else 0)
            domains.append(nodes[base:base + width])
            base += width
        plan = ShardPlan.from_domains(domains, shards, topology, 3)
        best = None
        for _ in range(ENGINE_REPEATS):
            start = time.perf_counter()
            cycles, _tokens = engine_workload(ShardedSimulator(plan))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        rates[str(shards)] = round(cycles / best, 1)
    return rates


# -- per-figure wall time ------------------------------------------------------


def measure_figures() -> dict:
    """Wall seconds per evaluation output, via the runall workers."""
    timings: dict[str, float] = {}
    for name in sorted(runall._FIGURES):
        start = time.perf_counter()
        runall._FIGURES[name]()
        timings[name] = round(time.perf_counter() - start, 3)
    for name in sorted(ablations.BENCH_SWEEPS):
        sweep, table = ablations.BENCH_SWEEPS[name]
        start = time.perf_counter()
        table(sweep())
        timings[name] = round(time.perf_counter() - start, 3)
    start = time.perf_counter()
    for benchmark in runall.FIG6_BENCHMARKS:
        for count in runall.FIG6_INSTANCE_COUNTS:
            fig6_scale.average_instance_time(benchmark, count)
    timings["fig6_scale"] = round(time.perf_counter() - start, 3)
    start = time.perf_counter()
    for benchmark in fig6_multikernel.BENCHMARKS:
        for kernel_count in fig6_multikernel.KERNEL_COUNTS:
            fig6_multikernel.average_instance_time(benchmark, kernel_count)
    timings["fig6_multikernel"] = round(time.perf_counter() - start, 3)
    return timings


def measure_traffic_shards() -> dict:
    """Wall seconds for the traffic evals per shard count.

    Times the reference traffic point and the 4-domain variant at each
    shard count — the numbers the sharded-simulation work gates on:
    sharding must not cost wall time at the default shape, and the
    4-domain variant is where the boundary crossings actually flow.
    """
    from repro.eval import traffic as traffic_eval
    from repro.workloads import traffic

    reference = traffic_eval._curve_profile(traffic_eval.REFERENCE_GAP)
    timings: dict[str, dict[str, float]] = {"traffic": {}, "variant4": {}}
    for shards in (1, 2):
        start = time.perf_counter()
        traffic.run_profile(reference, shards=shards)
        timings["traffic"][str(shards)] = round(
            time.perf_counter() - start, 3
        )
    for shards in (1, 2, 4):
        start = time.perf_counter()
        traffic.run_profile(
            reference,
            shards=shards,
            pe_count=traffic_eval.VARIANT_PE_COUNT,
            kernel_count=traffic_eval.VARIANT_KERNEL_COUNT,
            gateways=traffic_eval.VARIANT_GATEWAYS,
            ep_count=traffic_eval.VARIANT_EP_COUNT,
        )
        timings["variant4"][str(shards)] = round(
            time.perf_counter() - start, 3
        )
    return timings


def measure_autoscale_boot() -> dict:
    """The warm-vs-cold replica boot comparison, in *simulated* cycles.

    Deterministic (sampled from the autoscaler's warm-boot study, not
    wall clock): cycles for a checkpoint-seeded clone to serve fully
    stocked, versus a cold boot plus the client-side refill of the
    same keys.  Tracked in the baseline so a regression in the
    checkpoint/migration path shows up as a shrinking delta.
    """
    from repro.eval import autoscale

    boot = autoscale.boot_comparison()
    return {
        "keys": boot["keys"],
        "warm_cycles": boot["warm_cycles"],
        "cold_stocked_cycles": boot["cold_stocked_cycles"],
        "warm_vs_cold_delta_cycles": boot["delta_cycles"],
    }


def measure() -> dict:
    engine = measure_engine()
    engine_sharded = measure_engine_sharded()
    figures = measure_figures()
    traffic_shards = measure_traffic_shards()
    return {
        "schema": SCHEMA_VERSION,
        "engine": engine,
        "engine_sharded_cycles_per_second": engine_sharded,
        "figures": figures,
        "traffic_shards_seconds": traffic_shards,
        "autoscale_boot": measure_autoscale_boot(),
        "total_seconds": round(sum(figures.values()), 3),
    }


# -- baseline write/check ------------------------------------------------------


def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regressions beyond ``tolerance``; empty means the gate passes."""
    failures = []
    old_rate = baseline["engine"]["sim_cycles_per_second"]
    new_rate = current["engine"]["sim_cycles_per_second"]
    if new_rate < old_rate * (1.0 - tolerance):
        failures.append(
            f"engine throughput regressed: {new_rate:,.0f} vs baseline "
            f"{old_rate:,.0f} sim cycles/s (tolerance {tolerance:.0%})"
        )
    old_total = baseline["total_seconds"]
    new_total = current["total_seconds"]
    if new_total > old_total * (1.0 + tolerance):
        failures.append(
            f"figure suite regressed: {new_total:.2f}s vs baseline "
            f"{old_total:.2f}s (tolerance {tolerance:.0%})"
        )
    return failures


def report(current: dict, baseline: dict | None) -> str:
    lines = [
        f"engine: {current['engine']['sim_cycles_per_second']:,.0f} "
        f"sim cycles/s over {current['engine']['simulated_cycles']:,} "
        f"cycles",
        "sharded engine (exact mode): " + ", ".join(
            f"shards={shards}: {rate:,.0f}/s" for shards, rate in
            current["engine_sharded_cycles_per_second"].items()
        ),
    ]
    for label, per_shard in current["traffic_shards_seconds"].items():
        lines.append(f"  {label:<20s} " + "  ".join(
            f"shards={shards}: {seconds:.3f}s"
            for shards, seconds in per_shard.items()
        ))
    boot = current.get("autoscale_boot")
    if boot is not None:
        lines.append(
            f"autoscale boot ({boot['keys']} keys): warm "
            f"{boot['warm_cycles']:,} vs cold+refill "
            f"{boot['cold_stocked_cycles']:,} sim cycles "
            f"(warm saves {boot['warm_vs_cold_delta_cycles']:,})"
        )
    for name, seconds in sorted(current["figures"].items()):
        line = f"  {name:<20s} {seconds:7.3f}s"
        if baseline is not None and name in baseline.get("figures", {}):
            line += f"  (baseline {baseline['figures'][name]:.3f}s)"
        lines.append(line)
    lines.append(f"total figure wall time: {current['total_seconds']:.3f}s")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf.harness",
        description="Measure simulator wall-clock performance.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true",
        help=f"write the measurement to {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional regression for --check (default 0.30)",
    )
    options = parser.parse_args(argv)

    baseline = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())

    current = measure()
    print(report(current, baseline if options.check else None))

    if options.write:
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if options.check:
        if baseline is None:
            print(f"no baseline at {BASELINE_PATH}; run with --write first",
                  file=sys.stderr)
            return 2
        failures = check(current, baseline, options.tolerance)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
