"""Wall-clock performance harness for the simulator itself.

Unlike ``benchmarks/`` (which asserts *simulated* results against the
paper), this package measures how fast the simulator runs on the host:
raw engine throughput in simulated cycles per wall-clock second, and
per-figure wall time for the evaluation suite.  ``harness.py`` writes
and checks the committed ``BENCH_perf.json`` baseline at the repo root.
"""
