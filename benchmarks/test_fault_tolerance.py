"""Fault-tolerance benchmark: loss sweep + PE-kill recovery.

Shape assertions:
- Every microbenchmark completes and returns correct data at every loss
  rate — the reliable DTU protocol masks the losses.
- Retransmissions appear exactly when packets are lost: zero at rate 0
  (the protocol is quiescent when nothing goes wrong), positive at 1e-2.
- The PE-kill scenario ends with the kernel recovering the VPE and the
  parent unblocked by an error reply, not hanging.
- Seeded runs are deterministic: same seed, same cycle counts.
"""

from benchmarks.conftest import write_result
from repro.eval import fault_tolerance
from repro.eval.fault_tolerance import LOSS_RATES, syscall_bench


def test_fault_tolerance(benchmark, results_dir):
    results = benchmark.pedantic(fault_tolerance.run, rounds=1, iterations=1)

    sweep = results["loss"]
    assert set(sweep) == set(LOSS_RATES)
    for rate, benches in sweep.items():
        for name, entry in benches.items():
            assert entry["ok"], f"{name} corrupted data at loss rate {rate}"

    # Fault-free runs never retransmit; lossy runs must.
    clean = sweep[0.0]
    assert all(entry["retransmits"] == 0 for entry in clean.values())
    assert all(entry["lost"] == 0 for entry in clean.values())
    lossy = sweep[max(LOSS_RATES)]
    assert any(entry["lost"] > 0 for entry in lossy.values())
    assert any(entry["retransmits"] > 0 for entry in lossy.values())
    # Losses cost cycles: the lossy bulk ops are slower than clean ones.
    assert lossy["read"]["cycles"] > clean["read"]["cycles"]

    kill = results["kill"]
    assert kill["recovered"]
    assert kill["pe_quarantined"]
    assert "failed" in kill["outcome"]
    assert kill["detected_by"] > kill["killed_at"]
    assert kill["fault_events"] == [(kill["killed_at"], "kill")]

    # Determinism: a fresh run with the same seed lands on the same cycle.
    again = syscall_bench(max(LOSS_RATES))
    assert again["cycles"] == lossy["syscall"]["cycles"]
    assert again["lost"] == lossy["syscall"]["lost"]

    write_result(
        results_dir, "fault_tolerance", fault_tolerance.render(results)
    )
