"""Profile benchmark: the observability subsystem on a Figure-3 micro run.

Acceptance checks for the profiling pipeline:
- the Chrome trace round-trips through ``json.loads`` and its events
  carry ``ph``/``ts``/``pid``,
- the report has syscall-latency and message-RTT histograms,
- link utilisation is exact (no value above 100%).
"""

import json

from repro.eval import profile
from repro.obs import export_chrome_trace


def test_profile(benchmark, results_dir):
    system = benchmark.pedantic(profile.run, rounds=1, iterations=1)
    obs = system.sim.obs

    # Key histograms exist and saw the expected traffic.
    assert obs.histogram("kernel.syscall_cycles").count >= profile.PROFILE_SYSCALLS
    assert obs.histogram("m3.syscall_rtt").count >= profile.PROFILE_SYSCALLS
    assert obs.histogram("dtu.msg_rtt").count > 0
    assert obs.histogram("m3fs.request_cycles").count > 0

    # Exact utilisation: never above 1.0, and the DRAM path was busy.
    report = system.platform.network.utilization_report()
    assert report and all(0.0 <= u <= 1.0 for u in report.values())

    text = profile.render(system)
    assert "kernel.syscall_cycles" in text
    assert "dtu.msg_rtt" in text
    assert "utilisation" in text
    (results_dir / "profile.txt").write_text(text + "\n")

    trace_path = results_dir / "fig3_micro.trace.json"
    export_chrome_trace(obs, trace_path)
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert events
    for event in events:
        assert "ph" in event and "pid" in event
        assert "ts" in event or event["ph"] == "M"
    assert any(e["ph"] == "X" for e in events)
    assert trace["metadata"]["clock"] == "simulated-cycles"
