"""Critical-path benchmark: causal tracing over real request paths.

Acceptance checks for the causal tracer:
- the profiled null syscall attributes >= 95% of its end-to-end
  cycles to named components (the partition is exact, so 100%),
- the cross-domain ``open_session`` at two kernel domains shows
  inter-kernel RPC hops on its critical path,
- the rendered report lands in ``results/critical_path.txt``.
"""

from repro.eval import critical_path
from repro.obs import causal

from benchmarks.conftest import write_result


def test_critical_path(benchmark, results_dir):
    results = benchmark.pedantic(critical_path.run, rounds=1, iterations=1)

    syscall = results["syscall"]
    segments = causal.critical_path(syscall)
    breakdown = causal.component_breakdown(segments)
    assert sum(s.cycles for s in segments) == syscall.total_cycles
    assert critical_path.named_cycles(breakdown) >= 0.95 * syscall.total_cycles
    assert breakdown["kernel"] > 0 and breakdown["libm3"] > 0
    assert breakdown["dtu-transfer"] > 0 and breakdown["noc-transfer"] > 0

    remote = results["open_session (k=2)"]
    remote_breakdown = causal.component_breakdown(
        causal.critical_path(remote)
    )
    # The request crossed kernel domains: inter-kernel RPC hops are on
    # the critical path, plus the service's own handler.
    assert remote_breakdown["inter-kernel"] > 0
    assert remote_breakdown["service"] > 0

    write_result(results_dir, "critical_path",
                 critical_path.bench_table(results))
