"""Reproduction of *M3: A Hardware/Operating-System Co-Design to Tame
Heterogeneous Manycores* (Asmussen et al., ASPLOS 2016).

Layers, bottom-up:

- :mod:`repro.sim` — the discrete-event simulation kernel,
- :mod:`repro.noc` — the mesh network-on-chip,
- :mod:`repro.hw` — PEs (core + scratchpad + DTU), DRAM, devices, caches,
- :mod:`repro.dtu` — the data transfer unit (the paper's hardware
  contribution),
- :mod:`repro.m3` — the OS: kernel, libm3, m3fs,
- :mod:`repro.linuxsim` — the calibrated Linux baseline,
- :mod:`repro.workloads` / :mod:`repro.eval` — the paper's Section 5.

Entry point for most uses::

    from repro.m3.system import M3System
    system = M3System(pe_count=8).boot()

See README.md for a tour and DESIGN.md for the reproduction strategy.
"""

__version__ = "1.0.0"

__all__ = ["params", "__version__"]
