"""Figure 4: read/write time depending on file fragmentation.

"for reading, the 2 MiB large file was prepared to have 16 to 2048
blocks per extent.  And for writing we let the application allocate the
corresponding number of blocks at once.  As the results show, the sweet
spot is 256 blocks" (Section 5.5).
"""

from __future__ import annotations

from repro import params
from repro.eval.report import render_table
from repro.m3.lib.file import OpenFlags
from repro.m3.system import M3System
from repro.workloads.data import deterministic_bytes

FILE_BYTES = params.MICRO_FILE_BYTES
BUFFER = params.MICRO_BUFFER_BYTES
BLOCKS_PER_EXTENT = [16, 32, 64, 128, 256, 512, 1024, 2048]


def read_time(blocks_per_extent: int) -> int:
    """Cycles to read the 2 MiB file fragmented at the given granularity."""
    system = M3System(pe_count=4).boot()
    system.fs_preload(
        {"/frag.dat": deterministic_bytes("frag", FILE_BYTES)},
        extent_blocks=blocks_per_extent,
    )

    def app(env):
        # warmup: session + first-open costs out of the measured window
        probe = yield from env.vfs.open("/frag.dat", OpenFlags.R)
        yield from probe.read(BUFFER)
        yield from probe.close()
        start = env.sim.now
        file = yield from env.vfs.open("/frag.dat", OpenFlags.R)
        while True:
            chunk = yield from file.read(BUFFER)
            if not chunk:
                break
        yield from file.close()
        return env.sim.now - start

    return system.run_app(app, name="frag-read")


def write_time(blocks_per_extent: int) -> int:
    """Cycles to write 2 MiB allocating ``blocks_per_extent`` at once."""
    system = M3System(
        pe_count=4, kernel_node=0
    ).boot(fs_kwargs={"append_blocks": blocks_per_extent})
    payload = deterministic_bytes("frag-w", BUFFER)

    def app(env):
        # warmup: session establishment
        yield from env.vfs.stat("/")
        start = env.sim.now
        file = yield from env.vfs.open("/new.dat",
                                       OpenFlags.W | OpenFlags.CREATE)
        written = 0
        while written < FILE_BYTES:
            yield from file.write(payload)
            written += BUFFER
        yield from file.close()
        return env.sim.now - start

    return system.run_app(app, name="frag-write")


def run() -> list[tuple[int, int, int]]:
    """(blocks_per_extent, read_cycles, write_cycles) rows."""
    return [
        (blocks, read_time(blocks), write_time(blocks))
        for blocks in BLOCKS_PER_EXTENT
    ]


def bench_table(rows: list[tuple[int, int, int]]) -> str:
    """The ``results/fig4_extents.txt`` table for :func:`run`'s rows."""
    return render_table(
        "Figure 4: read/write time vs blocks per extent (2 MiB file)",
        ["blocks/extent", "read (cycles)", "write (cycles)"],
        rows,
    )


def main() -> str:
    rows = run()
    table = render_table(
        "Figure 4: read/write time vs blocks per extent (2 MiB file)",
        ["blocks/extent", "read (cycles)", "write (cycles)"],
        rows,
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
