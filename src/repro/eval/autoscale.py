"""Elastic scaling: the autoscaler against a bursty serving tier.

The paper's elasticity story (Section 1) is that a kernel holding all
VPE state remotely can re-materialize compute wherever the load is.
This eval closes that loop end to end on the 4-domain variant platform:

- **Static vs elastic.** The same bursty open-loop load (PR 7's
  arrival shape) is driven twice at *equal offered load*: once against
  a fixed 2-replica kv tier with round-robin session routing, once
  against the same initial tier with queue-depth routing, the
  inter-kernel depth gossip, and the autoscaler switched on.  The
  autoscaler warm-boots clones of the busiest replica into underloaded
  domains (live cross-domain migration over the idempotent
  inter-kernel RPC), and the tail contracts.
- **The scale timeline.** Every controller action with its cycle,
  replica, target domain, and provenance (which replica donated the
  warm image) — plus the per-replica session-router counts showing the
  new capacity actually absorbing load.
- **Shrink.** A separate calm scenario: a 3-replica tier under no
  load drains and retires its newest replica, merging its store into
  the oldest survivor over a timed transfer.
- **Warm vs cold boot.** Cycles until a new replica can serve the hot
  keyset: a warm-booted clone (checkpoint image + live migration)
  against a cold boot that must refill its store one put at a time.

Fully deterministic: every number is a pure function of the profile
seed; ``runall`` reproduces ``results/autoscale.txt`` byte-identically
for any ``--jobs`` and ``--shards`` value.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.eval.traffic import _summarize
from repro.faults import FaultPlan
from repro.m3.autoscale import AutoScaler
from repro.m3.services.kvserv import KvClient, KvServ, start_kv_tier
from repro.m3.system import M3System
from repro.workloads import traffic

DEFAULT_SEED = 20160402  # the paper's conference date

#: the 4-domain variant shape (eval/traffic's shard variant), with
#: doubled gateways so the kv tier — not the gateway tier — is the
#: contended stage the autoscaler relieves.
PE_COUNT = 24
KERNEL_COUNT = 4
GATEWAYS = 6
EP_COUNT = 12

#: the bursty load point: past saturation for 2 replicas, inside the
#: linear region for 4.
REQUESTS = 600
CLIENTS = 480
BURST_GAP = 1_000
BURST = 12
#: gateways re-resolve their kv session every N served requests, so
#: the tier's reshaping actually reaches the data path.
SESSION_REFRESH = 4
#: the replicas are compute-heavy (a scoring/rendering tier): 2,000
#: service cycles per operation is what makes the *tier* — not the
#: datagram path — the contended stage the autoscaler relieves.
KV_OP_CYCLES = 2_000
#: both runs boot the same 2-replica tier (domains 1 and 2, next to
#: the gateways), leaving domains 0 and 3 as the scale-out headroom
#: the warm clones live-migrate into.
KV_DOMAINS = (1, 2)

#: controller knobs for the elastic run.  A sampled queue of 3 at one
#: replica is half the gateway tier stuck behind it — grow.  The
#: bursty run never retires (``down_total=-1``); drain-and-retire is
#: studied separately in :func:`shrink_demo`.
AUTOSCALE = dict(
    epoch=10_000,
    up_depth=3,
    down_total=-1,
    cooldown_epochs=2,
)

#: mid-load packet-loss window for the fault variant.
FAULT_DROP_RATE = 0.01
FAULT_WINDOW = (150_000, 900_000)

#: the warm/cold boot comparison stocks this keyset (the traffic
#: pre-warm set: 64 keys, 32..159 bytes each).
BOOT_KEYS = 64


def _profile(name: str) -> traffic.TrafficProfile:
    return traffic.TrafficProfile(
        name=name, seed=DEFAULT_SEED, clients=CLIENTS, requests=REQUESTS,
        arrival="bursty", mean_gap=BURST_GAP, burst=BURST,
        session_refresh=SESSION_REFRESH,
    )


def _run_point(name: str, elastic: bool, shards: int = 1,
               fault_plan=None) -> traffic.TrafficResult:
    kwargs: dict = dict(policy="rr")
    if elastic:
        kwargs = dict(policy="depth", heartbeats=True,
                      autoscale=dict(AUTOSCALE))
    return traffic.run_profile(
        _profile(name), shards=shards, fault_plan=fault_plan,
        pe_count=PE_COUNT, kernel_count=KERNEL_COUNT, gateways=GATEWAYS,
        ep_count=EP_COUNT, kv_domains=list(KV_DOMAINS),
        kv_op_cycles=KV_OP_CYCLES, **kwargs,
    )


# -- shrink scenario ----------------------------------------------------------


def shrink_demo() -> dict:
    """A calm 3-replica tier drains and retires its newest replica.

    Each replica is stocked with its own keys through real sessions;
    with the load gone, the controller's calm counter trips, the
    newest replica is pulled from the route, drains, and hands its
    store to the oldest survivor (a timed DTU transfer).
    """
    system = M3System(pe_count=PE_COUNT, kernel_count=KERNEL_COUNT,
                      reliable=True, ep_count=EP_COUNT)
    system.boot(with_fs=False)
    servers = start_kv_tier(system, domains=[0, 1, 2], policy="depth")
    loaded = system.sim.event("shrink.loaded")

    def loader(env):
        for index, server in enumerate(servers):
            client = yield from KvClient.connect(env, server.service_name)
            for key in range(8):
                yield from client.put(f"r{index}k{key}", b"\x5a" * 64)
            yield from client.close()
        loaded.succeed(None)

    system.spawn(loader, name="loader", domain=3)
    system.sim.run(until_event=loaded)
    if not loaded.triggered:
        raise RuntimeError("shrink loader failed")
    scaler = AutoScaler(system, servers, min_replicas=2, calm_epochs=2,
                        cooldown_epochs=1)
    scaler.start()
    window = system.sim.event("shrink.window")

    def clock():
        yield system.sim.delay(8 * scaler.epoch)
        window.succeed(None)

    system.sim.process(clock(), "shrink.clock")
    system.sim.run(until_event=window)
    scaler.stop()
    system.sim.run()
    survivor = servers[0]
    return {
        "timeline": list(scaler.events),
        "retired": sorted(scaler.retired),
        "survivor": survivor.service_name,
        "survivor_keys": len(survivor.store),
        "survivor_bytes": survivor.bytes_stored,
    }


# -- warm vs cold boot --------------------------------------------------------


def boot_comparison() -> dict:
    """Cycles until a new replica serves the hot keyset, both ways.

    **Warm**: the autoscaler's clone path — checkpoint the stocked
    donor, spawn the clone next to it seeded with the store image,
    live cross-domain migrate it, register.  **Cold**: boot an empty
    replica and refill it one put RPC at a time.  Both numbers are
    pure simulated cycles (deterministic), measured to the moment the
    replica could answer a get for every hot key.
    """
    system = M3System(pe_count=PE_COUNT, kernel_count=KERNEL_COUNT,
                      reliable=True, ep_count=EP_COUNT)
    system.boot(with_fs=False)
    servers = start_kv_tier(system, domains=[0], policy="depth",
                            op_cycles=KV_OP_CYCLES)
    donor = servers[0]
    for key_id in range(BOOT_KEYS):
        value = b"\x5a" * (32 + (key_id * 7) % 128)
        donor.store[f"k{key_id}"] = value
        donor.bytes_stored += len(value)

    scaler = AutoScaler(system, servers, min_replicas=1, max_replicas=2)
    marks: dict = {}

    def warm_drive():
        start = system.sim.now
        grown = yield from scaler._scale_up(scaler._depths())
        marks["warm"] = system.sim.now - start
        marks["grown"] = grown

    system.sim.process(warm_drive(), "boot.warm")
    system.sim.run()
    if not marks.get("grown"):
        raise RuntimeError("warm boot failed to grow the tier")

    cold = KvServ(service_name="cold", op_cycles=KV_OP_CYCLES)
    cold.ready = system.sim.event("cold.ready")
    cold_start = system.sim.now
    system.spawn(cold.main, name="cold", domain=2)
    system.sim.run(until_event=cold.ready)
    if not cold.ready.triggered:
        raise RuntimeError("cold replica failed to start")
    marks["cold_ready"] = system.sim.now - cold_start
    filled = system.sim.event("cold.filled")

    def filler(env):
        client = yield from KvClient.connect(env, "cold")
        for key, value in donor.store.items():
            yield from client.put(key, value)
        yield from client.close()
        filled.succeed(None)

    system.spawn(filler, name="filler", domain=2)
    system.sim.run(until_event=filled)
    marks["cold"] = system.sim.now - cold_start
    return {
        "keys": BOOT_KEYS,
        "warm_cycles": marks["warm"],
        "cold_ready_cycles": marks["cold_ready"],
        "cold_stocked_cycles": marks["cold"],
        "delta_cycles": marks["cold"] - marks["warm"],
    }


# -- the main comparison ------------------------------------------------------


def run(seed: int = DEFAULT_SEED, shards: int = 1) -> dict:
    """Static vs elastic at equal offered load, plus the side studies."""
    del seed  # the profile carries its own seed (kept for symmetry)
    static = _run_point("static-2", elastic=False, shards=shards)
    result = _run_point("elastic", elastic=True, shards=shards)
    scaler = result.scaler
    kernels = result.system.kernels
    return {
        "static": _summarize(static),
        "elastic": _summarize(result),
        "timeline": list(scaler.events),
        "scaler": {
            "epochs": scaler.epochs,
            "scale_ups": scaler.scale_ups,
            "scale_downs": scaler.scale_downs,
            "replicas": sorted(scaler.servers),
        },
        "migrations": {
            "out": sum(kernel.migrations_out for kernel in kernels),
            "in": sum(kernel.migrations_in for kernel in kernels),
        },
        "shrink": shrink_demo(),
        "boot": boot_comparison(),
    }


# -- rendering ----------------------------------------------------------------


def _point_row(point: dict) -> tuple:
    return (
        point["name"],
        f"{point['offered']:,.0f}",
        f"{point['goodput']:,.0f}",
        f"{point['completed']}/{point['sent']}",
        point["p50"],
        point["p99"],
        point["p999"],
        point["kv_errors"],
    )


_POINT_HEADERS = ["tier", "offered/Mcyc", "goodput/Mcyc", "done",
                  "p50", "p99", "p999", "kv errors"]


def bench_table(results: dict) -> str:
    """The ``results/autoscale.txt`` report for :func:`run`."""
    static, elastic = results["static"], results["elastic"]
    comparison = render_table(
        f"Elastic scaling: bursty load at equal offered rate "
        f"({CLIENTS} clients, {REQUESTS} requests, burst {BURST})",
        _POINT_HEADERS,
        [_point_row(static), _point_row(elastic)],
    )
    timeline = render_table(
        "Scale timeline (elastic run)",
        ["cycle", "action", "replica", "domain", "detail"],
        [(f"{cycle:,}", action, replica, domain, detail)
         for cycle, action, replica, domain, detail
         in results["timeline"]],
    )
    replicas = sorted(set(static["replica_requests"])
                      | set(elastic["replica_requests"]))
    routes = render_table(
        "Replica tier: sessions routed / requests served",
        ["replica", "static routed", "static served",
         "elastic routed", "elastic served"],
        [(replica,
          static["route_counts"].get(replica, 0),
          static["replica_requests"].get(replica, "-"),
          elastic["route_counts"].get(replica, 0),
          elastic["replica_requests"].get(replica, "-"))
         for replica in replicas],
    )
    shrink = results["shrink"]
    shrink_rows = [
        (f"{cycle:,}", action, replica, domain, detail)
        for cycle, action, replica, domain, detail in shrink["timeline"]
    ]
    shrink_table = render_table(
        "Shrink: a calm 3-replica tier retires its newest replica",
        ["cycle", "action", "replica", "domain", "detail"],
        shrink_rows,
    )
    boot = results["boot"]
    scaler = results["scaler"]
    migrations = results["migrations"]
    lines = [
        comparison,
        "",
        timeline,
        "",
        routes,
        "",
        shrink_table,
        "",
        "Notes",
        "=====",
        f"p99 under burst: elastic {elastic['p99']:,} cycles vs static "
        f"{static['p99']:,} ({elastic['p99'] - static['p99']:+,})",
        f"p999 under burst: elastic {elastic['p999']:,} cycles vs static "
        f"{static['p999']:,} ({elastic['p999'] - static['p999']:+,})",
        f"controller: {scaler['epochs']} epochs, "
        f"{scaler['scale_ups']} scale-ups, "
        f"{scaler['scale_downs']} scale-downs; final tier "
        f"{'/'.join(scaler['replicas'])}",
        f"cross-domain migrations: {migrations['out']} out, "
        f"{migrations['in']} in (idempotent inter-kernel RPC)",
        f"shrink: retired {'/'.join(shrink['retired'])}; survivor "
        f"{shrink['survivor']} holds {shrink['survivor_keys']} keys "
        f"({shrink['survivor_bytes']}B) after the merge",
        f"warm boot: {boot['warm_cycles']:,} cycles to a serving, "
        f"fully-stocked clone vs cold boot "
        f"{boot['cold_ready_cycles']:,} + refill to "
        f"{boot['cold_stocked_cycles']:,} cycles "
        f"({boot['keys']} keys) — warm saves "
        f"{boot['delta_cycles']:,} cycles",
    ]
    return "\n".join(lines)


def fault_variant() -> str:
    """Both tiers ridden through a 1% mid-load loss window.

    The determinism gate's second angle: the depth gossip, migration
    RPCs, and controller decisions all keep their byte-identical
    outputs with the fault plan's retransmit pattern layered on top.
    """
    rows = []
    for name, elastic in (("static-2", False), ("elastic", True)):
        plan = FaultPlan(DEFAULT_SEED).drop(
            FAULT_DROP_RATE, window=FAULT_WINDOW
        )
        point = _summarize(_run_point(
            f"{name}/faulted", elastic=elastic, fault_plan=plan,
        ))
        rows.append(_point_row(point) + (point["retransmits"],))
    return render_table(
        f"Autoscale fault variant: drop rate {FAULT_DROP_RATE} in "
        f"[{FAULT_WINDOW[0]:,}, {FAULT_WINDOW[1]:,})",
        _POINT_HEADERS + ["retransmits"],
        rows,
    )


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.eval.autoscale")
    parser.add_argument(
        "--variant", choices=("fault",), default=None,
        help="run only the named variant (CI determinism gate)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine shard count (results are byte-identical at any "
        "value; see docs/performance.md)",
    )
    options = parser.parse_args(argv)
    if options.variant == "fault":
        report = fault_variant()
    else:
        report = bench_table(run(shards=options.shards))
    print(report)
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
