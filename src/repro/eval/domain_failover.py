"""Domain failover: kill one of two kernel domains mid-workload.

The survival story this figure tells, end to end:

- Two kernel domains boot on a partitioned mesh (each with its own
  m3fs instance), exchange heartbeats over the idempotent inter-kernel
  RPC layer, and serve a mixed workload under a seeded packet-loss
  plan: a ``find`` trace replay, a live VPE migration, a VPE spilled
  into the peer domain with a parked cross-domain ``VPE_WAIT``, and a
  cross-domain filesystem session.
- Mid-run the fault plan halts kernel domain 1's kernel core.  Domain
  0's heartbeat RPCs start timing out; after the configured miss limit
  it declares the peer dead and fails over: the parked cross-domain
  wait is answered with an error, the dead domain's PEs are
  quarantined, capabilities pointing into it are revoked, and the
  cached service-owner entry for the dead domain's m3fs is purged.
- Every VPE in the surviving domain finishes with a correct result;
  no parked wait is left unanswered.

Everything is deterministic: same seed, same cycle counts, same
report, byte for byte.
"""

from __future__ import annotations

from repro import params
from repro.eval.report import render_table
from repro.faults import FaultPlan
from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import SyscallError
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System
from repro.workloads.trace import M3Replayer
from repro.workloads.tracegen import TRACE_BENCHMARKS

DEFAULT_SEED = 20160402  # the paper's conference date

#: 12 PEs, two domains of 6: kernels at nodes 0 and 6.
PE_COUNT = 12
KERNEL_COUNT = 2
#: background packet loss, active the whole run (boot included).
LOSS_RATE = 0.002
#: when the fault plan halts kernel domain 1's kernel core (node 6) —
#: chosen mid-``find`` so the surviving workload rides out the failover.
KILL_AT = 24_000
#: rounds of compute+syscall the migrating VPE performs.  The parent
#: triggers the live migration at the half-way mark, which lands after
#: ``find`` exits and frees the only spare PE in the full domain.
MIG_ROUNDS = 36
MIG_ROUND_COMPUTE = 3_000
MIG_BUFFER_BYTES = 4_096


def _fs_name(domain: int) -> str:
    return "m3fs" if domain == 0 else f"m3fs{domain}"


# -- the workload apps (module-level so they survive a fork) -----------------


def _find_app(env, service, trace):
    """Replay the ``find`` trace against the local m3fs instance."""
    from repro.m3.lib.m3fs_client import M3fsClient

    client = yield from M3fsClient.connect(env, service=service)
    env.vfs.mount("/", client)
    start = env.sim.now
    yield from M3Replayer(env).replay(trace)
    return ("find-ok", env.sim.now - start)


def _migrating_child(env, rounds):
    """Compute/syscall loop that journals its progress into SPM.

    Each round stores a recognisable byte into an SPM buffer; the final
    verification reads the whole buffer back.  Only a migration that
    really moved the SPM image (and kept the syscall channel working)
    can produce a fully stamped buffer from the new PE.
    """
    base = env.alloc_buffer(MIG_BUFFER_BYTES)
    for index in range(rounds):
        env.pe.spm_data.write(base + index, bytes([(index * 7 + 1) % 256]))
        yield env.compute(MIG_ROUND_COMPUTE)
        yield from env.syscall(syscalls.NOOP)
    stamped = env.pe.spm_data.read(base, rounds)
    expected = bytes((index * 7 + 1) % 256 for index in range(rounds))
    return ("mig-ok" if bytes(stamped) == expected else "mig-CORRUPT",
            env.pe.node)


def _migration_parent(env):
    """Start the journaling child, live-migrate it mid-run, await it."""
    vpe = yield from VPE.create(env, "pilgrim")
    yield from vpe.run(_migrating_child, MIG_ROUNDS)
    origin = None
    for kernel in env.system.kernels:
        if vpe.vpe_id in kernel.vpes:
            origin = kernel.vpes[vpe.vpe_id].node
    # Let the child get about halfway before pulling the PE out from
    # under it.
    yield env.compute(MIG_ROUNDS * MIG_ROUND_COMPUTE // 2)
    new_node = yield from vpe.migrate()
    verdict, final_node = yield from vpe.wait()
    return (verdict, origin, new_node, final_node,
            final_node == new_node and new_node != origin)


def _spill_parent(env):
    """Fill the remote domain with a child and park on its exit.

    The local domain is full by the time this runs, so ``create_vpe``
    spills the child into domain 1 over the inter-kernel protocol; the
    subsequent wait parks cross-domain.  When domain 1 dies, failover
    must answer the wait with an error instead of leaving this VPE
    blocked forever.
    """
    from repro.m3.lib.m3fs_client import M3fsClient

    # A cross-domain session first: opened against domain 1's m3fs via
    # srv_open (idempotent under the loss plan), proving the remote
    # service path works before the kill.
    client = yield from M3fsClient.connect(env, service=_fs_name(1))
    env.vfs.mount("/remote", client)
    stat = yield from env.vfs.stat("/remote/")
    session_ok = stat is not None
    vpe = yield from VPE.create(env, "castaway")
    yield from vpe.run(_spin_forever)
    try:
        yield from vpe.wait()
        outcome = "wait returned (unexpected)"
    except SyscallError as exc:
        outcome = f"wait err-replied: {exc}"
    return (outcome, session_ok, env.sim.now)


def _spin_forever(env):
    while True:  # only the domain kill stops this VPE
        yield env.compute(1_000)


# -- the scenario -------------------------------------------------------------


def run(seed: int = DEFAULT_SEED) -> dict:
    system = M3System(
        pe_count=PE_COUNT, kernel_count=KERNEL_COUNT, reliable=True
    )
    plan = FaultPlan(seed).drop(LOSS_RATE)
    plan.kill_pe(node=system.kernels[1].node, at=KILL_AT)
    plan.install(system.platform)
    system.boot(with_fs=False)
    for domain in range(KERNEL_COUNT):
        system.start_m3fs(name=_fs_name(domain), domain=domain)
    system.start_heartbeats()

    setup_files, trace = TRACE_BENCHMARKS["find"]("/work")
    if setup_files:
        system.fs_preload(setup_files, server=system.fs_servers[_fs_name(0)])

    # Domain-0 node budget (6 PEs): kernel=0, m3fs=1, find=2,
    # mig-parent=3, spill-parent=4, pilgrim=5 — the domain is then
    # full, so spill-parent's child lands in domain 1.  The migration
    # fires after ``find`` exits, reusing its freed node as the target.
    find_vpe = system.spawn(_find_app, _fs_name(0), trace,
                            name="find", domain=0)
    mig_vpe = system.spawn(_migration_parent, name="mig-parent", domain=0)
    spill_vpe = system.spawn(_spill_parent, name="spill-parent", domain=0)

    find_result = system.wait(find_vpe)
    mig_result = system.wait(mig_vpe)
    spill_result = system.wait(spill_vpe)
    system.sim.run()  # drain redirect windows and retry timers
    system.stop_heartbeats()

    k0, k1 = system.kernels
    detected = completed = None
    if k0.failover_log:
        _peer, detected, completed, _reason = k0.failover_log[0]
    dtus = [pe.dtu for pe in system.platform.pes]
    # Parked-wait audit: every cross-domain wait must have been
    # answered (normally or by failover).  Only live kernels count —
    # the murdered kernel's own ledgers die with it.
    unanswered = sum(
        len(vpe.remote_waiters)
        for kernel in system.kernels if not kernel.pe.failed
        for vpe in kernel.vpes.values()
    ) + len(k0._ik_pending) + len(k0._ik_outstanding)
    return {
        "find": find_result,
        "migration": mig_result,
        "spill": spill_result,
        "killed_at": KILL_AT,
        "detected_at": detected,
        "failover_done_at": completed,
        "service_cache_purged": _fs_name(1) not in k0._remote_services,
        "dead_domain_quarantined": all(
            system.platform.pe(node).failed for node in sorted(k1.domain)
        ),
        "unanswered_waits": unanswered,
        "rpc": {
            "sent": k0.ik_requests_sent,
            "retries": k0.ik_retries,
            "timeouts": k0.ik_timeouts,
            "duplicates_absorbed": k0.ik_duplicates + k1.ik_duplicates,
            "heartbeats": k0.heartbeats_sent,
        },
        "noc": {
            "lost": system.platform.network.packets_lost,
            "retransmits": sum(d.retransmits for d in dtus),
        },
        "migrations": k0.migrations,
        "fault_events": len(plan.events),
    }


# -- rendering ----------------------------------------------------------------


def bench_table(results: dict) -> str:
    """The ``results/domain_failover.txt`` report."""
    find_verdict, find_wall = results["find"]
    mig_verdict, origin, new_node, final_node, moved = results["migration"]
    spill_outcome, session_ok, spill_done = results["spill"]
    rpc, noc = results["rpc"], results["noc"]
    rows = [
        ("find (domain 0, under loss)",
         "ok" if find_verdict == "find-ok" else "FAILED",
         f"{find_wall:,} cycles"),
        ("live migration (pilgrim)",
         "ok" if mig_verdict == "mig-ok" and moved else "FAILED",
         f"node {origin} -> {new_node}, finished on {final_node}"),
        ("cross-domain session (m3fs1)",
         "ok" if session_ok else "FAILED", "opened before the kill"),
        ("cross-domain wait (castaway)",
         "ok" if "err-replied" in spill_outcome else "FAILED",
         f"unparked at cycle {spill_done:,}"),
    ]
    table = render_table(
        "Domain failover: workload verdicts (k=2, domain 1 killed)",
        ["workload", "verdict", "detail"],
        rows,
    )
    detected = results["detected_at"]
    completed = results["failover_done_at"]
    lines = [
        table,
        "",
        "Failure detection and recovery",
        "==============================",
        f"kernel domain 1 core halted at cycle {results['killed_at']:,}",
        f"heartbeat verdict declared it dead at cycle {detected:,} "
        f"(detection latency {detected - results['killed_at']:,} cycles)",
        f"failover completed at cycle {completed:,} "
        f"({completed - detected:,} cycles after detection)",
        f"dead domain PEs quarantined: "
        f"{'yes' if results['dead_domain_quarantined'] else 'NO'}; "
        f"service-owner cache purged: "
        f"{'yes' if results['service_cache_purged'] else 'NO'}",
        f"parked waits left unanswered: {results['unanswered_waits']}",
        "",
        "RPC and NoC accounting (surviving kernel)",
        "=========================================",
        f"inter-kernel RPCs sent: {rpc['sent']:,} "
        f"(heartbeats: {rpc['heartbeats']:,})",
        f"kernel-level retries: {rpc['retries']:,}; "
        f"timeout verdicts: {rpc['timeouts']:,}; "
        f"duplicates absorbed by reply cache: {rpc['duplicates_absorbed']:,}",
        f"NoC packets lost: {noc['lost']:,} "
        f"(injected faults: {results['fault_events']:,}); "
        f"DTU retransmits: {noc['retransmits']:,}",
        f"VPE migrations performed: {results['migrations']:,} "
        f"(redirect window {params.DTU_REDIRECT_WINDOW_CYCLES:,} cycles)",
    ]
    return "\n".join(lines)


def main() -> str:
    report = bench_table(run())
    print(report)
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
