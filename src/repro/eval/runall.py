"""Run every evaluation figure/table across a ``multiprocessing`` pool.

Each figure, ablation sweep, and Figure-6 (benchmark, instance-count)
point is an independent simulation: no shared state, no ordering
requirement between them.  This module fans those points out over a
process pool and merges the results deterministically:

- The job list is a fixed, ordered sequence (``build_jobs``).
- ``pool.map`` returns results in *input* order regardless of which
  worker finished first, so the merged output is identical for any
  worker count — including the serial in-process fallback.
- Workers return rendered *file contents* (strings); only the parent
  touches the filesystem.  A crashed worker therefore cannot leave a
  half-written results file behind.

The rendered tables are byte-identical to what the benchmark suite
(``benchmarks/``) writes, because both go through the shared
``bench_table``/``*_table`` renderers in the eval modules.

Usage::

    PYTHONPATH=src python -m repro.eval.runall [--jobs N] [--select NAME]
"""

from __future__ import annotations

import argparse
import functools
import json
import multiprocessing
import pathlib
import sys

from repro.eval import (
    ablations,
    autoscale,
    critical_path,
    domain_failover,
    fault_tolerance,
    fig3_micro,
    fig4_extents,
    fig5_apps,
    fig6_multikernel,
    fig6_scale,
    fig7_accel,
    profile,
    tab_arm,
    telemetry,
    traffic,
)
from repro.obs import to_chrome_trace

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "results"

#: Figure-6 geometry matching the committed ``results/fig6_scale.txt``
#: (the benchmark suite's instance counts, not ``fig6_scale.main()``'s
#: full sweep — runall reproduces the repo's results files).
FIG6_BENCHMARKS = tuple(fig6_scale.BENCHMARKS)
FIG6_INSTANCE_COUNTS = (1, 4, 16)


# -- workers (module-level so they pickle under fork/spawn) -------------------


def _fig3() -> dict:
    return {"fig3_micro.txt": fig3_micro.bench_table(fig3_micro.run()) + "\n"}


def _fig4() -> dict:
    return {"fig4_extents.txt":
            fig4_extents.bench_table(fig4_extents.run()) + "\n"}


def _fig5() -> dict:
    return {"fig5_apps.txt": fig5_apps.bench_table(fig5_apps.run()) + "\n"}


def _fig7() -> dict:
    return {"fig7_accel.txt": fig7_accel.bench_table(fig7_accel.run()) + "\n"}


def _tab_arm() -> dict:
    return {"tab_arm.txt": tab_arm.bench_table(tab_arm.run()) + "\n"}


def _fault_tolerance() -> dict:
    return {"fault_tolerance.txt":
            fault_tolerance.render(fault_tolerance.run()) + "\n"}


def _domain_failover() -> dict:
    return {"domain_failover.txt":
            domain_failover.bench_table(domain_failover.run()) + "\n"}


def _critical_path() -> dict:
    return {"critical_path.txt":
            critical_path.bench_table(critical_path.run()) + "\n"}


def _traffic(shards: int = 1) -> dict:
    return {"traffic.txt":
            traffic.bench_table(traffic.run(shards=shards)) + "\n"}


def _autoscale(shards: int = 1) -> dict:
    return {"autoscale.txt":
            autoscale.bench_table(autoscale.run(shards=shards)) + "\n"}


def _telemetry(shards: int = 1) -> dict:
    return {"telemetry.txt":
            telemetry.bench_table(telemetry.run(shards=shards)) + "\n"}


def _profile() -> dict:
    system = profile.run()
    trace = to_chrome_trace(system.sim.obs)
    return {
        "profile.txt": profile.render(system) + "\n",
        # Exactly what export_chrome_trace writes: compact separators,
        # no trailing newline.
        "fig3_micro.trace.json":
            json.dumps(trace, indent=None, separators=(",", ":")),
    }


_FIGURES = {
    "fig3_micro": _fig3,
    "fig4_extents": _fig4,
    "fig5_apps": _fig5,
    "fig7_accel": _fig7,
    "tab_arm": _tab_arm,
    "fault_tolerance": _fault_tolerance,
    "domain_failover": _domain_failover,
    "profile": _profile,
    "critical_path": _critical_path,
    "traffic": _traffic,
    "autoscale": _autoscale,
    "telemetry": _telemetry,
}


def _execute(job: tuple, shards: int = 1):
    """Run one job spec in a (possibly forked) worker process.

    ``shards`` threads the engine shard count into the evals that
    support it (traffic, fig6 multikernel); every other figure ignores
    it.  Results are byte-identical for any value — the determinism
    contract covers host workers (``--jobs``) and engine shards
    (``--shards``) alike.
    """
    kind = job[0]
    if kind == "figure":
        if job[1] == "traffic":
            return _traffic(shards=shards)
        if job[1] == "autoscale":
            return _autoscale(shards=shards)
        if job[1] == "telemetry":
            return _telemetry(shards=shards)
        return _FIGURES[job[1]]()
    if kind == "ablation":
        sweep, table = ablations.BENCH_SWEEPS[job[1]]
        return {f"{job[1]}.txt": table(sweep()) + "\n"}
    if kind == "fig6-point":
        _, benchmark, count = job
        return fig6_scale.average_instance_time(benchmark, count)
    if kind == "fig6mk-point":
        _, benchmark, kernel_count = job
        return fig6_multikernel.average_instance_time(
            benchmark, kernel_count, shards=shards
        )
    raise ValueError(f"unknown job kind: {job!r}")


# -- job list and deterministic merge -----------------------------------------


def build_jobs(select: list[str] | None = None) -> list[tuple]:
    """The fixed job sequence; heaviest points first for load balance.

    ``select`` filters by output name (``fig6_scale``, ``tab_arm``,
    ``abl_cache``, ...); ``None`` means everything.
    """

    def wanted(name: str) -> bool:
        return select is None or name in select

    jobs: list[tuple] = []
    # Figure 6's 16-instance points dominate the wall clock — front-load
    # them so a worker is not left running one alone at the end.
    if wanted("fig6_scale"):
        for count in sorted(FIG6_INSTANCE_COUNTS, reverse=True):
            for benchmark in FIG6_BENCHMARKS:
                jobs.append(("fig6-point", benchmark, count))
    # Every multi-kernel point runs 16 instances; fewer domains = one
    # kernel serving more of them = slower, so k=1 goes first.
    if wanted("fig6_multikernel"):
        for kernel_count in sorted(fig6_multikernel.KERNEL_COUNTS):
            for benchmark in fig6_multikernel.BENCHMARKS:
                jobs.append(("fig6mk-point", benchmark, kernel_count))
    # The traffic eval runs eight load points serially — heavy enough
    # to start early alongside the fig6 points.
    for name in ("traffic", "telemetry", "autoscale", "fig5_apps",
                 "fault_tolerance", "domain_failover"):
        if wanted(name):
            jobs.append(("figure", name))
    for name in sorted(ablations.BENCH_SWEEPS):
        if wanted(name):
            jobs.append(("ablation", name))
    for name in ("fig3_micro", "fig4_extents", "fig7_accel", "tab_arm",
                 "profile", "critical_path"):
        if wanted(name):
            jobs.append(("figure", name))
    return jobs


def merge_fig6(averages: dict) -> dict:
    """Assemble ``fig6_scale.run()``-shaped results from point averages.

    ``averages`` maps (benchmark, count) -> average cycles.  The merge
    iterates benchmarks and counts in canonical order, so the result —
    including the normalisation baseline (the smallest count) — does
    not depend on the order the points finished in.
    """
    results: dict = {}
    for benchmark in FIG6_BENCHMARKS:
        series = []
        baseline = None
        for count in sorted(FIG6_INSTANCE_COUNTS):
            average = averages[(benchmark, count)]
            if baseline is None:
                baseline = average
            series.append((count, average, average / baseline))
        results[benchmark] = series
    return results


def _collect(jobs: list[tuple], outcomes: list) -> dict:
    """Fold per-job outcomes (in job order) into {filename: content}."""
    files: dict[str, str] = {}
    fig6_points: dict[tuple, float] = {}
    fig6mk_points: dict[tuple, float] = {}
    for job, outcome in zip(jobs, outcomes):
        if job[0] == "fig6-point":
            fig6_points[(job[1], job[2])] = outcome
        elif job[0] == "fig6mk-point":
            fig6mk_points[(job[1], job[2])] = outcome
        else:
            files.update(outcome)
    if fig6_points:
        table = fig6_scale.bench_table(merge_fig6(fig6_points))
        files["fig6_scale.txt"] = table + "\n"
    if fig6mk_points:
        table = fig6_multikernel.bench_table(
            fig6_multikernel.merge_points(fig6mk_points)
        )
        files["fig6_multikernel.txt"] = table + "\n"
    return files


def run_all(jobs: int | None = None, select: list[str] | None = None,
            results_dir=None, shards: int = 1) -> dict:
    """Run the evaluation suite; write results files; return contents.

    ``jobs`` is the pool size (``None`` = one per CPU, 1 = serial
    in-process); ``shards`` is the engine shard count for the evals
    that support sharding.  Output is identical for every value of
    both.
    """
    specs = build_jobs(select)
    if jobs is None:
        jobs = multiprocessing.cpu_count()
    workers = max(1, min(jobs, len(specs)))
    if workers == 1:
        outcomes = [_execute(spec, shards=shards) for spec in specs]
    else:
        # fork shares the already-imported modules with the children;
        # chunksize=1 keeps the slow fig6 points spread across workers.
        execute = functools.partial(_execute, shards=shards)
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            outcomes = pool.map(execute, specs, chunksize=1)
    files = _collect(specs, outcomes)
    directory = pathlib.Path(results_dir) if results_dir else RESULTS_DIR
    directory.mkdir(exist_ok=True)
    for filename in sorted(files):
        (directory / filename).write_text(files[filename])
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.runall",
        description="Run all evaluation figures/tables in parallel.",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="pool size (default: one worker per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--select", action="append", metavar="NAME",
        help="only produce this output (repeatable); e.g. fig6_scale",
    )
    parser.add_argument(
        "--results-dir", default=None,
        help=f"output directory (default: {RESULTS_DIR})",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine shard count for the sharded evals (results are "
        "byte-identical at any value; see docs/performance.md)",
    )
    options = parser.parse_args(argv)
    files = run_all(jobs=options.jobs, select=options.select,
                    results_dir=options.results_dir, shards=options.shards)
    for filename in sorted(files):
        print(filename)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
