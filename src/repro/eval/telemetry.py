"""Streaming telemetry: epoch series, SLO burn rates, the flight recorder.

The observability PR's end-to-end demonstration, in two acts:

- **Serving under a fault window.**  The traffic eval's reference load
  point (Poisson arrivals at the reference rate) rides through its
  seeded mid-run packet-loss window with the telemetry plane attached:
  per-epoch goodput, latency quantiles, kv queue depths, NoC drops and
  DTU retransmits, all bucketed into 100k-cycle epochs.  Two SLOs
  watch the run — a latency objective on the end-to-end histogram and
  an availability objective on NoC delivery — and the multi-window
  burn-rate rules page on the fault window and resolve after it
  closes.
- **A domain kill under background loss.**  A two-domain system with
  heartbeats runs a syscall-heavy workload while a seeded fault plan
  drops packets throughout and halts domain 1's kernel core mid-run.
  The delivery SLO pages on the background loss *before* the heartbeat
  verdict; when the surviving kernel declares the peer dead, the
  failover verdict is annotated with that preceding alert and the
  flight recorder dumps each domain's final moments — the excerpt
  below is exactly what lands in CI artifacts after a real failure.

Everything is a pure function of the seeds: the report is
byte-identical across runs, worker counts, and engine shard counts.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.eval.traffic import (
    DEFAULT_SEED,
    FAULT_DROP_RATE,
    FAULT_WINDOW,
    REFERENCE_GAP,
    _curve_profile,
)
from repro.faults import FaultPlan
from repro.m3.kernel import syscalls
from repro.m3.system import M3System
from repro.obs import SloMonitor, SloSpec, render_dump, render_prometheus
from repro.workloads import traffic

#: telemetry epoch for the serving act (cycles); the reference run
#: spans ~1.9M cycles, so the series is ~19 epochs long.
EPOCH = 100_000

#: the two SLOs watching the serving run.  The latency objective is a
#: slow leak under the fault window (only its ticket rule trips); the
#: delivery objective burns an order of magnitude past budget there,
#: so its page rule fires and resolves with the window.
LATENCY_SLO = SloSpec("gw-latency", target=0.99,
                      series="traffic.latency_cycles", threshold=6_000)
LATENCY_WINDOWS = (("page", 2, 6, 6.0), ("ticket", 4, 8, 1.5))
DELIVERY_SLO = SloSpec("noc-delivery", target=0.999,
                       bad_series="noc.packets_dropped",
                       total_series="noc.packets_injected")
DELIVERY_WINDOWS = (("page", 1, 4, 6.0), ("ticket", 2, 8, 2.0))

#: the domain-kill act: 12 PEs in two domains, packet loss from cycle
#: zero, domain 1's kernel core halted mid-run (same geometry as the
#: domain-failover eval, scaled down to a syscall-loop workload).
FAIL_PE_COUNT = 12
FAIL_KERNEL_COUNT = 2
FAIL_LOSS_RATE = 0.01
FAIL_KILL_AT = 24_000
FAIL_EPOCH = 6_000
#: the loss rate is 10x this objective's budget, so the page fires on
#: the very first epoch — well before the heartbeat death verdict.
FAIL_SLO = SloSpec("noc-delivery", target=0.99,
                   bad_series="noc.packets_dropped",
                   total_series="noc.packets_injected")
FAIL_WINDOWS = (("page", 1, 3, 3.0), ("ticket", 2, 6, 1.5))
#: syscall-loop workload: rounds x (compute + NOOP syscall) per worker.
FAIL_WORKERS = 2
FAIL_ROUNDS = 60
FAIL_COMPUTE = 800


def _last_epoch(telemetry) -> int:
    """The highest closed epoch index across every series."""
    last = 0
    for name in telemetry.names():
        points = telemetry.points(name)
        if points:
            last = max(last, points[-1][0])
    return last


def _alert_rows(monitors: dict) -> list[tuple]:
    """(cycle, slo, severity, state, short, long) rows, cycle-sorted."""
    rows = []
    for name, alerts in monitors.items():
        for cycle, severity, state, short, long_burn in alerts:
            rows.append((cycle, name, severity, state, short, long_burn))
    return sorted(rows)


# -- act one: the serving run -------------------------------------------------


def serving_results(shards: int = 1) -> dict:
    """The faulted reference point with telemetry and SLOs attached."""
    state: dict = {}

    def instrument(system):
        telemetry = system.enable_telemetry(epoch=EPOCH)
        obs = system.sim.obs
        state["telemetry"] = telemetry
        state["latency"] = SloMonitor(obs, LATENCY_SLO,
                                      windows=LATENCY_WINDOWS)
        state["delivery"] = SloMonitor(obs, DELIVERY_SLO,
                                       windows=DELIVERY_WINDOWS)

    plan = FaultPlan(DEFAULT_SEED).drop(FAULT_DROP_RATE,
                                        window=FAULT_WINDOW)
    result = traffic.run_profile(
        _curve_profile(REFERENCE_GAP, name="telemetered"),
        fault_plan=plan, observe=True, shards=shards,
        instrument=instrument,
    )
    telemetry = state["telemetry"]
    telemetry.flush()
    over_series = state["latency"].bad_series
    quantiles = dict(telemetry.points("traffic.latency_cycles"))
    epochs = []
    for index in range(_last_epoch(telemetry) + 1):
        histogram = quantiles.get(index)
        epochs.append({
            "epoch": index,
            "cycles": telemetry.end_cycle(index),
            "sent": telemetry.value_at("traffic.sent", index),
            "done": telemetry.value_at("traffic.completions", index),
            "p50": (histogram.percentile(0.50)
                    if histogram is not None and histogram.count else None),
            "p99": (histogram.percentile(0.99)
                    if histogram is not None and histogram.count else None),
            "over": telemetry.value_at(over_series, index),
            "kv0_depth": telemetry.value_at("kv.kv0.depth", index),
            "kv1_depth": telemetry.value_at("kv.kv1.depth", index),
            "noc_lost": telemetry.value_at("noc.packets_dropped", index),
            "retransmits": telemetry.value_at("dtu.retransmits", index),
        })
    return {
        "completed": result.completed,
        "sent": result.sent,
        "epochs": epochs,
        "verdicts": [state["latency"].verdict(),
                     state["delivery"].verdict()],
        "timeline": list(state["delivery"].timeline),
        "alerts": _alert_rows({
            LATENCY_SLO.name: state["latency"].alerts,
            DELIVERY_SLO.name: state["delivery"].alerts,
        }),
    }


# -- act two: the domain kill -------------------------------------------------


def _syscall_worker(env, rounds: int, compute: int):
    """Compute + NOOP syscall loop — steady NoC traffic for the SLO."""
    for _ in range(rounds):
        yield env.compute(compute)
        yield from env.syscall(syscalls.NOOP)
    return rounds


def failover_results(seed: int = DEFAULT_SEED,
                     loss_rate: float = FAIL_LOSS_RATE) -> dict:
    """Kill a domain mid-run with the full observability stack on."""
    system = M3System(pe_count=FAIL_PE_COUNT,
                      kernel_count=FAIL_KERNEL_COUNT, reliable=True,
                      observe=True)
    plan = FaultPlan(seed).drop(loss_rate)
    plan.kill_pe(node=system.kernels[1].node, at=FAIL_KILL_AT)
    plan.install(system.platform)
    system.boot(with_fs=False)
    obs = system.sim.obs
    telemetry = system.enable_telemetry(epoch=FAIL_EPOCH)
    monitor = SloMonitor(obs, FAIL_SLO, windows=FAIL_WINDOWS)
    flight = system.enable_flight_recorder()
    system.start_heartbeats()
    workers = [
        system.spawn(_syscall_worker, FAIL_ROUNDS, FAIL_COMPUTE,
                     name=f"worker{index}", domain=0)
        for index in range(FAIL_WORKERS)
    ]
    finished = [system.wait(vpe) for vpe in workers]
    system.sim.run()  # drain heartbeat timers and the failover itself
    system.stop_heartbeats()
    telemetry.flush()

    kernel = system.kernels[0]
    peer = detected = completed = reason = None
    if kernel.failover_log:
        peer, detected, completed, reason = kernel.failover_log[0]
    dump = next((d for d in flight.dumps if "declared dead" in d["reason"]),
                None)
    prom = render_prometheus(obs).splitlines()
    prom_excerpt = [
        line for line in prom
        if line.split()[2 if line.startswith("#") else 0].startswith(
            "kernel0_"
        )
    ]
    return {
        "workers_finished": finished,
        "killed_at": FAIL_KILL_AT,
        "loss_rate": loss_rate,
        "peer": peer,
        "detected_at": detected,
        "completed_at": completed,
        "reason": reason,
        "annotation": kernel.failover_alerts.get(peer),
        "verdict": monitor.verdict(),
        "alerts": _alert_rows({FAIL_SLO.name: monitor.alerts}),
        "dump_text": (render_dump(dump, span_limit=4, instant_limit=8,
                                  series_limit=6)
                      if dump is not None else "(no flight dump)"),
        "prom_excerpt": prom_excerpt,
    }


def run(seed: int = DEFAULT_SEED, shards: int = 1) -> dict:
    del seed  # both acts carry their own seeds (kept for symmetry)
    return {
        "serving": serving_results(shards=shards),
        "failover": failover_results(),
    }


# -- rendering ----------------------------------------------------------------


def _series_table(serving: dict) -> str:
    rows = [
        (point["epoch"], f"{point['cycles']:,}", point["sent"],
         point["done"],
         point["p50"] if point["p50"] is not None else "-",
         point["p99"] if point["p99"] is not None else "-",
         point["over"], point["kv0_depth"], point["kv1_depth"],
         point["noc_lost"], point["retransmits"])
        for point in serving["epochs"]
    ]
    return render_table(
        f"Serving telemetry at the faulted reference point "
        f"(epoch = {EPOCH:,} cycles)",
        ["epoch", "end cycle", "sent", "done", "p50", "p99",
         f">{LATENCY_SLO.threshold // 1000}k", "kv0 q", "kv1 q",
         "NoC lost", "rtx"],
        rows,
    )


def _verdict_table(title: str, verdicts: list[dict]) -> str:
    rows = [
        (verdict["name"], verdict["objective"],
         f"{verdict['bad']}/{verdict['total']}",
         f"{verdict['good_fraction']:.4%}",
         f"{verdict['worst_burn']:.1f}x", verdict["alerts"],
         "BREACHED" if verdict["breached"] else "ok")
        for verdict in verdicts
    ]
    return render_table(
        title,
        ["slo", "objective", "bad/total", "good", "worst burn",
         "alerts", "verdict"],
        rows,
    )


def _timeline_table(timeline: list) -> str:
    rows = []
    for index, end_cycle, bad, total, burns, active in timeline:
        page_short, page_long = burns["page"]
        ticket_short, ticket_long = burns["ticket"]
        rows.append((
            index, f"{end_cycle:,}", bad, total,
            f"{page_short:.1f}", f"{page_long:.1f}",
            f"{ticket_short:.1f}", f"{ticket_long:.1f}",
            "+".join(active) if active else "-",
        ))
    page, ticket = DELIVERY_WINDOWS
    return render_table(
        f"Burn-rate timeline: {DELIVERY_SLO.name} "
        f"(page {page[1]}/{page[2]} epochs @ {page[3]:g}x, "
        f"ticket {ticket[1]}/{ticket[2]} epochs @ {ticket[3]:g}x)",
        ["epoch", "end cycle", "bad", "total", "page s", "page l",
         "ticket s", "ticket l", "firing"],
        rows,
    )


def _alert_lines(alerts: list) -> list[str]:
    return [
        f"cycle {cycle:>9,}: [{severity}] {name} {state} "
        f"(burn short {short:.1f}x / long {long_burn:.1f}x)"
        for cycle, name, severity, state, short, long_burn in alerts
    ]


def bench_table(results: dict) -> str:
    """The ``results/telemetry.txt`` report for :func:`run`."""
    serving = results["serving"]
    failover = results["failover"]
    annotation = failover["annotation"]
    lines = [
        _series_table(serving),
        "",
        _verdict_table("SLO verdicts over the serving run",
                       serving["verdicts"]),
        "",
        _timeline_table(serving["timeline"]),
        "",
        "Alert log (serving run)",
        "=======================",
        *_alert_lines(serving["alerts"]),
        "",
        "Failure flight recorder: domain kill under background loss",
        "==========================================================",
        f"packet loss rate {failover['loss_rate']} from boot; kernel "
        f"domain 1 core halted at cycle {failover['killed_at']:,}",
        *_alert_lines(failover["alerts"]),
        f"heartbeat verdict declared domain {failover['peer']} dead at "
        f"cycle {failover['detected_at']:,} ({failover['reason']}); "
        f"failover completed at cycle {failover['completed_at']:,}",
        (f"verdict annotation: preceded by [{annotation[2]}] "
         f"{annotation[1]} fired at cycle {annotation[0]:,} "
         f"({failover['detected_at'] - annotation[0]:,} cycles before "
         f"the death verdict)"
         if annotation is not None else "verdict annotation: none"),
        "",
        failover["dump_text"],
        "",
        "Prometheus exposition excerpt (surviving kernel's counters)",
        "===========================================================",
        *failover["prom_excerpt"],
    ]
    return "\n".join(lines)


def flight_variant() -> str:
    """A harsher, differently-seeded kill (CI's flight-recorder gate).

    Re-rolls the loss schedule at twice the rate under a new seed, so
    the CI determinism gate covers a distinct alert/dump pattern from
    the committed report's.
    """
    results = failover_results(seed=DEFAULT_SEED + 1,
                               loss_rate=2 * FAIL_LOSS_RATE)
    lines = [
        _verdict_table(
            f"Flight variant: loss {2 * FAIL_LOSS_RATE}, domain 1 "
            f"killed at cycle {FAIL_KILL_AT:,}",
            [results["verdict"]],
        ),
        *_alert_lines(results["alerts"]),
        f"death verdict at cycle {results['detected_at']:,}; "
        f"failover done at cycle {results['completed_at']:,}",
        "",
        results["dump_text"],
    ]
    return "\n".join(lines)


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.eval.telemetry")
    parser.add_argument(
        "--variant", choices=("flight",), default=None,
        help="run only the named variant (CI determinism gate)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine shard count for the serving act (results are "
        "byte-identical at any value; see docs/performance.md)",
    )
    options = parser.parse_args(argv)
    if options.variant == "flight":
        report = flight_variant()
    else:
        report = bench_table(run(shards=options.shards))
    print(report)
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
