"""Section 5.2: Linux on Xtensa vs Linux on ARM Cortex-A15.

"a Linux system call requires 320 cycles on ARM and 410 cycles on
Xtensa, creating a 2 MiB large file has 2.4 million cycles overhead on
ARM and 2.2 million cycles on Xtensa, and copying a 2 MiB file has 3.2
million cycles overhead on both architectures."

"Overhead" = total time minus the ideal (DTU-speed, 8 B/cycle)
transfer time of the bytes moved.
"""

from __future__ import annotations

from repro import params
from repro.eval.report import render_table
from repro.linuxsim.machine import (
    LinuxMachine,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)
from repro.workloads.data import deterministic_bytes

FILE_BYTES = params.MICRO_FILE_BYTES
BUFFER = params.MICRO_BUFFER_BYTES

#: ideal transfer cost of n bytes at DTU speed.
def _ideal(nbytes: int) -> int:
    return nbytes // params.DTU_BYTES_PER_CYCLE


def syscall_cycles(costs: params.LinuxCosts) -> int:
    machine = LinuxMachine(costs=costs)

    def program(lx):
        start = lx.sim.now
        yield from lx.null_syscall()
        return lx.sim.now - start

    return machine.run_program(program)


def create_overhead(costs: params.LinuxCosts) -> int:
    """Creating (writing) a 2 MiB file, minus the ideal transfer time."""
    machine = LinuxMachine(costs=costs)
    payload = deterministic_bytes("arm-create", BUFFER)

    def program(lx):
        start = lx.sim.now
        fd = yield from lx.open("/f", O_WRONLY | O_CREAT | O_TRUNC)
        written = 0
        while written < FILE_BYTES:
            yield from lx.write(fd, payload)
            written += BUFFER
        yield from lx.close(fd)
        return lx.sim.now - start

    total = machine.run_program(program)
    return total - _ideal(FILE_BYTES)


def copy_overhead(costs: params.LinuxCosts) -> int:
    """Copying a 2 MiB file, minus the ideal transfer time (2x: in+out)."""
    machine = LinuxMachine(costs=costs)
    node = machine.fs.create("/src")
    node.data.extend(deterministic_bytes("arm-copy", FILE_BYTES))

    def program(lx):
        start = lx.sim.now
        src = yield from lx.open("/src", O_RDONLY)
        dst = yield from lx.open("/dst", O_WRONLY | O_CREAT)
        while True:
            chunk = yield from lx.read(src, BUFFER)
            if not chunk:
                break
            yield from lx.write(dst, chunk)
        yield from lx.close(src)
        yield from lx.close(dst)
        return lx.sim.now - start

    total = machine.run_program(program)
    return total - 2 * _ideal(FILE_BYTES)


def run() -> list[tuple]:
    """(metric, Xtensa, ARM) rows mirroring Section 5.2."""
    rows = []
    rows.append(
        (
            "null syscall (cycles)",
            syscall_cycles(params.LINUX_XTENSA),
            syscall_cycles(params.LINUX_ARM),
        )
    )
    rows.append(
        (
            "create 2 MiB file, overhead (cycles)",
            create_overhead(params.LINUX_XTENSA),
            create_overhead(params.LINUX_ARM),
        )
    )
    rows.append(
        (
            "copy 2 MiB file, overhead (cycles)",
            copy_overhead(params.LINUX_XTENSA),
            copy_overhead(params.LINUX_ARM),
        )
    )
    return rows


def bench_table(rows: list[tuple]) -> str:
    """The ``results/tab_arm.txt`` table for :func:`run`'s rows."""
    return render_table(
        "Section 5.2: Linux on Xtensa vs ARM Cortex-A15",
        ["metric", "Xtensa", "ARM"],
        rows,
    )


def main() -> str:
    table = render_table(
        "Section 5.2: Linux on Xtensa vs ARM Cortex-A15",
        ["metric", "Xtensa", "ARM"],
        run(),
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
