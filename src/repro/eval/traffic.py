"""Serving traffic at scale: the throughput–latency evaluation.

The north star asks for a manycore that "serves heavy traffic"; this
eval drives the full serving stack — open-loop load generator, NIC
datagram path, gateway tier, session-routed replicated kv tier
(:mod:`repro.workloads.traffic`) — through three questions:

- **The curve.** An open-loop Poisson sweep across offered rates: the
  classic hockey stick, flat tails in the linear region, then queueing
  blow-up past saturation while goodput plateaus.  Tails are read from
  HDR-style log-linear histogram sub-buckets (precision 7, relative
  error < 1/128), so p999 resolves real stragglers instead of a 2x
  coarse bucket bound.
- **Arrival shape and faults.** At the reference rate, the same
  offered load arriving in bursts, and the same load ridden through a
  seeded mid-load packet-loss window (PR 1 fault plan + reliable DTU
  delivery): everything still completes; the damage shows up as
  retransmits and tail inflation.
- **The tail.** The slowest request of the observed reference run,
  attributed cycle by cycle with the causal tracer's critical path —
  the gateway-side share (gateway handling + routed kv RPC) split into
  paper components.

Fully deterministic: every number is a pure function of the profiles'
seeds; ``runall`` reproduces ``results/traffic.txt`` byte-identically
for any ``--jobs`` value.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.faults import FaultPlan
from repro.obs import causal
from repro.workloads import traffic

DEFAULT_SEED = 20160402  # the paper's conference date

#: Poisson sweep: mean inter-arrival gaps (cycles), heaviest last.
CURVE_GAPS = (9_000, 4_500, 3_000, 1_500, 900, 600)
#: the reference rate for the arrival-shape / fault / tail studies.
REFERENCE_GAP = 3_000
#: every eval point sends this many requests from this many clients.
REQUESTS = 600
CLIENTS = 480

#: mid-load packet-loss window for the faulted point.
FAULT_DROP_RATE = 0.01
FAULT_WINDOW = (150_000, 900_000)


def _curve_profile(gap: int, **overrides) -> traffic.TrafficProfile:
    return traffic.TrafficProfile(
        name=overrides.pop("name", f"poisson/{gap}"),
        seed=DEFAULT_SEED, clients=CLIENTS, requests=REQUESTS,
        mean_gap=gap, **overrides,
    )


def _summarize(result: traffic.TrafficResult) -> dict:
    """A pickleable summary of one load point (no simulator inside)."""
    histogram = result.histogram
    quantiles = {
        label: histogram.percentile(fraction) if histogram.count else 0
        for label, fraction in (
            ("p50", 0.50), ("p99", 0.99), ("p999", 0.999),
        )
    }
    return {
        "name": result.profile.name,
        "arrival": result.profile.arrival,
        "mean_gap": result.profile.mean_gap,
        "sent": result.sent,
        "completed": result.completed,
        "offered": result.offered_per_mcycle,
        "goodput": result.goodput_per_mcycle,
        **quantiles,
        "tx_retries": result.tx_retries + result.gw_tx_retries,
        "frames_dropped": result.frames_dropped,
        "kv_errors": result.kv_errors,
        "served_by": list(result.served_by),
        "route_counts": dict(result.route_counts),
        "replica_requests": dict(result.replica_requests),
        "noc_lost": result.noc_packets_lost,
        "retransmits": result.dtu_retransmits,
        "fault_events": result.fault_events,
    }


def _attribute_tail(result: traffic.TrafficResult) -> dict:
    """Critical-path the slowest request of an *observed* run.

    The trace roots at the gateway (the datagram path itself carries no
    trace context), so the breakdown covers the gateway-side share of
    the latency: gateway handling plus the routed kv RPC.  The rest of
    the end-to-end number is queueing before the gateway picked the
    request up — reported as the residual.
    """
    req_id, latency = max(result.latencies.items(),
                          key=lambda item: (item[1], -item[0]))
    request = causal.find_request(
        result.system.sim.obs, f"req{req_id}", category="traffic"
    )
    segments = causal.critical_path(request)
    breakdown = causal.component_breakdown(segments)
    return {
        "req_id": req_id,
        "latency": latency,
        "traced_cycles": request.total_cycles,
        "breakdown": breakdown,
    }


def run(seed: int = DEFAULT_SEED, shards: int = 1) -> dict:
    """Every load point plus the tail attribution, summarized.

    ``shards`` runs every point on the sharded engine; the summaries —
    and therefore the report — are byte-identical at any shard count
    (the determinism contract, see docs/performance.md).
    """
    del seed  # each profile carries its own seed (kept for symmetry)
    points = []
    reference = None
    for gap in CURVE_GAPS:
        observed = gap == REFERENCE_GAP
        result = traffic.run_profile(_curve_profile(gap), observe=observed,
                                     shards=shards)
        points.append(_summarize(result))
        if observed:
            reference = result
    bursty = traffic.run_profile(_curve_profile(
        REFERENCE_GAP, name="bursty", arrival="bursty",
    ), shards=shards)
    plan = FaultPlan(DEFAULT_SEED).drop(FAULT_DROP_RATE, window=FAULT_WINDOW)
    faulted = traffic.run_profile(
        _curve_profile(REFERENCE_GAP, name="faulted"), fault_plan=plan,
        shards=shards,
    )
    return {
        "curve": points,
        "bursty": _summarize(bursty),
        "faulted": _summarize(faulted),
        "tail": _attribute_tail(reference),
    }


# -- rendering ----------------------------------------------------------------


def _point_row(point: dict) -> tuple:
    return (
        point["name"],
        f"{point['offered']:,.0f}",
        f"{point['goodput']:,.0f}",
        f"{point['completed']}/{point['sent']}",
        point["p50"],
        point["p99"],
        point["p999"],
        point["tx_retries"],
        point["frames_dropped"],
    )


def bench_table(results: dict) -> str:
    """The ``results/traffic.txt`` report for :func:`run`."""
    headers = ["point", "offered/Mcyc", "goodput/Mcyc", "done",
               "p50", "p99", "p999", "tx retries", "dropped"]
    curve = render_table(
        f"Throughput–latency: open-loop Poisson sweep "
        f"({CLIENTS} clients, {REQUESTS} requests per point)",
        headers, [_point_row(point) for point in results["curve"]],
    )
    reference = next(point for point in results["curve"]
                     if point["mean_gap"] == REFERENCE_GAP)
    shapes = render_table(
        "Arrival shape and faults at the reference rate",
        headers + ["NoC lost", "retransmits"],
        [_point_row(point) + (point["noc_lost"], point["retransmits"])
         for point in (reference, results["bursty"], results["faulted"])],
    )
    replica_rows = [
        (replica, reference["route_counts"].get(replica, 0), served)
        for replica, served in sorted(
            reference["replica_requests"].items()
        )
    ]
    replicas = render_table(
        "Replica tier at the reference point (session router view)",
        ["replica", "sessions routed", "requests served"],
        replica_rows,
    )
    tail = results["tail"]
    total = tail["traced_cycles"]
    tail_rows = [
        (component, cycles, f"{100.0 * cycles / total:.1f}%")
        for component, cycles in sorted(
            tail["breakdown"].items(), key=lambda item: (-item[1], item[0])
        )
    ]
    attribution = render_table(
        f"Tail request attribution: req {tail['req_id']} — "
        f"{tail['latency']:,} cycles end-to-end, "
        f"{total:,} gateway-side (critical path)",
        ["component", "cycles", "share of gateway side"],
        tail_rows,
    )
    faulted = results["faulted"]
    gateway_loads = ", ".join(
        f"gw{index}={served}"
        for index, served in enumerate(reference["served_by"])
    )
    lines = [
        curve,
        "",
        shapes,
        "",
        replicas,
        "",
        attribution,
        "",
        "Notes",
        "=====",
        f"gateway balance at the reference point: {gateway_loads}",
        f"tail residual (queueing before gateway pickup): "
        f"{tail['latency'] - total:,} cycles",
        f"fault window: drop rate {FAULT_DROP_RATE} in cycles "
        f"[{FAULT_WINDOW[0]:,}, {FAULT_WINDOW[1]:,}) — "
        f"{faulted['fault_events']:,} packets dropped, "
        f"{faulted['retransmits']:,} DTU retransmits, "
        f"{faulted['completed']}/{faulted['sent']} requests still "
        f"completed",
        f"p99 under faults: {faulted['p99']:,} cycles vs "
        f"{reference['p99']:,} clean "
        f"(+{faulted['p99'] - reference['p99']:,})",
    ]
    return "\n".join(lines)


def fault_variant() -> str:
    """A harsher, differently-seeded fault plan (CI's second gate).

    The main report's faulted point double-checks one plan; this
    variant re-rolls the loss schedule at twice the rate so the CI
    determinism gate also covers a distinct retransmit pattern.
    """
    plan = FaultPlan(DEFAULT_SEED + 1).drop(
        2 * FAULT_DROP_RATE, window=FAULT_WINDOW
    )
    point = _summarize(traffic.run_profile(
        _curve_profile(REFERENCE_GAP, name="fault-variant"),
        fault_plan=plan,
    ))
    return render_table(
        f"Traffic fault variant: drop rate {2 * FAULT_DROP_RATE} in "
        f"[{FAULT_WINDOW[0]:,}, {FAULT_WINDOW[1]:,})",
        ["point", "offered/Mcyc", "goodput/Mcyc", "done",
         "p50", "p99", "p999", "tx retries", "dropped",
         "NoC lost", "retransmits"],
        [_point_row(point) + (point["noc_lost"], point["retransmits"])],
    )


#: the 4-domain scale variant: a 24-PE mesh split into 4 kernel
#: domains, one kv replica per domain, 3 gateways spread over the
#: non-zero domains — the shape the sharded engine is for.
VARIANT_PE_COUNT = 24
VARIANT_KERNEL_COUNT = 4
VARIANT_GATEWAYS = 3
#: a 4-domain kernel holds 3 peer send gates; give its DTU headroom.
VARIANT_EP_COUNT = 12


def shard_variant(shards: int = 1) -> str:
    """The 4-domain reference point (CI's shard-determinism gate).

    Byte-identical output for any ``shards`` in 1..4 — the table also
    reports the engine's cross-shard packet accounting at the *maximum*
    partition so the boundary traffic itself is pinned by the gate
    (the count is a property of the plan, not of ``shards``).
    """
    result = traffic.run_profile(
        _curve_profile(REFERENCE_GAP, name="4-domain"),
        shards=shards,
        pe_count=VARIANT_PE_COUNT, kernel_count=VARIANT_KERNEL_COUNT,
        gateways=VARIANT_GATEWAYS, ep_count=VARIANT_EP_COUNT,
    )
    point = _summarize(result)
    sharded = traffic.run_profile(
        _curve_profile(REFERENCE_GAP, name="4-domain"),
        shards=VARIANT_KERNEL_COUNT,
        pe_count=VARIANT_PE_COUNT, kernel_count=VARIANT_KERNEL_COUNT,
        gateways=VARIANT_GATEWAYS, ep_count=VARIANT_EP_COUNT,
    )
    table = render_table(
        f"Traffic 4-domain variant: {VARIANT_PE_COUNT} PEs, "
        f"{VARIANT_KERNEL_COUNT} kernel domains, "
        f"{VARIANT_GATEWAYS} gateways",
        ["point", "offered/Mcyc", "goodput/Mcyc", "done",
         "p50", "p99", "p999", "tx retries", "dropped",
         "routes", "replicas served"],
        [_point_row(point) + (
            "/".join(str(count) for _name, count
                     in sorted(point["route_counts"].items())),
            "/".join(str(served) for _name, served
                     in sorted(point["replica_requests"].items())),
        )],
    )
    cross = sharded.system.sim.cross_packets
    cross_bytes = sharded.system.sim.cross_bytes
    return "\n".join([
        table,
        f"cross-shard traffic at shards={VARIANT_KERNEL_COUNT}: "
        f"{cross:,} packets, {cross_bytes:,} bytes over the "
        f"quantum-barrier seam",
    ])


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.eval.traffic")
    parser.add_argument(
        "--variant", choices=("fault", "shard"), default=None,
        help="run only the named variant (CI determinism gate)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine shard count (results are byte-identical at any "
        "value; see docs/performance.md)",
    )
    options = parser.parse_args(argv)
    if options.variant == "fault":
        report = fault_variant()
    elif options.variant == "shard":
        report = shard_variant(shards=options.shards)
    else:
        report = bench_table(run(shards=options.shards))
    print(report)
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
