"""System introspection: what happened inside a simulated run.

``collect(system)`` gathers counters from every layer; ``report``
renders them as tables.  Useful after benchmarks ("was the NoC the
bottleneck?") and in examples.

The raw collection lives in :mod:`repro.eval.profile` (which also
renders observer histograms and link-occupancy reports); this module
keeps the compact single-page summary.
"""

from __future__ import annotations

import typing

from repro.eval.profile import collect, fs_items
from repro.eval.report import render_table

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.system import M3System

__all__ = ["collect", "report"]


def report(system: "M3System") -> str:
    """Human-readable multi-table dump of :func:`collect`."""
    data = collect(system)
    pieces = []
    pieces.append(
        render_table(
            f"System state at cycle {data['cycles']:,}",
            ["counter", "value"],
            [
                ("NoC packets", data["noc"]["packets"]),
                ("NoC payload bytes", data["noc"]["payload_bytes"]),
                ("kernel syscalls", data["kernel"]["syscalls"]),
                ("VPEs created", data["kernel"]["vpes_created"]),
                ("context switches", data["kernel"]["context_switches"]),
                ("DRAM free bytes", data["kernel"]["dram_free_bytes"]),
                ("serial lines", data["serial_lines"]),
            ],
        )
    )
    if data["dtus"]:
        pieces.append(
            render_table(
                "DTU traffic",
                ["node", "sent", "dropped", "privileged"],
                [
                    (d["node"], d["sent"], d["dropped"],
                     "yes" if d["privileged"] else "no")
                    for d in data["dtus"]
                ],
            )
        )
    fs_rows = [
        (name, entry["requests"], entry["blocks_used"], entry["inodes"])
        for name, entry in fs_items(system)
    ]
    if fs_rows:
        pieces.append(
            render_table(
                "Filesystem services",
                ["service", "requests", "blocks used", "inodes"],
                fs_rows,
            )
        )
    if data["noc"]["busiest_links"]:
        pieces.append(
            render_table(
                "Busiest NoC links",
                ["link", "utilisation"],
                [
                    (f"{a}->{b}", f"{u:.1%}")
                    for (a, b), u in data["noc"]["busiest_links"]
                ],
            )
        )
    return "\n\n".join(pieces)
