"""System introspection: what happened inside a simulated run.

``collect(system)`` gathers counters from every layer; ``report``
renders them as tables.  Useful after benchmarks ("was the NoC the
bottleneck?") and in examples.
"""

from __future__ import annotations

import typing

from repro.eval.report import render_table

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.system import M3System


def collect(system: "M3System") -> dict:
    """All layer counters as one nested dict."""
    network = system.platform.network
    utilisation = network.utilization_report()
    busiest = sorted(utilisation.items(), key=lambda kv: -kv[1])[:5]
    dtus = []
    for pe in system.platform.pes:
        dtu = pe.dtu
        if dtu.messages_sent or dtu.messages_dropped:
            dtus.append(
                {
                    "node": pe.node,
                    "sent": dtu.messages_sent,
                    "dropped": dtu.messages_dropped,
                    "privileged": dtu.privileged,
                }
            )
    filesystems = {
        name: {
            "requests": server.requests_served,
            "blocks_used": server.fs.block_bitmap.used,
            "inodes": len(server.fs.inodes),
        }
        for name, server in system.fs_servers.items()
    }
    return {
        "cycles": system.sim.now,
        "noc": {
            "packets": network.packets_sent,
            "payload_bytes": network.bytes_sent,
            "busiest_links": busiest,
        },
        "dtus": dtus,
        "kernel": {
            "syscalls": system.kernel.syscall_count,
            "vpes_created": len(system.kernel.vpes),
            "services": sorted(system.kernel.services),
            "context_switches": system.kernel.ctxsw.switch_count,
            "dram_free_bytes": system.kernel.memory.free_bytes,
        },
        "filesystems": filesystems,
        "ledger": system.sim.ledger.snapshot(),
        "serial_lines": len(system.serial_log),
    }


def report(system: "M3System") -> str:
    """Human-readable multi-table dump of :func:`collect`."""
    data = collect(system)
    pieces = []
    pieces.append(
        render_table(
            f"System state at cycle {data['cycles']:,}",
            ["counter", "value"],
            [
                ("NoC packets", data["noc"]["packets"]),
                ("NoC payload bytes", data["noc"]["payload_bytes"]),
                ("kernel syscalls", data["kernel"]["syscalls"]),
                ("VPEs created", data["kernel"]["vpes_created"]),
                ("context switches", data["kernel"]["context_switches"]),
                ("DRAM free bytes", data["kernel"]["dram_free_bytes"]),
                ("serial lines", data["serial_lines"]),
            ],
        )
    )
    if data["dtus"]:
        pieces.append(
            render_table(
                "DTU traffic",
                ["node", "sent", "dropped", "privileged"],
                [
                    (d["node"], d["sent"], d["dropped"],
                     "yes" if d["privileged"] else "no")
                    for d in data["dtus"]
                ],
            )
        )
    fs_rows = [
        (name, entry["requests"], entry["blocks_used"], entry["inodes"])
        for name, entry in _fs_items(system)
    ]
    if fs_rows:
        pieces.append(
            render_table(
                "Filesystem services",
                ["service", "requests", "blocks used", "inodes"],
                fs_rows,
            )
        )
    if data["noc"]["busiest_links"]:
        pieces.append(
            render_table(
                "Busiest NoC links",
                ["link", "utilisation"],
                [
                    (f"{a}->{b}", f"{u:.1%}")
                    for (a, b), u in data["noc"]["busiest_links"]
                ],
            )
        )
    return "\n\n".join(pieces)


def _fs_items(system: "M3System"):
    return [
        (name, {
            "requests": server.requests_served,
            "blocks_used": server.fs.block_bitmap.used,
            "inodes": len(server.fs.inodes),
        })
        for name, server in system.fs_servers.items()
    ]
