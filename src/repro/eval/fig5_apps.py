"""Figure 5: application-level benchmarks.

cat+tr, tar, untar, find, and sqlite on M3 / Lx-$ / Lx, each broken
into App / Xfers / OS stacks (Section 5.6).  Expected shape: cat+tr
about 2x faster on M3; tar/untar at roughly 20%/16% of Linux's time;
find slightly *slower* on M3; sqlite near parity (compute-dominated).
"""

from __future__ import annotations

from repro.eval.report import render_table, stacks
from repro.linuxsim.machine import LinuxMachine
from repro.m3.system import M3System
from repro.workloads.cat_tr import (
    INPUT_PATH,
    input_bytes,
    linux_cat_tr,
    m3_cat_tr,
)
from repro.workloads.trace import LinuxReplayer, M3Replayer
from repro.workloads.tracegen import TRACE_BENCHMARKS

BENCHMARKS = ["cat+tr", "tar", "untar", "find", "sqlite"]


def _measured_replay_m3(trace):
    def app(env):
        # Session establishment ahead of the measured window, mirroring
        # a Linux process that already has its libc/page tables warm.
        yield from env.vfs.stat("/")
        start = env.sim.now
        snapshot = env.sim.ledger.snapshot()
        yield from M3Replayer(env).replay(trace)
        return env.sim.now - start, env.sim.ledger.since(snapshot)

    return app


def _measured_replay_lx(trace):
    def program(lx):
        start = lx.sim.now
        snapshot = lx.sim.ledger.snapshot()
        yield from LinuxReplayer(lx).replay(trace)
        return lx.sim.now - start, lx.sim.ledger.since(snapshot)

    return program


def m3_run(benchmark: str) -> tuple[int, dict]:
    """(wall cycles, ledger delta) for one benchmark on M3."""
    system = M3System(pe_count=6).boot()
    if benchmark == "cat+tr":
        system.fs_preload({INPUT_PATH: input_bytes()})
        return system.run_app(m3_cat_tr, name="cat+tr")
    setup_files, trace = TRACE_BENCHMARKS[benchmark]()
    if setup_files:
        system.fs_preload(setup_files)
    return system.run_app(_measured_replay_m3(trace), name=benchmark)


def lx_run(benchmark: str, warm_cache: bool) -> tuple[int, dict]:
    """(wall cycles, ledger delta) for one benchmark on the baseline."""
    machine = LinuxMachine(warm_cache=warm_cache)
    if benchmark == "cat+tr":
        node = machine.fs.create(INPUT_PATH)
        node.data.extend(input_bytes())
        return machine.run_program(linux_cat_tr, name="cat+tr")
    setup_files, trace = TRACE_BENCHMARKS[benchmark]()
    for path, content in setup_files.items():
        directory = ""
        for part in machine.fs.split(path)[:-1]:
            directory = f"{directory}/{part}"
            if not machine.fs.exists(directory):
                machine.fs.mkdir(directory)
        machine.fs.create(path).data.extend(content)
    return machine.run_program(_measured_replay_lx(trace), name=benchmark)


def run() -> dict:
    """benchmark -> system -> {total, app, xfers, os}."""
    results: dict = {}
    for benchmark in BENCHMARKS:
        entry = {}
        for name, runner in (
            ("M3", lambda: m3_run(benchmark)),
            ("Lx-$", lambda: lx_run(benchmark, warm_cache=True)),
            ("Lx", lambda: lx_run(benchmark, warm_cache=False)),
        ):
            wall, ledger = runner()
            app, xfers, os_cycles = stacks(ledger)
            entry[name] = {
                "total": wall, "app": app, "xfers": xfers, "os": os_cycles,
            }
        results[benchmark] = entry
    return results


def bench_table(results: dict) -> str:
    """The ``results/fig5_apps.txt`` table for :func:`run`'s results."""
    rows = []
    for name, systems in results.items():
        lx_total = systems["Lx"]["total"]
        for system_name in ("M3", "Lx-$", "Lx"):
            entry = systems[system_name]
            rows.append(
                (name, system_name, entry["total"], entry["app"],
                 entry["xfers"], entry["os"],
                 f"{entry['total'] / lx_total:.2f}")
            )
    return render_table(
        "Figure 5: application-level benchmarks (cycles)",
        ["benchmark", "system", "total", "app", "xfers", "os", "vs Lx"],
        rows,
    )


def main() -> str:
    results = run()
    rows = []
    for benchmark, systems in results.items():
        lx_total = systems["Lx"]["total"]
        for name in ("M3", "Lx-$", "Lx"):
            entry = systems[name]
            rows.append(
                (
                    benchmark,
                    name,
                    entry["total"],
                    entry["app"],
                    entry["xfers"],
                    entry["os"],
                    f"{entry['total'] / lx_total:.2f}",
                )
            )
    table = render_table(
        "Figure 5: application-level benchmarks (cycles)",
        ["benchmark", "system", "total", "app", "xfers", "os", "vs Lx"],
        rows,
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
