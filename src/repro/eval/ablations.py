"""Ablations: design-choice probes beyond the paper's figures.

Each quantifies a claim the paper makes in prose:

- ``buffer_size_sweep`` — "M3 benefits from larger buffer sizes until
  all available space in the SPM is used" (Section 5.4).
- ``pipe_slot_sweep`` — ringbuffer slots = sender credits: one slot
  serialises writer and reader, more slots pipeline them
  (Sections 4.4.3/4.5.7).
- ``hop_latency_sweep`` / ``kernel_placement`` — syscall cost grows
  with NoC distance, the reason syscalls stay cheap despite crossing
  the chip (Section 5.3).
- ``multiplexing_tradeoff`` — "trading system utilization for
  supporting heterogeneous cores" (Sections 1, 3.4): dedicated PEs are
  faster, shared PEs need fewer cores but pay switch time.
- ``multi_fs_instances`` — Section 7's future work: more m3fs
  instances restore the scalability lost in Figure 6's find run.
"""

from __future__ import annotations

from repro import params
from repro.eval.report import render_table
from repro.hw.platform import Platform, PlatformConfig
from repro.m3.kernel import syscalls
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe, PipeWriter
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System
from repro.workloads.data import deterministic_bytes

# ---------------------------------------------------------------------------
# buffer sizes
# ---------------------------------------------------------------------------

BUFFER_SIZES = [1024, 2048, 4096, 8192, 16384, 32768]
SWEEP_FILE_BYTES = 1024 * 1024  # 1 MiB keeps the sweep quick


def read_time_with_buffer(buffer_bytes: int) -> int:
    """Cycles to read 1 MiB using ``buffer_bytes`` chunks."""
    system = M3System(pe_count=4).boot()
    system.fs_preload(
        {"/sweep.dat": deterministic_bytes("sweep", SWEEP_FILE_BYTES)},
        extent_blocks=SWEEP_FILE_BYTES // params.M3FS_BLOCK_BYTES,
    )

    def app(env):
        yield from env.vfs.stat("/")
        start = env.sim.now
        file = yield from env.vfs.open("/sweep.dat", OpenFlags.R)
        while True:
            chunk = yield from file.read(buffer_bytes)
            if not chunk:
                break
        yield from file.close()
        return env.sim.now - start

    return system.run_app(app, name="buffer-sweep")


def buffer_size_sweep() -> list[tuple[int, int]]:
    return [(size, read_time_with_buffer(size)) for size in BUFFER_SIZES]


# ---------------------------------------------------------------------------
# pipe slots / credits
# ---------------------------------------------------------------------------

PIPE_SLOT_COUNTS = [1, 2, 4, 8, 16]
PIPE_SWEEP_BYTES = 256 * 1024


def pipe_time_with_slots(slots: int) -> int:
    """Cycles to move 256 KiB through a pipe with ``slots`` credits."""
    system = M3System(pe_count=4).boot(with_fs=False)
    chunk = deterministic_bytes("pipe-sweep", 4096)

    def child(env, mem_sel, sgate_sel, ring, slot_count, rounds):
        writer = yield from PipeWriter.attach(
            env, mem_sel, sgate_sel, ring, slot_count
        )
        for _ in range(rounds):
            yield from writer.write(chunk)
        yield from writer.close()
        return ()

    def parent(env):
        pipe = yield from Pipe.create(env, ring_bytes=4096 * slots,
                                      slots=slots)
        vpe = yield from VPE.create(env, "writer")
        args = yield from pipe.delegate_writer(vpe)
        yield from vpe.run(child, *args, PIPE_SWEEP_BYTES // 4096)
        reader = yield from pipe.reader().open()
        start = env.sim.now
        while True:
            data = yield from reader.read(4096)
            if not data:
                break
        yield from vpe.wait()
        return env.sim.now - start

    return system.run_app(parent, name="pipe-sweep")


def pipe_slot_sweep() -> list[tuple[int, int]]:
    return [(slots, pipe_time_with_slots(slots)) for slots in PIPE_SLOT_COUNTS]


# ---------------------------------------------------------------------------
# NoC latency and kernel placement
# ---------------------------------------------------------------------------

HOP_CYCLES = [1, 3, 6, 10]


def syscall_time(hop_cycles: int | None = None,
                 app_node: int | None = None) -> int:
    """Average null-syscall cycles under custom NoC/placement settings."""
    kwargs = {}
    if hop_cycles is not None:
        kwargs["noc_hop_cycles"] = hop_cycles
    platform = Platform(PlatformConfig.homogeneous(30, **kwargs))
    system = M3System(platform=platform).boot(with_fs=False)
    iterations = 16

    def app(env):
        yield from env.syscall(syscalls.NOOP)  # warmup
        start = env.sim.now
        for _ in range(iterations):
            yield from env.syscall(syscalls.NOOP)
        return (env.sim.now - start) // iterations

    if app_node is not None:
        # claim the PEs before the target so the app lands there
        def hog(env):
            yield 10**12

        for node in range(1, app_node):
            system.spawn(hog, name=f"hog{node}")
    return system.run_app(app, name="syscall-sweep")


def hop_latency_sweep() -> list[tuple[int, int]]:
    return [(hop, syscall_time(hop_cycles=hop)) for hop in HOP_CYCLES]


def placement_sweep() -> list[tuple[int, int]]:
    """Syscall cost vs the app's Manhattan distance from the kernel."""
    rows = []
    for app_node in (1, 8, 17, 26):  # increasing distance in an 8-wide mesh
        rows.append((app_node, syscall_time(app_node=app_node)))
    return rows


# ---------------------------------------------------------------------------
# dedicated PEs vs multiplexed PE (Section 3.4's trade)
# ---------------------------------------------------------------------------

WORKER_COUNT = 4
WORKER_CYCLES = 100_000


def _worker(env):
    yield env.compute(WORKER_CYCLES)
    return ()


def dedicated_pes_time() -> tuple[int, int]:
    """(wall cycles, PEs used) with one PE per worker."""
    # kernel + parent + one PE per worker
    system = M3System(pe_count=WORKER_COUNT + 2).boot(with_fs=False)

    def parent(env):
        start = env.sim.now
        vpes = []
        for index in range(WORKER_COUNT):
            vpe = yield from VPE.create(env, f"w{index}")
            yield from vpe.run(_worker)
            vpes.append(vpe)
        for vpe in vpes:
            yield from vpe.wait()
        return env.sim.now - start

    wall = system.run_app(parent, name="dedicated")
    return wall, WORKER_COUNT + 1


def multiplexed_pe_time() -> tuple[int, int, int]:
    """(wall cycles, PEs used, switches) with all workers sharing the
    parent's PE via context switching."""
    system = M3System(pe_count=2, multiplexing=True).boot(with_fs=False)

    def parent(env):
        start = env.sim.now
        for index in range(WORKER_COUNT):
            vpe = yield from VPE.create(env, f"w{index}")
            yield from vpe.run(_worker)
            yield from vpe.wait_yield()
        return env.sim.now - start

    wall = system.run_app(parent, name="shared")
    return wall, 2, system.kernel.ctxsw.switch_count


def multiplexing_tradeoff() -> dict:
    dedicated_wall, dedicated_pes = dedicated_pes_time()
    shared_wall, shared_pes, switches = multiplexed_pe_time()
    return {
        "dedicated": {"wall": dedicated_wall, "pes": dedicated_pes},
        "shared": {"wall": shared_wall, "pes": shared_pes,
                   "switches": switches},
    }


# ---------------------------------------------------------------------------
# multiple m3fs instances vs the Figure 6 find bottleneck
# ---------------------------------------------------------------------------

FIND_INSTANCES = 16


def find_scaling_with_servers(server_count: int) -> float:
    """Average per-instance find time with 16 instances spread over
    ``server_count`` m3fs instances."""
    from repro.m3.lib.m3fs_client import M3fsClient
    from repro.workloads.tracegen import make_find_trace
    from repro.workloads.trace import M3Replayer

    system = M3System(pe_count=40).boot()  # instance "m3fs"
    servers = ["m3fs"] + [
        system.start_m3fs(name=f"m3fs{i}").service_name
        for i in range(1, server_count)
    ]
    go = system.sim.event("go")
    vpes = []
    for index in range(FIND_INSTANCES):
        service = servers[index % server_count]
        prefix = f"/i{index}"
        setup_files, trace = make_find_trace(prefix)
        system.fs_preload(setup_files, server=system.fs_servers[service])

        def app(env, service=service, trace=trace):
            client = yield from M3fsClient.connect(env, service=service)
            env.vfs.mount("/", client)
            yield go
            start = env.sim.now
            yield from M3Replayer(env).replay(trace)
            return env.sim.now - start

        vpes.append(system.spawn(app, name=f"find-{index}"))
    system.sim.run()
    go.succeed()
    walls = [system.wait(vpe) for vpe in vpes]
    return sum(walls) / len(walls)


def multi_fs_sweep() -> list[tuple[int, float]]:
    return [(count, find_scaling_with_servers(count)) for count in (1, 2, 4)]


# ---------------------------------------------------------------------------
# caches vs bulk DTU transfers (the Section 7 cache extension)
# ---------------------------------------------------------------------------

CACHE_REGION_BYTES = 64 * 1024
CACHE_HOT_BYTES = 2 * 1024
CACHE_HOT_ROUNDS = 32


def cache_vs_bulk() -> dict:
    """Timings of two access patterns under two memory organisations.

    Streaming (one pass over 64 KiB): bulk DTU transfers into the SPM
    amortise per-transfer overhead; a cache pays a miss per 32-byte
    line.  Hot-set (2 KiB touched 32 times): the cache hits after the
    first pass; bulk re-transfers every time.  This is why the paper's
    SPM-based prototype is *good* at streaming workloads and why
    Section 7 wants caches for the rest.
    """
    from repro.dtu.registers import MemoryPerm
    from repro.hw.cache import CachedMemory
    from repro.m3.lib.gate import MemGate

    results = {}

    def run(app):
        system = M3System(pe_count=2).boot(with_fs=False)
        return system.run_app(app)

    def setup(env):
        gate = yield from MemGate.create(
            env, CACHE_REGION_BYTES, MemoryPerm.RW.value
        )
        yield from gate.write(0, deterministic_bytes("c", CACHE_REGION_BYTES))
        return gate

    def stream_bulk(env):
        gate = yield from setup(env)
        start = env.sim.now
        for offset in range(0, CACHE_REGION_BYTES, 16 * 1024):
            yield from gate.read(offset, 16 * 1024)
        return env.sim.now - start

    def stream_cached(env):
        gate = yield from setup(env)
        cached = CachedMemory(env, gate)
        start = env.sim.now
        for offset in range(0, CACHE_REGION_BYTES, 4096):
            yield from cached.load(offset, 4096)
        return env.sim.now - start

    def hot_bulk(env):
        gate = yield from setup(env)
        start = env.sim.now
        for _ in range(CACHE_HOT_ROUNDS):
            yield from gate.read(0, CACHE_HOT_BYTES)
        return env.sim.now - start

    def hot_cached(env):
        gate = yield from setup(env)
        cached = CachedMemory(env, gate)
        start = env.sim.now
        for _ in range(CACHE_HOT_ROUNDS):
            yield from cached.load(0, CACHE_HOT_BYTES)
        return env.sim.now - start

    results["stream_bulk"] = run(stream_bulk)
    results["stream_cached"] = run(stream_cached)
    results["hot_bulk"] = run(hot_bulk)
    results["hot_cached"] = run(hot_cached)
    return results


# ---------------------------------------------------------------------------


def buffer_size_table(rows: list[tuple[int, int]]) -> str:
    """The ``results/abl_buffer_size.txt`` table."""
    return render_table("Ablation: read buffer size (1 MiB file)",
                        ["buffer bytes", "cycles"], rows)


def pipe_slot_table(rows: list[tuple[int, int]]) -> str:
    """The ``results/abl_pipe_slots.txt`` table."""
    return render_table("Ablation: pipe ring slots (256 KiB transfer)",
                        ["slots", "cycles"], rows)


def hop_latency_table(rows: list[tuple[int, int]]) -> str:
    """The ``results/abl_hop_latency.txt`` table."""
    return render_table("Ablation: NoC hop latency vs syscall cost",
                        ["hop cycles", "syscall cycles"], rows)


def placement_table(rows: list[tuple[int, int]]) -> str:
    """The ``results/abl_placement.txt`` table."""
    return render_table("Ablation: app placement vs syscall cost",
                        ["app node", "syscall cycles"], rows)


def multi_fs_table(rows: list[tuple[int, float]]) -> str:
    """The ``results/abl_multi_fs.txt`` table."""
    return render_table("Ablation: 16x find vs number of m3fs instances",
                        ["m3fs instances", "avg cycles/instance"], rows)


def multiplexing_table(trade: dict) -> str:
    """The ``results/abl_multiplexing.txt`` table."""
    return render_table(
        "Ablation: dedicated PEs vs one multiplexed PE (4 workers)",
        ["configuration", "wall cycles", "PEs"],
        [("dedicated", trade["dedicated"]["wall"], trade["dedicated"]["pes"]),
         ("shared+ctxsw", trade["shared"]["wall"], trade["shared"]["pes"])])


def cache_table(results: dict) -> str:
    """The ``results/abl_cache.txt`` table."""
    return render_table(
        "Ablation: SPM+bulk transfers vs cache (cycles)",
        ["pattern", "bulk DTU", "cached"],
        [("stream 64 KiB once", results["stream_bulk"],
          results["stream_cached"]),
         ("2 KiB hot set x32", results["hot_bulk"], results["hot_cached"])])


#: result-file stem -> (sweep function, table renderer); the benchmark
#: suite and repro.eval.runall both write these files through this map.
BENCH_SWEEPS = {
    "abl_buffer_size": (buffer_size_sweep, buffer_size_table),
    "abl_pipe_slots": (pipe_slot_sweep, pipe_slot_table),
    "abl_hop_latency": (hop_latency_sweep, hop_latency_table),
    "abl_placement": (placement_sweep, placement_table),
    "abl_multiplexing": (multiplexing_tradeoff, multiplexing_table),
    "abl_cache": (cache_vs_bulk, cache_table),
    "abl_multi_fs": (multi_fs_sweep, multi_fs_table),
}


def main() -> str:  # pragma: no cover - CLI convenience
    pieces = [
        render_table("Ablation: read buffer size (1 MiB file)",
                     ["buffer bytes", "cycles"], buffer_size_sweep()),
        render_table("Ablation: pipe ring slots (256 KiB transfer)",
                     ["slots", "cycles"], pipe_slot_sweep()),
        render_table("Ablation: NoC hop latency vs syscall cost",
                     ["hop cycles", "syscall cycles"], hop_latency_sweep()),
        render_table("Ablation: app placement vs syscall cost",
                     ["app node", "syscall cycles"], placement_sweep()),
        render_table(
            "Ablation: 16x find vs number of m3fs instances",
            ["m3fs instances", "avg cycles/instance"],
            multi_fs_sweep(),
        ),
    ]
    cache = cache_vs_bulk()
    pieces.append(
        render_table(
            "Ablation: SPM+bulk transfers vs cache (cycles)",
            ["pattern", "bulk DTU", "cached"],
            [
                ("stream 64 KiB once", cache["stream_bulk"],
                 cache["stream_cached"]),
                ("2 KiB hot set x32", cache["hot_bulk"],
                 cache["hot_cached"]),
            ],
        )
    )
    trade = multiplexing_tradeoff()
    pieces.append(
        render_table(
            "Ablation: dedicated PEs vs one multiplexed PE (4 workers)",
            ["configuration", "wall cycles", "PEs"],
            [
                ("dedicated", trade["dedicated"]["wall"],
                 trade["dedicated"]["pes"]),
                ("shared+ctxsw", trade["shared"]["wall"],
                 trade["shared"]["pes"]),
            ],
        )
    )
    output = "\n\n".join(pieces)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover
    main()
