"""Critical-path report: where a traced request's cycles go.

Two scenarios, both driven through the causal tracer
(:mod:`repro.obs.causal`):

- **syscall** — the Figure-3 null system call (warm), traced end to
  end: libm3 marshalling, the DTU message span, NoC transfer, the
  kernel's handler, and the reply path.
- **open_session (k=2)** — the ``fig6_multikernel`` setup at two
  kernel domains: a client in domain 1 opens a session with an m3fs
  instance living in domain 0, so the request crosses the inter-kernel
  protocol (``srv_open``) twice — visible as ``inter-kernel`` hops on
  the critical path.

For each scenario the report lists the critical-path segments (every
cycle of the root interval charged to the deepest covering span) and
the per-component totals.  The partition is exact, so the named
components always account for the full measured latency — the report
asserts the >= 95% floor anyway, as a regression tripwire.

Fully deterministic: fresh simulators, fixed seeds, pure functions of
the recorded spans; ``runall`` reproduces ``results/critical_path.txt``
byte-identically for any ``--jobs`` value.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.m3.kernel import syscalls
from repro.m3.lib.m3fs_client import M3fsClient
from repro.m3.system import M3System
from repro.obs import causal

#: warm-up iterations before the profiled null syscall (the last one
#: is the measured request, matching Figure 3's warm measurement).
SYSCALL_ITERATIONS = 4

#: the cross-domain scenario's mesh (a small fig6_multikernel layout).
CROSS_DOMAIN_PES = 8
KERNEL_DOMAINS = 2


def profile_noop_syscall() -> causal.Request:
    """The Figure-3 null syscall, traced; returns the warm request."""
    system = M3System(pe_count=4, observe=True).boot(with_fs=False)

    def app(env):
        for _ in range(SYSCALL_ITERATIONS):
            yield from env.syscall(syscalls.NOOP)

    system.run_app(app, name="syscall-bench")
    # find_request returns the *last* matching root: the warm iteration.
    return causal.find_request(system.sim.obs, syscalls.NOOP)


def profile_cross_domain_open() -> causal.Request:
    """An ``open_session`` that crosses two kernel domains.

    The m3fs instance registers with kernel 0; the client VPE runs in
    domain 1, so its kernel satisfies the syscall by forwarding a
    ``srv_open`` over the inter-kernel channel (docs/protocols.md).
    """
    system = M3System(
        pe_count=CROSS_DOMAIN_PES, kernel_count=KERNEL_DOMAINS, observe=True
    ).boot(with_fs=False)
    system.start_m3fs(name="m3fs", domain=0)

    def app(env):
        yield from M3fsClient.connect(env, service="m3fs")
        return 0

    system.wait(system.spawn(app, name="remote-open", domain=1))
    return causal.find_request(system.sim.obs, syscalls.OPEN_SESSION)


def run() -> dict:
    """scenario label -> traced :class:`~repro.obs.causal.Request`."""
    return {
        "syscall": profile_noop_syscall(),
        "open_session (k=2)": profile_cross_domain_open(),
    }


# -- rendering ---------------------------------------------------------------


def named_cycles(breakdown: dict) -> int:
    """Cycles attributed to a named component (everything but other)."""
    return sum(c for component, c in breakdown.items()
               if component != "other")


def bench_table(results: dict) -> str:
    """The ``results/critical_path.txt`` report for :func:`run`.

    Shared by the benchmark suite and :mod:`repro.eval.runall` so both
    write bit-identical files.
    """
    parts = []
    for label, request in results.items():
        segments = causal.critical_path(request)
        breakdown = causal.component_breakdown(segments)
        total = request.total_cycles
        named = named_cycles(breakdown)
        if named < 0.95 * total:
            raise AssertionError(
                f"{label}: only {named}/{total} cycles attributed to "
                "named components (floor: 95%)"
            )
        rows = [
            (segment.start - request.root.begin, segment.cycles,
             segment.component, segment.span.name, segment.span.category,
             segment.span.node)
            for segment in segments
        ]
        parts.append(render_table(
            f"Critical path: {label} — {total:,} cycles end-to-end",
            ["at", "cycles", "component", "span", "category", "node"],
            rows,
        ))
        summary = [
            (component, cycles, f"{100.0 * cycles / total:.1f}%")
            for component, cycles in sorted(
                breakdown.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        summary.append(("(attributed)", named,
                        f"{100.0 * named / total:.1f}%"))
        parts.append(render_table(
            f"Component breakdown: {label}",
            ["component", "cycles", "share"],
            summary,
        ))
    return "\n\n".join(parts)


def main() -> str:
    table = bench_table(run())
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
