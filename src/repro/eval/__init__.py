"""The evaluation harness: one module per paper figure/table.

Every ``fig*``/``tab*`` module exposes ``run()`` returning structured
rows and ``main()`` printing the paper-style table.  The benchmark
suite under ``benchmarks/`` drives these and asserts the paper's
qualitative claims (who wins, by roughly what factor, where the
crossovers fall).
"""

from repro.eval.report import render_table

__all__ = ["render_table"]
