"""Figure 6: scalability with a single kernel and a single m3fs.

"we ran the application-level benchmarks again, with varying number of
benchmark instances in parallel ... we replaced the reading/writing
from/to the DRAM with a spinning loop of the same time" (Section 5.7).
Reported: average time per instance, normalised to the 1-instance run
(flatter is better).  Expected shape: near-flat to 4 instances, mild
degradation at 8, significant degradation for find and untar at 16,
cat+tr nearly flat throughout.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.m3.system import M3System
from repro.workloads.cat_tr import INPUT_PATH, input_bytes, m3_cat_tr
from repro.workloads.trace import M3Replayer
from repro.workloads.tracegen import TRACE_BENCHMARKS

BENCHMARKS = ["cat+tr", "tar", "untar", "find", "sqlite"]
INSTANCE_COUNTS = [1, 2, 4, 8, 16]


def _spin_replay_app(trace, go):
    def app(env):
        env.spin_io = True
        yield from env.vfs.stat("/")  # session setup before the barrier
        yield go
        start = env.sim.now
        yield from M3Replayer(env).replay(trace)
        return env.sim.now - start

    return app


def _cat_tr_app(prefix, go):
    def app(env):
        yield go
        wall, _ledger = yield from m3_cat_tr(env, spin=True, prefix=prefix)
        return wall

    return app


def average_instance_time(benchmark: str, instances: int) -> float:
    """Average cycles per instance with ``instances`` running in parallel."""
    from repro.m3.services.m3fs.superblock import SuperBlock

    # 16 tar instances keep ~40 MiB of file data live; give the single
    # m3fs instance a 128 MiB volume (the DRAM is sized to match).
    system = M3System(pe_count=40, dram_bytes=192 * 1024 * 1024).boot(
        fs_kwargs={"superblock": SuperBlock(total_blocks=128 * 1024)}
    )
    go = system.sim.event("go")
    vpes = []
    for index in range(instances):
        prefix = f"/i{index}"
        if benchmark == "cat+tr":
            system.fs_preload({prefix + INPUT_PATH: input_bytes()})
            app = _cat_tr_app(prefix, go)
        else:
            setup_files, trace = TRACE_BENCHMARKS[benchmark](prefix)
            if setup_files:
                system.fs_preload(setup_files)
            elif not system.fs_server.fs.exists(prefix):
                # benchmarks with no inputs still need their namespace
                system.fs_server.fs.mkdir(prefix)
            app = _spin_replay_app(trace, go)
        vpes.append(system.spawn(app, name=f"{benchmark}-{index}"))
    system.sim.run()  # everyone reaches the barrier (or queues behind it)
    go.succeed()
    walls = [system.wait(vpe) for vpe in vpes]
    return sum(walls) / len(walls)


def run(benchmarks=None, instance_counts=None) -> dict:
    """benchmark -> [(instances, avg cycles, normalised)], flat-is-good."""
    results: dict = {}
    for benchmark in benchmarks or BENCHMARKS:
        series = []
        baseline = None
        for count in instance_counts or INSTANCE_COUNTS:
            if benchmark == "cat+tr" and count == 1:
                # The paper has no 1-PE data point for cat+tr (it needs
                # two PEs per instance); normalise to 2 instances? No —
                # the paper normalises to one *instance*, which still
                # uses two PEs.  Keep it.
                pass
            average = average_instance_time(benchmark, count)
            if baseline is None:
                baseline = average
            series.append((count, average, average / baseline))
        results[benchmark] = series
    return results


def bench_table(results: dict) -> str:
    """The ``results/fig6_scale.txt`` table for :func:`run`'s results."""
    rows = []
    for benchmark, series in results.items():
        for count, average, norm in series:
            rows.append((benchmark, count, int(average), f"{norm:.2f}"))
    return render_table(
        "Figure 6: avg time per instance, normalised (flatter is better)",
        ["benchmark", "instances", "avg cycles", "normalised"],
        rows,
    )


def main() -> str:
    results = run()
    rows = []
    for benchmark, series in results.items():
        for count, average, normalised in series:
            rows.append((benchmark, count, int(average), f"{normalised:.2f}"))
    table = render_table(
        "Figure 6: scalability — avg time per instance, normalised to 1 "
        "instance (flatter is better)",
        ["benchmark", "instances", "avg cycles", "normalised"],
        rows,
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
