"""Plain-text table rendering for experiment reports."""

from __future__ import annotations


def _format(value) -> str:
    # bool is a subclass of int; check it first so flags render as
    # True/False instead of 1/0.
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(title: str, headers: list[str], rows: list[tuple]) -> str:
    """An aligned monospace table with a title rule."""
    cells = [[_format(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def stacks(ledger: dict) -> tuple[int, int, int]:
    """(app, xfers, os) cycles from a ledger delta — the figures' stacks.

    The ``fft`` tag (Figure 7) counts as application computation here;
    fig7 reports it separately.
    """
    app = ledger.get("app", 0) + ledger.get("fft", 0)
    xfers = ledger.get("xfer", 0)
    os_cycles = ledger.get("os", 0)
    return app, xfers, os_cycles
