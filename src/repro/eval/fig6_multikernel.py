"""Figure 6 rerun with a partitioned mesh: multi-kernel scale-out.

Section 7 names "multiple kernel instances" as the way to scale M3
beyond what one kernel PE and one m3fs instance can serve: "the
M3 kernel can be distributed as well by instantiating it on multiple
PEs", with each kernel managing a fraction of the PEs.  This figure
reruns the worst Figure-6 data point — 16 parallel instances, where
``find`` and ``untar`` degrade hard against a single kernel/filesystem
— with the mesh partitioned into 1, 2, and 4 kernel domains, each
domain running its own m3fs instance.  The per-instance average should
shrink as domains are added, because both the kernel's syscall channel
and the filesystem service stop being a single shared bottleneck.
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.m3.system import M3System
from repro.workloads.trace import M3Replayer
from repro.workloads.tracegen import TRACE_BENCHMARKS

#: the two benchmarks whose 16-instance runs degrade most in Figure 6.
BENCHMARKS = ["find", "untar"]
KERNEL_COUNTS = [1, 2, 4]
INSTANCES = 16

PE_COUNT = 40
DRAM_BYTES = 192 * 1024 * 1024
#: aggregate filesystem volume, split evenly across the domains.
TOTAL_FS_BLOCKS = 64 * 1024


def _fs_name(domain: int) -> str:
    return "m3fs" if domain == 0 else f"m3fs{domain}"


def _spin_replay_app(trace, service, go):
    def app(env):
        from repro.m3.lib.m3fs_client import M3fsClient

        env.spin_io = True
        client = yield from M3fsClient.connect(env, service=service)
        env.vfs.mount("/", client)
        yield from env.vfs.stat("/")  # session setup before the barrier
        yield go
        start = env.sim.now
        yield from M3Replayer(env).replay(trace)
        return env.sim.now - start

    return app


def average_instance_time(benchmark: str, kernel_count: int,
                          shards: int = 1) -> float:
    """Average cycles per instance: 16 instances spread round-robin
    over ``kernel_count`` kernel domains, each with its own m3fs.

    ``shards`` runs the sharded engine (capped at ``kernel_count`` —
    shard boundaries follow domain boundaries); averages are identical
    at every legal shard count.
    """
    from repro.m3.services.m3fs.superblock import SuperBlock

    system = M3System(
        pe_count=PE_COUNT, kernel_count=kernel_count, dram_bytes=DRAM_BYTES,
        shards=min(shards, kernel_count),
    ).boot(with_fs=False)
    for domain in range(kernel_count):
        system.start_m3fs(
            name=_fs_name(domain), domain=domain,
            superblock=SuperBlock(
                total_blocks=TOTAL_FS_BLOCKS // kernel_count
            ),
        )
    go = system.sim.event("go")
    vpes = []
    for index in range(INSTANCES):
        domain = index % kernel_count
        server = system.fs_servers[_fs_name(domain)]
        prefix = f"/i{index}"
        setup_files, trace = TRACE_BENCHMARKS[benchmark](prefix)
        if setup_files:
            system.fs_preload(setup_files, server=server)
        elif not server.fs.exists(prefix):
            server.fs.mkdir(prefix)
        app = _spin_replay_app(trace, _fs_name(domain), go)
        vpes.append(
            system.spawn(app, name=f"{benchmark}-{index}", domain=domain)
        )
    system.sim.run()  # everyone reaches the barrier (or queues behind it)
    go.succeed()
    walls = [system.wait(vpe) for vpe in vpes]
    return sum(walls) / len(walls)


def run(benchmarks=None, kernel_counts=None, shards: int = 1) -> dict:
    """benchmark -> [(kernel domains, avg cycles, vs 1 domain)]."""
    results: dict = {}
    for benchmark in benchmarks or BENCHMARKS:
        series = []
        baseline = None
        for count in kernel_counts or KERNEL_COUNTS:
            average = average_instance_time(benchmark, count, shards=shards)
            if baseline is None:
                baseline = average
            series.append((count, average, average / baseline))
        results[benchmark] = series
    return results


def merge_points(averages: dict) -> dict:
    """Assemble :func:`run`-shaped results from separately computed
    ``(benchmark, kernel_count) -> average`` points (the parallel
    runner computes points in any order)."""
    results: dict = {}
    for benchmark in BENCHMARKS:
        series = []
        baseline = None
        for count in KERNEL_COUNTS:
            average = averages[(benchmark, count)]
            if baseline is None:
                baseline = average
            series.append((count, average, average / baseline))
        results[benchmark] = series
    return results


def bench_table(results: dict) -> str:
    """The ``results/fig6_multikernel.txt`` table."""
    rows = []
    for benchmark, series in results.items():
        for count, average, norm in series:
            rows.append((benchmark, count, int(average), f"{norm:.2f}"))
    return render_table(
        "Figure 6 rerun: 16 instances across kernel domains "
        "(smaller is better)",
        ["benchmark", "kernel domains", "avg cycles", "vs 1 domain"],
        rows,
    )


def main(argv=None) -> str:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.fig6_multikernel"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="engine shard count (capped per point at its kernel count; "
        "the table is byte-identical at any value)",
    )
    options = parser.parse_args(argv)
    table = bench_table(run(shards=options.shards))
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
