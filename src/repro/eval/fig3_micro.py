"""Figure 3: system calls and file operations.

Left: a null system call on M3 (~200 cycles: ~30 transfer + ~170
software) vs Linux (410 cycles on Xtensa).  Right: reading/writing a
2 MiB file with 4 KiB buffers and piping 2 MiB between two
processes/VPEs, for M3 / Lx-$ (no cache misses) / Lx, each broken into
"Xfers" and "Other".
"""

from __future__ import annotations

from repro import params
from repro.eval.report import render_table
from repro.linuxsim.machine import (
    LinuxMachine,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
)
from repro.m3.kernel import syscalls
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe, PipeWriter
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System
from repro.workloads.data import deterministic_bytes

FILE_BYTES = params.MICRO_FILE_BYTES
BUFFER = params.MICRO_BUFFER_BYTES
SYSCALL_ITERATIONS = 16

#: the unfragmented 2 MiB file: one extent covering everything.
UNFRAGMENTED_BLOCKS = FILE_BYTES // params.M3FS_BLOCK_BYTES


def _measure(env_or_lx, body):
    """Generator: run ``body`` once for warmup, then measured."""
    yield from body()
    start = env_or_lx.sim.now
    snapshot = env_or_lx.sim.ledger.snapshot()
    yield from body()
    delta = env_or_lx.sim.ledger.since(snapshot)
    return env_or_lx.sim.now - start, delta


# -- M3 side ------------------------------------------------------------------


def m3_syscall_cycles() -> tuple[int, dict]:
    """Average cycles of a null syscall on M3 (warm)."""
    system = M3System(pe_count=4).boot(with_fs=False)

    def app(env):
        def body():
            for _ in range(SYSCALL_ITERATIONS):
                yield from env.syscall(syscalls.NOOP)

        wall, delta = yield from _measure(env, body)
        return wall, delta

    wall, delta = system.run_app(app, name="syscall-bench")
    scaled = {tag: cycles // SYSCALL_ITERATIONS for tag, cycles in delta.items()}
    return wall // SYSCALL_ITERATIONS, scaled


def m3_read_cycles() -> tuple[int, dict]:
    system = M3System(pe_count=4).boot()
    system.fs_preload(
        {"/bench.dat": deterministic_bytes("bench", FILE_BYTES)},
        extent_blocks=UNFRAGMENTED_BLOCKS,
    )

    def app(env):
        def body():
            file = yield from env.vfs.open("/bench.dat", OpenFlags.R)
            while True:
                chunk = yield from file.read(BUFFER)
                if not chunk:
                    break
            yield from file.close()

        return (yield from _measure(env, body))

    return system.run_app(app, name="read-bench")


def m3_write_cycles() -> tuple[int, dict]:
    system = M3System(pe_count=4).boot()
    payload = deterministic_bytes("write", BUFFER)

    def app(env):
        iteration = [0]

        def body():
            path = f"/out{iteration[0]}.dat"
            iteration[0] += 1
            file = yield from env.vfs.open(
                path, OpenFlags.W | OpenFlags.CREATE
            )
            written = 0
            while written < FILE_BYTES:
                yield from file.write(payload)
                written += BUFFER
            yield from file.close()

        return (yield from _measure(env, body))

    return system.run_app(app, name="write-bench")


def m3_pipe_cycles() -> tuple[int, dict]:
    """2 MiB through a pipe, serialised (ring of one slot) so no two PEs
    do useful work in parallel — the paper's fairness rule (Section 5.1).
    """
    system = M3System(pe_count=4).boot(with_fs=False)
    payload = deterministic_bytes("pipe", BUFFER)

    def child(env, mem_sel, sgate_sel, ring, slots, rounds):
        writer = yield from PipeWriter.attach(env, mem_sel, sgate_sel, ring,
                                              slots)
        for _ in range(rounds):
            yield from writer.write(payload)
        yield from writer.close()
        return ()

    def parent(env):
        def body():
            pipe = yield from Pipe.create(env, ring_bytes=BUFFER, slots=1)
            vpe = yield from VPE.create(env, "writer")
            args = yield from pipe.delegate_writer(vpe)
            yield from vpe.run(child, *args, FILE_BYTES // BUFFER)
            reader = yield from pipe.reader().open()
            while True:
                chunk = yield from reader.read(BUFFER)
                if not chunk:
                    break
            yield from vpe.wait()

        return (yield from _measure(env, body))

    return system.run_app(parent, name="pipe-bench")


# -- Linux side -----------------------------------------------------------------


def lx_syscall_cycles(warm_cache: bool = False,
                      costs=params.LINUX_XTENSA) -> tuple[int, dict]:
    machine = LinuxMachine(costs=costs, warm_cache=warm_cache)

    def program(lx):
        def body():
            for _ in range(SYSCALL_ITERATIONS):
                yield from lx.null_syscall()

        wall, delta = yield from _measure(lx, body)
        return wall, delta

    wall, delta = machine.run_program(program)
    scaled = {tag: cycles // SYSCALL_ITERATIONS for tag, cycles in delta.items()}
    return wall // SYSCALL_ITERATIONS, scaled


def lx_read_cycles(warm_cache: bool) -> tuple[int, dict]:
    machine = LinuxMachine(warm_cache=warm_cache)
    node = machine.fs.create("/bench.dat")
    node.data.extend(deterministic_bytes("bench", FILE_BYTES))

    def program(lx):
        def body():
            fd = yield from lx.open("/bench.dat", O_RDONLY)
            while True:
                chunk = yield from lx.read(fd, BUFFER)
                if not chunk:
                    break
            yield from lx.close(fd)

        return (yield from _measure(lx, body))

    return machine.run_program(program)


def lx_write_cycles(warm_cache: bool) -> tuple[int, dict]:
    machine = LinuxMachine(warm_cache=warm_cache)
    payload = deterministic_bytes("write", BUFFER)

    def program(lx):
        iteration = [0]

        def body():
            path = f"/out{iteration[0]}.dat"
            iteration[0] += 1
            fd = yield from lx.open(path, O_WRONLY | O_CREAT | O_TRUNC)
            written = 0
            while written < FILE_BYTES:
                yield from lx.write(fd, payload)
                written += BUFFER
            yield from lx.close(fd)

        return (yield from _measure(lx, body))

    return machine.run_program(program)


def lx_pipe_cycles(warm_cache: bool) -> tuple[int, dict]:
    machine = LinuxMachine(warm_cache=warm_cache)
    payload = deterministic_bytes("pipe", BUFFER)

    def child(lx, write_fd, rounds):
        for _ in range(rounds):
            yield from lx.write(write_fd, payload)
        yield from lx.close(write_fd)
        return ()

    def program(lx):
        def body():
            read_fd, write_fd = yield from lx.pipe()
            child_env = yield from lx.fork(
                child, write_fd, FILE_BYTES // BUFFER
            )
            yield from lx.close(write_fd)
            while True:
                chunk = yield from lx.read(read_fd, BUFFER)
                if not chunk:
                    break
            yield from lx.close(read_fd)
            yield from lx.waitpid(child_env)

        return (yield from _measure(lx, body))

    return machine.run_program(program)


# -- assembly -------------------------------------------------------------------


def run() -> dict:
    """All Figure 3 numbers: op -> system -> (total, xfers, other)."""
    results: dict = {}

    def pack(wall: int, ledger: dict) -> dict:
        xfers = ledger.get("xfer", 0)
        return {"total": wall, "xfers": xfers, "other": wall - xfers}

    results["syscall"] = {
        "M3": pack(*m3_syscall_cycles()),
        "Lx-$": pack(*lx_syscall_cycles(warm_cache=True)),
        "Lx": pack(*lx_syscall_cycles(warm_cache=False)),
    }
    results["read"] = {
        "M3": pack(*m3_read_cycles()),
        "Lx-$": pack(*lx_read_cycles(True)),
        "Lx": pack(*lx_read_cycles(False)),
    }
    results["write"] = {
        "M3": pack(*m3_write_cycles()),
        "Lx-$": pack(*lx_write_cycles(True)),
        "Lx": pack(*lx_write_cycles(False)),
    }
    results["pipe"] = {
        "M3": pack(*m3_pipe_cycles()),
        "Lx-$": pack(*lx_pipe_cycles(True)),
        "Lx": pack(*lx_pipe_cycles(False)),
    }
    return results


def bench_table(results: dict) -> str:
    """The ``results/fig3_micro.txt`` table for :func:`run`'s results.

    Shared by the benchmark suite and :mod:`repro.eval.runall` so both
    write bit-identical files.
    """
    rows = []
    for op, systems in results.items():
        for name in ("M3", "Lx-$", "Lx"):
            entry = systems[name]
            rows.append((op, name, entry["total"], entry["xfers"],
                         entry["other"]))
    return render_table(
        "Figure 3: system calls and file operations (cycles)",
        ["op", "system", "total", "xfers", "other"],
        rows,
    )


def main() -> str:
    results = run()
    rows = []
    for op, systems in results.items():
        for name in ("M3", "Lx-$", "Lx"):
            entry = systems[name]
            rows.append(
                (op, name, entry["total"], entry["xfers"], entry["other"])
            )
    table = render_table(
        "Figure 3: system calls and file operations (cycles)",
        ["op", "system", "total", "xfers", "other"],
        rows,
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
