"""Figure 7: performance benefits of an FFT accelerator core.

The pipeline generate -> pipe -> FFT -> file in three configurations:
Linux with a software FFT, M3 with the same software FFT on standard
cores, and M3 with the FFT accelerator.  "the accelerator has a huge
performance benefit over the software version (about a factor of 30)"
and M3's fast abstractions keep the surrounding overhead small
(Section 5.8).
"""

from __future__ import annotations

from repro.eval.report import render_table
from repro.linuxsim.machine import LinuxMachine
from repro.m3.system import M3System
from repro.workloads.fft import (
    FFT_ACCEL_BINARY,
    FFT_SW_BINARY,
    linux_fft_chain,
    linux_fft_setup,
    m3_fft_chain,
    m3_fft_setup,
)

CONFIGURATIONS = ["Linux", "M3", "M3+accelerator"]


def _pack(wall: int, ledger: dict) -> dict:
    fft = ledger.get("fft", 0)
    xfers = ledger.get("xfer", 0)
    return {
        "total": wall,
        "fft": fft,
        "xfers": xfers,
        "os": ledger.get("os", 0),
        "other": wall - fft - xfers,
    }


def run_linux() -> dict:
    machine = LinuxMachine()
    linux_fft_setup(machine)
    wall, ledger = machine.run_program(linux_fft_chain, name="fft-chain")
    return _pack(wall, ledger)


def run_m3(accelerated: bool) -> dict:
    accelerators = {"fft-accel": 1} if accelerated else None
    system = M3System(pe_count=5, accelerators=accelerators).boot()
    m3_fft_setup(system)
    binary = FFT_ACCEL_BINARY if accelerated else FFT_SW_BINARY
    wall, ledger = system.run_app(m3_fft_chain, binary, name="fft-chain")
    return _pack(wall, ledger)


def run() -> dict:
    """configuration -> {total, fft, xfers, os, other}."""
    return {
        "Linux": run_linux(),
        "M3": run_m3(accelerated=False),
        "M3+accelerator": run_m3(accelerated=True),
    }


def bench_table(results: dict) -> str:
    """The ``results/fig7_accel.txt`` table for :func:`run`'s results."""
    rows = [
        (name, entry["total"], entry["fft"], entry["xfers"], entry["os"])
        for name, entry in results.items()
    ]
    return render_table(
        "Figure 7: FFT accelerator benefits (cycles)",
        ["configuration", "total", "fft", "xfers", "os"],
        rows,
    )


def main() -> str:
    results = run()
    rows = [
        (
            name,
            entry["total"],
            entry["fft"],
            entry["xfers"],
            entry["os"],
        )
        for name, entry in results.items()
    ]
    table = render_table(
        "Figure 7: FFT accelerator benefits (cycles)",
        ["configuration", "total", "fft", "xfers", "os"],
        rows,
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
