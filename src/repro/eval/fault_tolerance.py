"""Fault tolerance: microbenchmarks under packet loss, and PE failure.

Two experiments on top of the :mod:`repro.faults` framework:

1. A packet-loss sweep (0, 1e-4, 1e-3, 1e-2 per-packet drop probability)
   over Figure-3-style microbenchmarks (null syscall, file read, pipe)
   with reliable DTU messaging enabled.  Every run completes and returns
   correct data; the cost of the losses shows up as retransmissions and
   extra cycles.
2. A PE-kill scenario: a parent VPE waits on a child whose core is
   halted mid-run.  The kernel watchdog detects the dead core through a
   DTU probe, wipes the node's endpoints, revokes the VPE's
   capabilities, and fails the parent's VPE_WAIT with an error reply —
   instead of the parent blocking forever.

Both are fully deterministic: same seed, same cycle counts.
"""

from __future__ import annotations

from repro import params
from repro.eval.report import render_table
from repro.faults import FaultPlan
from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import SyscallError
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe, PipeWriter
from repro.m3.lib.vpe import VPE
from repro.m3.system import M3System
from repro.workloads.data import deterministic_bytes

#: per-packet drop probabilities swept by the loss experiment.
LOSS_RATES = (0.0, 1e-4, 1e-3, 1e-2)
DEFAULT_SEED = 20160402  # the paper's conference date

#: smaller than the Figure 3 file so the 4-rate sweep stays fast.
FILE_BYTES = 256 * 1024
BUFFER = params.MICRO_BUFFER_BYTES
SYSCALL_ITERATIONS = 16

#: PE-kill scenario schedule.
KILL_AT = 20_000
WATCHDOG_PERIOD = 5_000
PROBE_TIMEOUT = 2_000


def _faulty_system(loss_rate: float, seed: int) -> tuple[M3System, FaultPlan]:
    """An M3 system with reliable messaging and a seeded drop plan.

    The plan is installed before boot, so even the kernel's boot-time
    configuration traffic rides the reliable protocol under loss.
    """
    system = M3System(pe_count=4, reliable=True)
    plan = FaultPlan(seed).drop(loss_rate)
    plan.install(system.platform)
    return system, plan


def _stats(system: M3System, plan: FaultPlan) -> dict:
    dtus = [pe.dtu for pe in system.platform.pes]
    return {
        "lost": system.platform.network.packets_lost,
        "retransmits": sum(d.retransmits for d in dtus),
        "acks": sum(d.acks_sent for d in dtus),
        "duplicates": sum(
            rb.duplicates for d in dtus for rb in d._ringbufs.values()
        ),
        "faults_injected": len(plan.events),
    }


# -- the loss-sweep benchmarks ------------------------------------------------


def syscall_bench(loss_rate: float, seed: int = DEFAULT_SEED) -> dict:
    """Null-syscall latency under packet loss."""
    system, plan = _faulty_system(loss_rate, seed)
    system.boot(with_fs=False)

    def app(env):
        start = env.sim.now
        for _ in range(SYSCALL_ITERATIONS):
            yield from env.syscall(syscalls.NOOP)
        return env.sim.now - start

    wall = system.run_app(app, name="syscall-bench")
    return {"cycles": wall // SYSCALL_ITERATIONS, "ok": True,
            **_stats(system, plan)}


def read_bench(loss_rate: float, seed: int = DEFAULT_SEED) -> dict:
    """File read under packet loss, with end-to-end data verification."""
    system, plan = _faulty_system(loss_rate, seed)
    system.boot()
    content = deterministic_bytes("fault-read", FILE_BYTES)
    system.fs_preload({"/bench.dat": content})

    def app(env):
        start = env.sim.now
        file = yield from env.vfs.open("/bench.dat", OpenFlags.R)
        got = bytearray()
        while True:
            chunk = yield from file.read(BUFFER)
            if not chunk:
                break
            got.extend(chunk)
        yield from file.close()
        return env.sim.now - start, bytes(got) == content

    wall, ok = system.run_app(app, name="read-bench")
    return {"cycles": wall, "ok": ok, **_stats(system, plan)}


def pipe_bench(loss_rate: float, seed: int = DEFAULT_SEED) -> dict:
    """Pipe transfer between two VPEs under packet loss."""
    system, plan = _faulty_system(loss_rate, seed)
    system.boot(with_fs=False)
    payload = deterministic_bytes("fault-pipe", BUFFER)

    def child(env, mem_sel, sgate_sel, ring, slots, rounds):
        writer = yield from PipeWriter.attach(env, mem_sel, sgate_sel, ring,
                                              slots)
        for _ in range(rounds):
            yield from writer.write(payload)
        yield from writer.close()
        return ()

    def parent(env):
        start = env.sim.now
        pipe = yield from Pipe.create(env, ring_bytes=BUFFER, slots=1)
        vpe = yield from VPE.create(env, "writer")
        args = yield from pipe.delegate_writer(vpe)
        yield from vpe.run(child, *args, FILE_BYTES // BUFFER)
        reader = yield from pipe.reader().open()
        received = 0
        correct = True
        while True:
            chunk = yield from reader.read(BUFFER)
            if not chunk:
                break
            received += len(chunk)
            correct = correct and bytes(chunk) == payload
        yield from vpe.wait()
        return env.sim.now - start, correct and received == FILE_BYTES

    wall, ok = system.run_app(parent, name="pipe-bench")
    return {"cycles": wall, "ok": ok, **_stats(system, plan)}


BENCHES = {
    "syscall": syscall_bench,
    "read": read_bench,
    "pipe": pipe_bench,
}


def loss_sweep(seed: int = DEFAULT_SEED) -> dict:
    """rate -> bench -> result dict for the whole sweep."""
    return {
        rate: {name: bench(rate, seed) for name, bench in BENCHES.items()}
        for rate in LOSS_RATES
    }


# -- the PE-kill scenario ------------------------------------------------------


def pe_kill_scenario(seed: int = DEFAULT_SEED) -> dict:
    """Kill a child VPE's core mid-run; the watchdog recovers it."""
    system = M3System(pe_count=4, reliable=True)
    plan = FaultPlan(seed)
    # Nodes are allocated deterministically: kernel=0, parent=1, child=2.
    plan.kill_pe(node=2, at=KILL_AT)
    plan.install(system.platform)
    system.boot(with_fs=False)
    system.kernel.start_watchdog(
        period=WATCHDOG_PERIOD, probe_timeout=PROBE_TIMEOUT
    )

    def child(env):
        while True:  # compute forever; only the fault stops this VPE
            yield env.pe.compute(1_000)

    def parent(env):
        vpe = yield from VPE.create(env, "victim")
        yield from vpe.run(child)
        try:
            yield from vpe.wait()
            outcome = "child exited normally"
        except SyscallError as exc:
            outcome = f"wait failed: {exc}"
        return outcome, env.sim.now

    outcome, finished_at = system.run_app(parent, name="parent")
    system.kernel.stop_watchdog()
    victim_pe = system.platform.pe(2)
    return {
        "outcome": outcome,
        "recovered": system.kernel.recoveries == 1,
        "killed_at": KILL_AT,
        "detected_by": finished_at,
        "probes": system.kernel.probes_sent,
        "pe_quarantined": victim_pe.failed,
        "fault_events": [
            (record.cycle, record.action) for record in plan.events
        ],
    }


# -- assembly ------------------------------------------------------------------


def run(seed: int = DEFAULT_SEED) -> dict:
    return {"loss": loss_sweep(seed), "kill": pe_kill_scenario(seed)}


def render(results: dict) -> str:
    rows = []
    for rate, benches in results["loss"].items():
        for name in BENCHES:
            entry = benches[name]
            rows.append((
                f"{rate:g}", name, entry["cycles"],
                "yes" if entry["ok"] else "NO",
                entry["lost"], entry["retransmits"], entry["duplicates"],
            ))
    table = render_table(
        "Fault tolerance: microbenchmarks under packet loss (cycles)",
        ["loss rate", "op", "cycles", "correct", "dropped", "retx", "dups"],
        rows,
    )
    kill = results["kill"]
    lines = [
        table,
        "",
        "PE-kill recovery scenario",
        "=========================",
        f"child core killed at cycle {kill['killed_at']:,}; watchdog "
        f"period {WATCHDOG_PERIOD:,}, probe timeout {PROBE_TIMEOUT:,}",
        f"parent unblocked at cycle {kill['detected_by']:,} "
        f"({kill['outcome']})",
        f"kernel recoveries: {1 if kill['recovered'] else 0}; "
        f"probes sent: {kill['probes']}; "
        f"failed PE quarantined: {'yes' if kill['pe_quarantined'] else 'no'}",
    ]
    return "\n".join(lines)


def main() -> str:
    report = render(run())
    print(report)
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
