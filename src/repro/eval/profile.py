"""Profiling reports over the observability subsystem.

This module turns an installed :class:`repro.obs.Observer` into the
plain-text reports the repo's other figures use: latency histograms
(log2 buckets), named counters, and exact per-link NoC occupancy.  It
also owns the raw counter collection that used to be hand-rolled in
:mod:`repro.eval.stats` — ``stats.collect`` now delegates here.

``main()`` runs a Figure-3-style microbenchmark (null syscalls plus a
buffered file read) with observability enabled and writes both
``results/profile.txt`` and a Chrome trace-event JSON
(``results/fig3_micro.trace.json``) that loads in Perfetto.
"""

from __future__ import annotations

import pathlib
import typing

from repro import params
from repro.eval.report import render_table
from repro.obs import export_chrome_trace

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.system import M3System
    from repro.noc.network import Network
    from repro.obs import Histogram, Observer

#: the profile microbenchmark's workload geometry (a scaled-down
#: Figure 3: enough traffic for meaningful histograms, fast to run).
PROFILE_SYSCALLS = 16
PROFILE_FILE_BYTES = 256 * 1024
PROFILE_BUFFER_BYTES = params.MICRO_BUFFER_BYTES

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "results"


# -- raw counter collection (moved from eval/stats.py) ------------------------


def collect(system: "M3System") -> dict:
    """All layer counters as one nested dict."""
    network = system.platform.network
    utilisation = network.utilization_report()
    busiest = sorted(utilisation.items(), key=lambda kv: -kv[1])[:5]
    dtus = []
    for pe in system.platform.pes:
        dtu = pe.dtu
        if dtu.messages_sent or dtu.messages_dropped:
            dtus.append(
                {
                    "node": pe.node,
                    "sent": dtu.messages_sent,
                    "dropped": dtu.messages_dropped,
                    "privileged": dtu.privileged,
                }
            )
    return {
        "cycles": system.sim.now,
        "noc": {
            "packets": network.packets_sent,
            "payload_bytes": network.bytes_sent,
            "packets_injected": network.packets_injected,
            "busiest_links": busiest,
        },
        "dtus": dtus,
        "kernel": {
            "syscalls": system.kernel.syscall_count,
            "vpes_created": len(system.kernel.vpes),
            "services": sorted(system.kernel.services),
            "context_switches": system.kernel.ctxsw.switch_count,
            "dram_free_bytes": system.kernel.memory.free_bytes,
        },
        "filesystems": dict(fs_items(system)),
        "ledger": system.sim.ledger.snapshot(),
        "serial_lines": len(system.serial_log),
    }


def fs_items(system: "M3System") -> list[tuple[str, dict]]:
    """Per-filesystem-service counters as (name, dict) pairs."""
    return [
        (name, {
            "requests": server.requests_served,
            "blocks_used": server.fs.block_bitmap.used,
            "inodes": len(server.fs.inodes),
        })
        for name, server in system.fs_servers.items()
    ]


# -- table rendering -----------------------------------------------------------


def histogram_table(hist: "Histogram") -> str:
    """One histogram as a bucket table with a summary title line."""
    title = (
        f"Histogram {hist.name} "
        f"(n={hist.count:,}, mean={hist.mean:,.1f}, "
        f"p50<{hist.percentile(0.5):,}, p99<{hist.percentile(0.99):,}, "
        f"min={hist.min if hist.min is not None else '-'}, "
        f"max={hist.max if hist.max is not None else '-'})"
    )
    return render_table(title, ["cycles", "count", "cum"], hist.rows())


def histogram_summary_table(observer: "Observer") -> str:
    """Top-level summary: one row per histogram."""
    rows = []
    for name in sorted(observer.histograms):
        hist = observer.histograms[name]
        rows.append(
            (name, hist.count, f"{hist.mean:,.1f}",
             hist.percentile(0.5), hist.percentile(0.99),
             hist.max if hist.max is not None else 0)
        )
    return render_table(
        "Latency histograms (cycles)",
        ["histogram", "samples", "mean", "p50<", "p99<", "max"],
        rows,
    )


def counter_table(observer: "Observer", top: int | None = None) -> str:
    """Named counters, largest first."""
    items = sorted(observer.counters.items(), key=lambda kv: (-kv[1], kv[0]))
    if top is not None:
        items = items[:top]
    return render_table("Counters", ["counter", "value"], items)


def utilization_table(network: "Network", top: int | None = None) -> str:
    """Exact (unclamped) per-link utilisation over the whole run."""
    elapsed = network.sim.now
    rows = []
    for (a, b), fraction in sorted(
        network.utilization_report().items(), key=lambda kv: (-kv[1], kv[0])
    ):
        link = network.link(a, b)
        rows.append(
            (f"{a}->{b}", link.packets, link.busy_within(elapsed),
             f"{fraction:.2%}")
        )
    if top is not None:
        rows = rows[:top]
    return render_table(
        f"NoC link utilisation over {elapsed:,} cycles (exact)",
        ["link", "packets", "busy cycles", "utilisation"],
        rows,
    )


def link_series_table(observer: "Observer", top: int = 3) -> str:
    """Occupancy time series (epoch boundaries) for the busiest links."""
    busiest = sorted(
        observer.link_series.items(),
        key=lambda kv: (-sum(f for _t, f in kv[1]), kv[0]),
    )[:top]
    rows = []
    for (a, b), series in busiest:
        for epoch_end, fraction in series:
            rows.append((f"{a}->{b}", epoch_end, f"{fraction:.2%}"))
    return render_table(
        f"Link occupancy per {observer.epoch:,}-cycle epoch (busiest {top})",
        ["link", "epoch end", "busy"],
        rows,
    )


def render(system: "M3System") -> str:
    """The full profile report for an observed run."""
    obs = system.sim.obs
    if obs is None:
        raise RuntimeError(
            "profile.render needs observability; pass observe=True to "
            "M3System or call enable_observability()"
        )
    network = system.platform.network
    pieces = [histogram_summary_table(obs)]
    for name in sorted(obs.histograms):
        pieces.append(histogram_table(obs.histograms[name]))
    pieces.append(counter_table(obs))
    pieces.append(utilization_table(network))
    if obs.link_series:
        pieces.append(link_series_table(obs))
    return "\n\n".join(pieces)


# -- the profiled microbenchmark ----------------------------------------------


def run() -> "M3System":
    """A Figure-3-style micro run with observability enabled.

    Performs null syscalls and a buffered file read so the report has
    syscall-latency, message-RTT, and m3fs-request histograms plus NoC
    link traffic; returns the finished system for inspection.
    """
    from repro.m3.kernel import syscalls
    from repro.m3.lib.file import OpenFlags
    from repro.m3.system import M3System
    from repro.workloads.data import deterministic_bytes

    system = M3System(pe_count=4, observe=True).boot()
    system.fs_preload(
        {"/profile.dat": deterministic_bytes("profile", PROFILE_FILE_BYTES)}
    )

    def app(env):
        for _ in range(PROFILE_SYSCALLS):
            yield from env.syscall(syscalls.NOOP)
        file = yield from env.vfs.open("/profile.dat", OpenFlags.R)
        while True:
            chunk = yield from file.read(PROFILE_BUFFER_BYTES)
            if not chunk:
                break
        yield from file.close()
        return ()

    system.run_app(app, name="profile")
    # Flush the trailing partial epoch so the occupancy series covers
    # the whole run.
    system.sim.obs.sample_links(system.platform.network, force=True)
    return system


def main() -> str:
    """Run the profile benchmark; write report + Chrome trace."""
    system = run()
    report = render(system)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "profile.txt").write_text(report + "\n")
    export_chrome_trace(system.sim.obs, RESULTS_DIR / "fig3_micro.trace.json")
    print(report)
    return report


if __name__ == "__main__":  # pragma: no cover
    main()
