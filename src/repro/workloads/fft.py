"""The FFT filter chain (Section 5.8, Figure 7).

A parent generates 32 KiB of random numbers and writes them into a
pipe; the FFT application reads from the pipe, transforms the data, and
writes the result to a file.  Three configurations:

- Linux, software FFT (fork + execve + pipe + file),
- M3 on standard cores, the same software FFT,
- M3 with the FFT accelerator core — "the code for the parent is
  identical for the software version and the accelerator version.  It
  merely receives a different path to the executable".

The FFT computation itself is charged under the dedicated ``fft``
ledger tag so the figure's stacks can be reconstructed.
"""

from __future__ import annotations

import math

from repro import params
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe, PipeReader
from repro.m3.lib.vpe import VPE
from repro.workloads.data import deterministic_bytes

CHUNK = 4 * 1024
OUTPUT_PATH = "/fft-out.dat"

#: the two "executables"; which one the parent receives decides the
#: core the child runs on.
FFT_SW_BINARY = "/bin/fft"
FFT_ACCEL_BINARY = "/bin/fft-accel"
BINARY_BYTES = 32 * 1024


def _gen_cycles(nbytes: int) -> int:
    return max(1, math.ceil(params.RAND_GEN_CYCLES_PER_BYTE * nbytes))


# -- M3 ----------------------------------------------------------------------


def m3_fft_program(env, mem_sel, rgate_sel, ring, slots):
    """The FFT application: pipe -> FFT -> file.  Registered under both
    binary names; the PE it lands on prices the ``fft`` operation."""
    reader = yield from PipeReader.attach(env, mem_sel, rgate_sel, ring, slots)
    out = yield from env.vfs.open(OUTPUT_PATH, OpenFlags.W | OpenFlags.CREATE)
    while True:
        chunk = yield from reader.read(CHUNK)
        if not chunk:
            break
        cycles = env.pe.core.cycles_for("fft", len(chunk))
        yield env.sim.delay(cycles, tag="fft")
        yield from out.write(chunk)  # the transformed data, same size
    yield from out.close()
    return ()


def m3_fft_chain(env, binary: str = FFT_SW_BINARY):
    """The parent; returns (wall, ledger).  ``binary`` selects the
    software or accelerator executable."""
    start = env.sim.now
    snapshot = env.sim.ledger.snapshot()
    pe_type = "fft-accel" if binary == FFT_ACCEL_BINARY else None
    pipe = yield from Pipe.create(env)
    child = yield from VPE.create(env, "fft", pe_type=pe_type)
    child_args = yield from pipe.delegate_reader(child)
    yield from child.exec(binary, *child_args)
    writer = yield from pipe.writer().open()
    produced = 0
    while produced < params.FFT_DATA_BYTES:
        size = min(CHUNK, params.FFT_DATA_BYTES - produced)
        yield env.compute(_gen_cycles(size))
        data = deterministic_bytes(f"rand{produced}", size)
        yield from writer.write(data)
        produced += size
    yield from writer.close()
    yield from child.wait()
    return env.sim.now - start, env.sim.ledger.since(snapshot)


def m3_fft_setup(system) -> None:
    """Register the FFT programs and install their binaries in m3fs."""
    system.register_program("fft", m3_fft_program)
    system.register_program("fft-accel", m3_fft_program)
    system.fs_preload(
        {
            FFT_SW_BINARY: deterministic_bytes("fft-binary", BINARY_BYTES),
            FFT_ACCEL_BINARY: deterministic_bytes("fft-accel-binary",
                                                  BINARY_BYTES),
        }
    )


# -- Linux ---------------------------------------------------------------------


def _lx_fft_child(lx, read_fd, write_fd):
    from repro.linuxsim.machine import O_CREAT, O_WRONLY

    # Drop the inherited write end, or EOF never arrives on the pipe.
    yield from lx.close(write_fd)
    yield from lx.execve(FFT_SW_BINARY)
    out_fd = yield from lx.open(OUTPUT_PATH, O_WRONLY | O_CREAT)
    while True:
        chunk = yield from lx.read(read_fd, CHUNK)
        if not chunk:
            break
        cycles = math.ceil(params.FFT_SW_CYCLES_PER_BYTE * len(chunk))
        yield lx.sim.delay(cycles, tag="fft")
        yield from lx.write(out_fd, chunk)
    yield from lx.close(out_fd)
    yield from lx.close(read_fd)
    return ()


def linux_fft_chain(lx):
    """The Linux configuration; returns (wall, ledger)."""
    start = lx.sim.now
    snapshot = lx.sim.ledger.snapshot()
    read_fd, write_fd = yield from lx.pipe()
    child = yield from lx.fork(_lx_fft_child, read_fd, write_fd, name="fft")
    produced = 0
    while produced < params.FFT_DATA_BYTES:
        size = min(CHUNK, params.FFT_DATA_BYTES - produced)
        yield lx.compute(_gen_cycles(size))
        data = deterministic_bytes(f"rand{produced}", size)
        yield from lx.write(write_fd, data)
        produced += size
    yield from lx.close(write_fd)
    yield from lx.waitpid(child)
    return lx.sim.now - start, lx.sim.ledger.since(snapshot)


def linux_fft_setup(machine) -> None:
    """Install the FFT binary in the baseline's tmpfs."""
    machine.fs.mkdir("/bin")
    node = machine.fs.create(FFT_SW_BINARY)
    node.data.extend(deterministic_bytes("fft-binary", BINARY_BYTES))
