"""Syscall traces and their replayers.

The paper's methodology for tar/untar/find/sqlite (Section 5.6): record
the syscalls of a BusyBox run, then replay them — natively on Linux,
through the corresponding libm3 API on M3, with ``wait`` entries for
computation and unsupported syscalls ("we assume that computation and
the unsupported syscalls require the same time on both systems").

A trace is a list of :class:`TraceOp` tuples.  File descriptors are
symbolic: the i-th ``open`` in the trace defines descriptor slot ``i``,
and later operations reference slots.
"""

from __future__ import annotations

import typing

from repro import params
from repro.workloads.data import deterministic_bytes


class TraceOp(typing.NamedTuple):
    """One recorded syscall (or wait)."""

    op: str  # open|read|write|close|seek|stat|mkdir|unlink|link|readdir|sendfile|wait
    args: tuple

    @classmethod
    def make(cls, op: str, *args) -> "TraceOp":
        return cls(op, args)


#: open-mode constants shared by both replayers (numerically identical
#: to OpenFlags and the Linux O_* values used here).
MODE_R = 1
MODE_W = 2
MODE_CREATE = 4
MODE_TRUNC = 8


class LinuxReplayer:
    """Replays a trace against an :class:`~repro.linuxsim.machine.LxEnv`."""

    def __init__(self, lx_env):
        self.lx = lx_env
        self.fds: list[int] = []

    def replay(self, trace: list[TraceOp]):
        """Generator: execute every op in order."""
        lx = self.lx
        for op, args in trace:
            if op == "open":
                path, mode = args
                fd = yield from lx.open(path, mode)
                self.fds.append(fd)
            elif op == "read":
                slot, count = args
                yield from lx.read(self.fds[slot], count)
            elif op == "write":
                slot, count = args
                data = deterministic_bytes(f"w{slot}", count)
                yield from lx.write(self.fds[slot], data)
            elif op == "seek":
                slot, offset, whence = args
                yield from lx.lseek(self.fds[slot], offset, whence)
            elif op == "close":
                (slot,) = args
                yield from lx.close(self.fds[slot])
            elif op == "stat":
                (path,) = args
                yield from lx.stat(path)
            elif op == "mkdir":
                (path,) = args
                yield from lx.mkdir(path)
            elif op == "unlink":
                (path,) = args
                yield from lx.unlink(path)
            elif op == "link":
                old, new = args
                yield from lx.link(old, new)
            elif op == "readdir":
                (path,) = args
                yield from lx.readdir(path)
            elif op == "sendfile":
                out_slot, in_slot, count = args
                yield from lx.sendfile(
                    self.fds[out_slot], self.fds[in_slot], count
                )
            elif op == "wait":
                (cycles,) = args
                yield lx.compute(cycles)
            else:
                raise ValueError(f"unknown trace op {op!r}")
        return ()


class M3Replayer:
    """Replays a trace through libm3 ("the corresponding API on M3").

    ``sendfile`` has no M3 equivalent; it becomes a read/write loop
    with a large SPM buffer (the libm3-idiomatic way to copy data).
    """

    def __init__(self, env, buffer_bytes: int = params.REPLAY_BUFFER_BYTES):
        self.env = env
        self.buffer_bytes = buffer_bytes
        self.files: list = []

    def replay(self, trace: list[TraceOp]):
        """Generator: execute every op in order."""
        env = self.env
        for op, args in trace:
            if op == "open":
                path, mode = args
                file = yield from env.vfs.open(path, mode)
                self.files.append(file)
            elif op == "read":
                slot, count = args
                yield from self.files[slot].read(count)
            elif op == "write":
                slot, count = args
                data = deterministic_bytes(f"w{slot}", count)
                yield from self.files[slot].write(data)
            elif op == "seek":
                slot, offset, whence = args
                yield from self.files[slot].seek(offset, whence)
            elif op == "close":
                (slot,) = args
                yield from self.files[slot].close()
            elif op == "stat":
                (path,) = args
                yield from env.vfs.stat(path)
            elif op == "mkdir":
                (path,) = args
                yield from env.vfs.mkdir(path)
            elif op == "unlink":
                (path,) = args
                yield from env.vfs.unlink(path)
            elif op == "link":
                old, new = args
                yield from env.vfs.link(old, new)
            elif op == "readdir":
                (path,) = args
                yield from env.vfs.readdir(path)
            elif op == "sendfile":
                out_slot, in_slot, count = args
                yield from self._copy_loop(
                    self.files[out_slot], self.files[in_slot], count
                )
            elif op == "wait":
                (cycles,) = args
                yield env.compute(cycles)
            else:
                raise ValueError(f"unknown trace op {op!r}")
        return ()

    def _copy_loop(self, out_file, in_file, count: int):
        remaining = count
        while remaining > 0:
            chunk = yield from in_file.read(min(self.buffer_bytes, remaining))
            if not chunk:
                break
            yield from out_file.write(chunk)
            remaining -= len(chunk)
