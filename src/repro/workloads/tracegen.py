"""Synthetic syscall traces with the paper's workload parameters.

Each ``make_*`` function returns ``(setup_files, trace)`` where
``setup_files`` maps path -> content that must exist *before* the
benchmark runs (pre-populated outside the measured window, as the paper
does by running the benchmarks on an already-populated filesystem).
Directories needed by the setup files are created implicitly.
"""

from __future__ import annotations

from repro import params
from repro.workloads.data import (
    TAR_RECORD_BYTES,
    find_tree_layout,
    tar_archive_bytes,
    tar_source_files,
)
from repro.workloads.trace import (
    MODE_CREATE,
    MODE_R,
    MODE_TRUNC,
    MODE_W,
    TraceOp,
)

_op = TraceOp.make

#: trace ops whose leading arguments are filesystem paths.
_PATH_ARGS = {
    "open": 1, "stat": 1, "mkdir": 1, "unlink": 1, "readdir": 1, "link": 2,
}


def _prefixed(prefix: str, setup: dict, trace: list) -> tuple[dict, list]:
    """Rewrite all paths under ``prefix`` (per-instance namespaces for
    the Figure 6 scalability runs)."""
    if not prefix:
        return setup, trace
    setup = {prefix + path: content for path, content in setup.items()}
    rewritten = []
    for op, args in trace:
        n = _PATH_ARGS.get(op, 0)
        args = tuple(
            (prefix + a) if i < n else a for i, a in enumerate(args)
        )
        rewritten.append(TraceOp(op, args))
    return setup, rewritten


def _padded(size: int) -> int:
    return -(-size // TAR_RECORD_BYTES) * TAR_RECORD_BYTES


def make_tar_trace(prefix: str = "") -> tuple[dict[str, bytes], list[TraceOp]]:
    """busybox tar cf /arch.tar /src — headers written per member, data
    moved with sendfile (Section 5.6)."""
    sources = tar_source_files()
    trace: list[TraceOp] = []
    trace.append(_op("open", "/arch.tar", MODE_W | MODE_CREATE | MODE_TRUNC))
    archive_slot = 0
    trace.append(_op("readdir", "/src"))
    slot = 1
    for path, content in sources.items():
        size = len(content)
        trace.append(_op("stat", path))
        trace.append(_op("open", path, MODE_R))
        trace.append(_op("write", archive_slot, TAR_RECORD_BYTES))  # header
        trace.append(_op("sendfile", archive_slot, slot, size))
        padding = _padded(size) - size
        if padding:
            trace.append(_op("write", archive_slot, padding))
        trace.append(_op("close", slot))
        slot += 1
    trace.append(_op("write", archive_slot, 2 * TAR_RECORD_BYTES))  # EOF marks
    trace.append(_op("close", archive_slot))
    return _prefixed(prefix, sources, trace)


def make_untar_trace(prefix: str = "") -> tuple[dict[str, bytes], list[TraceOp]]:
    """busybox tar xf /arch.tar into /out — per member: header read,
    create, sendfile, padding skip."""
    archive = tar_archive_bytes()
    trace: list[TraceOp] = []
    trace.append(_op("open", "/arch.tar", MODE_R))
    archive_slot = 0
    trace.append(_op("mkdir", "/out"))
    slot = 1
    for path, content in tar_source_files().items():
        size = len(content)
        name = path.rsplit("/", 1)[-1]
        trace.append(_op("read", archive_slot, TAR_RECORD_BYTES))
        trace.append(_op("open", f"/out/{name}", MODE_W | MODE_CREATE))
        trace.append(_op("sendfile", slot, archive_slot, size))
        padding = _padded(size) - size
        if padding:
            trace.append(_op("seek", archive_slot, padding, 1))
        trace.append(_op("close", slot))
        slot += 1
    trace.append(_op("read", archive_slot, 2 * TAR_RECORD_BYTES))
    trace.append(_op("close", archive_slot))
    return _prefixed(prefix, {"/arch.tar": archive}, trace)


def make_find_trace(prefix: str = "") -> tuple[dict[str, bytes], list[TraceOp]]:
    """find /tree — "consists mostly of stat calls" (Section 5.6)."""
    directories, files = find_tree_layout()
    trace: list[TraceOp] = []
    trace.append(_op("stat", "/tree"))
    trace.append(_op("readdir", "/tree"))
    for directory in directories:
        trace.append(_op("stat", directory))
        trace.append(_op("readdir", directory))
        for path in sorted(p for p in files if p.startswith(directory + "/")):
            trace.append(_op("stat", path))
    return _prefixed(prefix, files, trace)


def make_sqlite_trace(prefix: str = "") -> tuple[dict[str, bytes], list[TraceOp]]:
    """sqlite: create a table, insert 8 rows, select them — small
    journal/db-page I/O around dominant computation (Section 5.6)."""
    trace: list[TraceOp] = []
    trace.append(_op("open", "/test.db", MODE_W | MODE_R | MODE_CREATE))
    db_slot = 0
    trace.append(_op("read", db_slot, 100))  # header probe
    trace.append(_op("wait", params.SQLITE_CREATE_CYCLES))
    trace.append(_op("write", db_slot, 2 * 1024))  # schema pages
    slot = 1
    for _ in range(params.SQLITE_INSERTS):
        trace.append(_op("open", "/test.db-journal", MODE_W | MODE_CREATE))
        trace.append(_op("write", slot, 512))  # journal header
        trace.append(_op("wait", params.SQLITE_INSERT_CYCLES))
        trace.append(_op("write", slot, 1024))  # page image
        trace.append(_op("seek", db_slot, 0, 0))
        trace.append(_op("write", db_slot, 1024))  # db page
        trace.append(_op("close", slot))
        trace.append(_op("unlink", "/test.db-journal"))
        slot += 1
    trace.append(_op("wait", params.SQLITE_SELECT_CYCLES))
    trace.append(_op("seek", db_slot, 0, 0))
    trace.append(_op("read", db_slot, 1024))
    trace.append(_op("read", db_slot, 1024))
    trace.append(_op("close", db_slot))
    return _prefixed(prefix, {}, trace)


#: registry used by the figure-5 and figure-6 harnesses.
TRACE_BENCHMARKS = {
    "tar": make_tar_trace,
    "untar": make_untar_trace,
    "find": make_find_trace,
    "sqlite": make_sqlite_trace,
}
