"""Benchmark workloads: the applications of the paper's Section 5.

Each workload exists for both OS stacks:

- **native pairs** (cat+tr, the FFT chain) — "we did that ourselves,
  using the same code for M3 and Linux, except for programming against
  libm3" (Section 5.6);
- **trace replays** (tar, untar, find, sqlite) — the paper recorded
  BusyBox runs under strace and replayed them; here the traces are
  synthesised with the paper's stated workload parameters and replayed
  identically on both models.
"""

from repro.workloads.data import (
    deterministic_bytes,
    find_tree_layout,
    tar_archive_bytes,
    tar_file_set,
)
from repro.workloads.trace import LinuxReplayer, M3Replayer, TraceOp
from repro.workloads.tracegen import (
    make_find_trace,
    make_sqlite_trace,
    make_tar_trace,
    make_untar_trace,
)

__all__ = [
    "LinuxReplayer",
    "M3Replayer",
    "TraceOp",
    "deterministic_bytes",
    "find_tree_layout",
    "make_find_trace",
    "make_sqlite_trace",
    "make_tar_trace",
    "make_untar_trace",
    "tar_archive_bytes",
    "tar_file_set",
]
