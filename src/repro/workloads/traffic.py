"""traffic: seeded open-loop load over the NIC datagram path.

The paper's motivating workload is a manycore *serving* heavy traffic;
this module builds that serving stack out of the repo's own pieces and
drives it with a deterministic open-loop load generator:

- A **load generator** VPE multiplexes hundreds of simulated clients
  over one netserv datagram session.  Arrivals follow a seeded Poisson
  or bursty process; request sizes follow a bounded-Pareto (heavy
  tail).  Open loop means arrivals do not wait for completions: when
  the stack falls behind, queueing delay shows up in the measured
  latency instead of silently throttling the offered load.
- **Gateway** VPEs sit behind the second NIC: each binds a datagram
  port, opens a session against the *logical* ``"kv"`` name — the
  kernels' session router picks a replica, locally or across the
  inter-kernel ``srv_open`` path — and turns each request datagram
  into a kv get/put plus a response datagram.
- A **collector** VPE owns the response port and timestamps
  completions; latency is measured from the *scheduled* arrival, so it
  includes every queue in the path (loadgen backlog, TX-ring waits,
  socket inboxes, kv service time).

Everything is seeded and simulated, so a run is a pure function of its
:class:`TrafficProfile`: same profile, same cycle counts, byte for
byte.
"""

from __future__ import annotations

import dataclasses
import random
import struct
import typing

from repro.m3.services.kvserv import KvError, KvClient, MAX_VALUE_BYTES, start_kv_tier
from repro.m3.services.netserv import MAX_PAYLOAD, NetClient, start_network
from repro.m3.system import M3System
from repro.obs.metrics import Histogram

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan

#: request datagram: req_id, client, value_len, op, key_id (+ padding
#: that models the payload bytes actually crossing the wire).
_REQ = struct.Struct("<IHHBB")
#: response datagram: req_id, client, result_len, status (+ padding).
_RSP = struct.Struct("<IHHB")

OP_GET, OP_PUT = 0, 1
ST_OK, ST_MISS, ST_ERR = 0, 1, 2
#: req_id that tells a gateway to shut down (sent by the collector).
STOP_REQ_ID = 0xFFFFFFFF

#: port plan: the collector owns the response port; gateway i binds
#: GATEWAY_BASE_PORT + i; the loadgen's own port only marks the source.
LOADGEN_PORT = 9
RESPONSE_PORT = 7
GATEWAY_BASE_PORT = 100

#: fixed platform shape: two kernel domains of 6 PEs each.  Domain 0
#: hosts both netserv instances, the kv0 replica, the loadgen, and the
#: collector; domain 1 hosts kv1 and the gateways, so gateway 0's
#: routed session crosses domains (kv0) while gateway 1's stays local.
PE_COUNT = 12
KERNEL_COUNT = 2
GATEWAYS = 2

#: polling cadences (cycles) for the gateway and collector recv loops.
GATEWAY_POLL_CYCLES = 800
COLLECTOR_POLL_CYCLES = 1_000
#: backoff between retries when a TX ring is momentarily full.
TX_RETRY_CYCLES = 300
TX_RETRY_ATTEMPTS = 400

_PAD = b"\x5a"


@dataclasses.dataclass(frozen=True)
class TrafficProfile:
    """One load point: everything a run is a deterministic function of."""

    name: str = "poisson"
    seed: int = 20160402
    #: simulated clients multiplexed over the loadgen's NIC session.
    clients: int = 480
    requests: int = 240
    arrival: str = "poisson"  # "poisson" | "bursty"
    #: mean inter-arrival gap in cycles (per request, both processes).
    mean_gap: int = 3_000
    #: bursty only: arrivals per burst (gaps stretch to keep the rate).
    burst: int = 8
    #: in-burst spacing in cycles.
    burst_spacing: int = 40
    get_fraction: float = 0.70
    #: bounded-Pareto value-size tail.
    size_floor: int = 16
    size_alpha: float = 1.1
    keys: int = 64
    #: how long the collector keeps polling after the last send.
    drain_cycles: int = 600_000
    #: gateways close and re-open their kv session every N served
    #: requests (0 = never).  Session churn is what lets a draining
    #: replica actually empty out and what spreads an elastic tier's
    #: load onto newly-added replicas.
    session_refresh: int = 0

    def __post_init__(self):
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.keys > 256:
            raise ValueError("key_id travels in one byte; keys must be <= 256")
        if self.size_floor < 1 or self.size_floor > MAX_VALUE_BYTES:
            raise ValueError(f"bad size_floor {self.size_floor}")
        if self.session_refresh < 0:
            raise ValueError(f"bad session_refresh {self.session_refresh}")


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One scheduled request (cycles relative to load start)."""

    req_id: int
    at: int
    client: int
    op: int
    key_id: int
    value_len: int


def _bounded_pareto(rng: random.Random, lo: int, hi: int, alpha: float) -> int:
    """A bounded-Pareto draw via the inverse CDF (heavy tail in [lo, hi])."""
    u = rng.random()
    la, ha = lo ** alpha, hi ** alpha
    x = (la * ha / (ha - u * (ha - la))) ** (1.0 / alpha)
    return min(hi, max(lo, int(x)))


def build_schedule(profile: TrafficProfile) -> tuple:
    """The full arrival schedule, a pure function of the profile.

    Poisson: exponential inter-arrival gaps with mean ``mean_gap``.
    Bursty: bursts of ``burst`` back-to-back arrivals, separated by
    exponential gaps with mean ``burst * mean_gap`` — same offered
    rate, very different queueing behaviour.
    """
    rng = random.Random(profile.seed)
    arrivals = []
    now = 0
    while len(arrivals) < profile.requests:
        if profile.arrival == "poisson":
            now += max(1, int(rng.expovariate(1.0 / profile.mean_gap)))
            batch = 1
        else:
            now += max(1, int(rng.expovariate(
                1.0 / (profile.mean_gap * profile.burst))))
            batch = profile.burst
        for index in range(min(batch, profile.requests - len(arrivals))):
            op = OP_GET if rng.random() < profile.get_fraction else OP_PUT
            value_len = 0
            if op == OP_PUT:
                value_len = _bounded_pareto(
                    rng, profile.size_floor, MAX_VALUE_BYTES,
                    profile.size_alpha,
                )
            arrivals.append(Arrival(
                req_id=len(arrivals) + 1,
                at=now + index * profile.burst_spacing,
                client=rng.randrange(profile.clients),
                op=op,
                key_id=rng.randrange(profile.keys),
                value_len=value_len,
            ))
    return tuple(arrivals)


def _key(key_id: int) -> str:
    return f"k{key_id}"


def _warm_len(key_id: int) -> int:
    """Deterministic pre-warm value size for a key (so gets hit)."""
    return 32 + (key_id * 7) % 128


class TrafficRun:
    """Shared measurement state between the loadgen, gateways, and
    collector (bookkeeping only — all data crosses the wire)."""

    def __init__(self, profile: TrafficProfile, gateways: int = GATEWAYS):
        self.profile = profile
        self.gateways = gateways
        self.schedule = build_schedule(profile)
        #: req_id -> absolute scheduled-arrival cycle (set by loadgen).
        self.sent: dict[int, int] = {}
        #: req_id -> (completion cycle, status, result_len).
        self.completions: dict[int, tuple] = {}
        self.started_at: int | None = None
        self.sent_all_at: int | None = None
        self.tx_retries = 0
        self.gw_tx_retries = 0
        self.kv_errors = 0
        self.served_by: list[int] = [0] * gateways


def _send_with_retry(net: NetClient, dst_port: int, payload: bytes,
                     run: TrafficRun, gateway: bool = False):
    """Generator: send_to with bounded backoff when the TX ring is full."""
    for _ in range(TX_RETRY_ATTEMPTS):
        try:
            return (yield from net.send_to(dst_port, payload))
        except RuntimeError as exc:
            if "tx ring full" not in str(exc):
                raise
            if gateway:
                run.gw_tx_retries += 1
            else:
                run.tx_retries += 1
            yield TX_RETRY_CYCLES
    raise RuntimeError(
        f"tx ring to port {dst_port} stayed full after "
        f"{TX_RETRY_ATTEMPTS} attempts"
    )


# -- the three app roles ------------------------------------------------------


def gateway_app(env, run: TrafficRun, index: int, ready):
    """Bind a service port, pre-warm the routed kv shard, serve."""
    net = yield from NetClient.connect(env, "net2")
    yield from net.bind(GATEWAY_BASE_PORT + index)
    kv = yield from KvClient.connect(env, "kv")
    for key_id in range(run.profile.keys):
        yield from kv.put(_key(key_id), _PAD * _warm_len(key_id))
    ready.succeed(index)
    refresh = run.profile.session_refresh
    served_since_refresh = 0
    while True:
        datagram = yield from net.recv()
        if datagram is None:
            yield GATEWAY_POLL_CYCLES
            continue
        _src_port, payload = datagram
        req_id, client, value_len, op, key_id = _REQ.unpack_from(payload)
        if req_id == STOP_REQ_ID:
            break
        obs = env.sim.obs
        span = obs.begin(f"req{req_id}", "traffic", env.pe.node,
                         gateway=index) if obs is not None else -1
        status, result_len = ST_OK, 0
        try:
            if op == OP_GET:
                value = yield from kv.get(_key(key_id))
                if value is None:
                    status = ST_MISS
                else:
                    result_len = len(value)
            else:
                result_len = yield from kv.put(_key(key_id),
                                               _PAD * value_len)
        except KvError:
            status = ST_ERR
            run.kv_errors += 1
        response = _RSP.pack(req_id, client, result_len, status)
        response += _PAD * min(result_len, MAX_PAYLOAD - _RSP.size)
        yield from _send_with_retry(net, RESPONSE_PORT, response, run,
                                    gateway=True)
        run.served_by[index] += 1
        if obs is not None:
            obs.end(span, status=status)
        if refresh:
            served_since_refresh += 1
            if served_since_refresh >= refresh:
                # Session churn: re-resolve the route, so the gateway
                # follows the tier as the autoscaler reshapes it.
                served_since_refresh = 0
                yield from kv.close()
                kv = yield from KvClient.connect(env, "kv")
    yield from kv.close()
    yield from net.close()
    return run.served_by[index]


def loadgen_app(env, run: TrafficRun):
    """Replay the arrival schedule open-loop over one datagram session."""
    net = yield from NetClient.connect(env, "net")
    yield from net.bind(LOADGEN_PORT)
    base = env.sim.now
    run.started_at = base
    for arrival in run.schedule:
        at = base + arrival.at
        if env.sim.now < at:
            yield at - env.sim.now
        payload = _REQ.pack(arrival.req_id, arrival.client,
                            arrival.value_len, arrival.op, arrival.key_id)
        if arrival.op == OP_PUT:
            payload += _PAD * min(arrival.value_len,
                                  MAX_PAYLOAD - _REQ.size)
        obs = env.sim.obs
        span = obs.begin(f"inject{arrival.req_id}", "traffic",
                         env.pe.node) if obs is not None else -1
        # Latency is measured from the *scheduled* arrival: open-loop
        # backlog at the loadgen itself counts as queueing delay.
        run.sent[arrival.req_id] = at
        gw_port = GATEWAY_BASE_PORT + (arrival.client % run.gateways)
        yield from _send_with_retry(net, gw_port, payload, run)
        if obs is not None:
            obs.end(span)
            obs.count("traffic.sent")
    run.sent_all_at = env.sim.now
    yield from net.close()
    return len(run.schedule)


def collector_app(env, run: TrafficRun):
    """Own the response port; timestamp completions; stop the gateways."""
    net = yield from NetClient.connect(env, "net")
    yield from net.bind(RESPONSE_PORT)
    expected = len(run.schedule)
    while len(run.completions) < expected:
        datagram = yield from net.recv()
        if datagram is None:
            if (run.sent_all_at is not None
                    and env.sim.now > run.sent_all_at
                    + run.profile.drain_cycles):
                break  # give up on dropped responses
            yield COLLECTOR_POLL_CYCLES
            continue
        _src_port, payload = datagram
        req_id, _client, result_len, status = _RSP.unpack_from(payload)
        if req_id not in run.completions:
            run.completions[req_id] = (env.sim.now, status, result_len)
            obs = env.sim.obs
            if obs is not None:
                obs.count("traffic.completions")
                obs.observe("traffic.latency_cycles",
                            env.sim.now - run.sent[req_id])
    stop = _REQ.pack(STOP_REQ_ID, 0, 0, 0, 0)
    for index in range(run.gateways):
        yield from _send_with_retry(net, GATEWAY_BASE_PORT + index, stop,
                                    run)
    yield from net.close()
    return len(run.completions)


# -- driving one load point ---------------------------------------------------


@dataclasses.dataclass
class TrafficResult:
    """Everything one load point measured."""

    profile: TrafficProfile
    sent: int
    completed: int
    #: req_id -> end-to-end cycles (scheduled arrival -> response).
    latencies: dict
    histogram: Histogram
    makespan: int
    offered_per_mcycle: float
    goodput_per_mcycle: float
    frames_dropped: int
    tx_retries: int
    gw_tx_retries: int
    kv_errors: int
    served_by: list
    #: replica name -> sessions routed to it (the session router's view).
    route_counts: dict
    #: replica name -> kv requests served (includes pre-warm puts).
    replica_requests: dict
    noc_packets_lost: int
    dtu_retransmits: int
    fault_events: int
    system: M3System
    #: the AutoScaler instance when elastic scaling was on (its
    #: ``events`` list is the scale timeline), else None.
    scaler: object = None

    @property
    def drops(self) -> int:
        return self.sent - self.completed


def run_profile(profile: TrafficProfile,
                fault_plan: "FaultPlan | None" = None,
                observe: bool = False, shards: int = 1,
                pe_count: int = PE_COUNT,
                kernel_count: int = KERNEL_COUNT,
                gateways: int = GATEWAYS,
                policy: str = "rr",
                kv_replicas: int | None = None,
                kv_domains: list | None = None,
                kv_op_cycles: int | None = None,
                heartbeats: bool = False,
                autoscale: dict | None = None,
                instrument=None,
                **system_kwargs) -> TrafficResult:
    """Boot the serving stack, drive one load point, measure it.

    ``shards`` runs the sharded engine (byte-identical results at any
    count — see docs/performance.md); ``pe_count``/``kernel_count``/
    ``gateways`` grow the platform for scale variants (defaults are the
    fixed 12-PE, 2-domain shape above).  Gateways spread round-robin
    over the non-zero domains, so the default places both in domain 1
    exactly as before.  Extra keyword arguments reach ``M3System``
    (e.g. ``ep_count`` — a 4-domain kernel needs a bigger EP table for
    its peer send gates).

    Elastic-scaling knobs (all off by default — the defaults are
    byte-identical to the pre-elastic stack): ``policy`` selects the
    session-router balancing policy (``"rr"``/``"depth"``);
    ``kv_replicas``/``kv_domains`` shape the initial kv tier;
    ``kv_op_cycles`` makes the replicas compute-heavy (per-op service
    cycles, modelling a scoring/rendering tier);
    ``heartbeats`` starts the kernel heartbeat ring (the carrier for
    the queue-depth gossip); ``autoscale`` is a keyword dict for
    :class:`repro.m3.autoscale.AutoScaler` (e.g. ``{"epoch": 40_000,
    "up_depth": 8}``) that switches the controller on.

    ``instrument`` is an optional callable invoked with the booted
    system before any service starts — the hook the telemetry eval
    uses to attach the streaming telemetry plane, SLO monitors, and
    the flight recorder so they see the whole run (the kv tier
    registers its queue-depth samplers only if telemetry is already
    on when it boots).
    """
    system = M3System(pe_count=pe_count, kernel_count=kernel_count,
                      reliable=True, observe=observe, shards=shards,
                      **system_kwargs)
    if fault_plan is not None:
        fault_plan.install(system.platform)
    system.boot(with_fs=False)
    if instrument is not None:
        instrument(system)
    netservs = start_network(system)
    kv_servers = start_kv_tier(system, replicas=kv_replicas,
                               domains=kv_domains, policy=policy,
                               op_cycles=kv_op_cycles)
    scaler = None
    if heartbeats:
        system.start_heartbeats()
    if autoscale is not None:
        from repro.m3.autoscale import AutoScaler

        scaler = AutoScaler(system, kv_servers, **autoscale)
        scaler.start()
    run = TrafficRun(profile, gateways=gateways)
    gw_vpes = []
    for index in range(gateways):
        ready = system.sim.event(f"gw{index}.ready")
        gw_vpes.append(system.spawn(gateway_app, run, index, ready,
                                    name=f"gw{index}",
                                    domain=1 + index % (kernel_count - 1)))
        system.sim.run(until_event=ready)
        if not ready.triggered:
            raise RuntimeError(f"traffic gateway {index} failed to start")
    collector_vpe = system.spawn(collector_app, run, name="collector")
    loadgen_vpe = system.spawn(loadgen_app, run, name="loadgen")
    sent = system.wait(loadgen_vpe)
    completed = system.wait(collector_vpe)
    for vpe in gw_vpes:
        system.wait(vpe)
    if scaler is not None:
        scaler.stop()
    if heartbeats:
        system.stop_heartbeats()
    system.sim.run()  # drain retry timers and late frames

    histogram = Histogram("traffic.latency", precision=7)
    latencies = {}
    last_completion = run.started_at or 0
    for req_id, (done_at, _status, _length) in sorted(run.completions.items()):
        latency = done_at - run.sent[req_id]
        latencies[req_id] = latency
        histogram.observe(latency)
        last_completion = max(last_completion, done_at)
    first_at = (run.started_at or 0) + run.schedule[0].at
    makespan = max(1, last_completion - first_at)
    arrival_span = max(1, run.schedule[-1].at - run.schedule[0].at)
    # The gateways' kernels did the routing; merge their counts (the
    # default shape keeps every gateway in domain 1, so this is exactly
    # the old single-kernel read).
    route_counts: dict = {}
    for kernel in system.kernels[1:]:
        for replica, count in kernel.route_counts.items():
            route_counts[replica] = route_counts.get(replica, 0) + count
    replica_requests = {
        server.service_name: server.requests_served
        for server in kv_servers
    }
    if scaler is not None:
        # Replicas the autoscaler added (live or since retired).
        for name in sorted(set(scaler.servers) | set(scaler.retired)):
            server = scaler.servers.get(name) or scaler.retired[name]
            replica_requests.setdefault(name, server.requests_served)
    dtus = [pe.dtu for pe in system.platform.pes]
    return TrafficResult(
        profile=profile,
        sent=sent,
        completed=completed,
        latencies=latencies,
        histogram=histogram,
        makespan=makespan,
        offered_per_mcycle=1e6 * (sent - 1) / arrival_span,
        goodput_per_mcycle=1e6 * completed / makespan,
        frames_dropped=sum(s.frames_dropped for s in netservs),
        tx_retries=run.tx_retries,
        gw_tx_retries=run.gw_tx_retries,
        kv_errors=run.kv_errors,
        served_by=list(run.served_by),
        route_counts=route_counts,
        replica_requests=replica_requests,
        noc_packets_lost=system.platform.network.packets_lost,
        dtu_retransmits=sum(dtu.retransmits for dtu in dtus),
        fault_events=len(fault_plan.events) if fault_plan else 0,
        system=system,
        scaler=scaler,
    )
