"""Deterministic workload data: file sets, trees, and payload bytes."""

from __future__ import annotations

import functools
import hashlib

from repro import params

#: ustar-style header/record size.
TAR_RECORD_BYTES = 512


@functools.lru_cache(maxsize=512)
def deterministic_bytes(tag: str, length: int) -> bytes:
    """Pseudo-random but reproducible payload bytes.

    A pure function of ``(tag, length)``, so results are memoised: the
    benchmark suite regenerates the same corpora (tar sources, replay
    write buffers, cat+tr input) for every system boot, and the SHA-256
    expansion below is a measurable share of suite wall time.  The
    returned ``bytes`` are immutable and safe to share.
    """
    if length <= 0:
        return b""
    out = bytearray()
    sha256 = hashlib.sha256
    prefix = f"{tag}:".encode()
    counter = 0
    while len(out) < length:
        out.extend(sha256(prefix + str(counter).encode()).digest())
        counter += 1
    return bytes(out[:length])


def tar_file_set() -> dict[str, int]:
    """The tar corpus: "files between 60 and 500 KiB and 1.2 MiB in
    total" (Section 5.6).  Five files summing to exactly 1.2 MiB."""
    sizes_kib = [500, 300, 200, 120, 80]
    assert sum(sizes_kib) * 1024 == params.TAR_TOTAL_BYTES
    return {
        f"/src/file{i}.dat": kib * 1024 for i, kib in enumerate(sizes_kib)
    }


def tar_source_files() -> dict[str, bytes]:
    """Path -> content for the tar benchmark's inputs."""
    return {
        path: deterministic_bytes(path, size)
        for path, size in tar_file_set().items()
    }


def _padded(size: int) -> int:
    return -(-size // TAR_RECORD_BYTES) * TAR_RECORD_BYTES


def tar_archive_bytes() -> bytes:
    """The archive untar unpacks: header + padded content per member,
    plus the two terminating zero records."""
    out = bytearray()
    for path, content in tar_source_files().items():
        header = deterministic_bytes(f"hdr:{path}", TAR_RECORD_BYTES)
        out.extend(header)
        out.extend(content)
        out.extend(bytes(_padded(len(content)) - len(content)))
    out.extend(bytes(2 * TAR_RECORD_BYTES))
    return bytes(out)


def find_tree_layout() -> tuple[list[str], dict[str, bytes]]:
    """The find corpus: "a directory tree of 40 items" (Section 5.6).

    Returns (directories, files): 4 directories with 9 small files each
    — 40 items total under ``/tree``.
    """
    directories = [f"/tree/dir{d}" for d in range(4)]
    files = {}
    for directory in directories:
        for f in range(9):
            path = f"{directory}/file{f}.txt"
            files[path] = deterministic_bytes(path, 256)
    assert len(directories) + len(files) == params.FIND_TREE_ITEMS
    return directories, files
