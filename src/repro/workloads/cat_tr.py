"""cat+tr: the paper's hand-written benchmark (Section 5.6).

"creates a child process/VPE and lets it write a 64 KiB large file into
a pipe, while the parent reads from that pipe, replaces all occurrences
of 'a' with 'b' and writes the result into a new file" — the same code
shape on both systems, differing only in the OS API.
"""

from __future__ import annotations

import math

from repro import params
from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe, PipeWriter
from repro.m3.lib.vpe import VPE

CHUNK = 4 * 1024

INPUT_PATH = "/cat-input.txt"
OUTPUT_PATH = "/cat-output.txt"


def _tr_cycles(nbytes: int) -> int:
    return max(1, math.ceil(params.TR_CYCLES_PER_BYTE * nbytes))


def input_bytes() -> bytes:
    """The 64 KiB input, containing plenty of 'a's to translate."""
    pattern = b"the cat sat on a mat and ate a banana, as cats do. "
    data = pattern * (params.CAT_TR_FILE_BYTES // len(pattern) + 1)
    return data[: params.CAT_TR_FILE_BYTES]


# -- M3 ----------------------------------------------------------------------


def m3_cat_child(env, mem_sel, sgate_sel, ring, slots, spin, input_path):
    """The 'cat' half: file -> pipe."""
    env.spin_io = spin
    writer = yield from PipeWriter.attach(env, mem_sel, sgate_sel, ring, slots)
    file = yield from env.vfs.open(input_path, OpenFlags.R)
    while True:
        chunk = yield from file.read(CHUNK)
        if not chunk:
            break
        yield from writer.write(chunk)
    yield from file.close()
    yield from writer.close()
    return ()


def m3_cat_tr(env, spin: bool = False, prefix: str = "",
              serialize: bool = False):
    """The parent: pipe -> tr -> output file.  Returns (wall, ledger).

    ``serialize=True`` uses a one-slot pipe so reader and writer strictly
    alternate — the paper's fairness rule ("M3 did not take advantage of
    multiple PEs", Section 5.1); the default overlaps them, quantifying
    the "M3 could achieve better performance by letting reader and
    writer work in parallel" remark of Section 5.6.
    """
    env.spin_io = spin
    start = env.sim.now
    snapshot = env.sim.ledger.snapshot()
    if serialize:
        pipe = yield from Pipe.create(env, ring_bytes=CHUNK, slots=1)
    else:
        pipe = yield from Pipe.create(env)
    child = yield from VPE.create(env, f"cat{prefix}".replace("/", "-"))
    child_args = yield from pipe.delegate_writer(child)
    yield from child.run(m3_cat_child, *child_args, spin, prefix + INPUT_PATH)
    reader = yield from pipe.reader().open()
    out = yield from env.vfs.open(prefix + OUTPUT_PATH,
                                  OpenFlags.W | OpenFlags.CREATE)
    while True:
        chunk = yield from reader.read(CHUNK)
        if not chunk:
            break
        yield env.compute(_tr_cycles(len(chunk)))
        yield from out.write(chunk.replace(b"a", b"b"))
    yield from out.close()
    yield from child.wait()
    return env.sim.now - start, env.sim.ledger.since(snapshot)


# -- Linux ---------------------------------------------------------------------


def _lx_cat_child(lx, write_fd, input_path):
    from repro.linuxsim.machine import O_RDONLY

    fd = yield from lx.open(input_path, O_RDONLY)
    while True:
        chunk = yield from lx.read(fd, CHUNK)
        if not chunk:
            break
        yield from lx.write(write_fd, chunk)
    yield from lx.close(fd)
    yield from lx.close(write_fd)
    return ()


def linux_cat_tr(lx):
    """The Linux twin of :func:`m3_cat_tr`; returns (wall, ledger)."""
    from repro.linuxsim.machine import O_CREAT, O_WRONLY

    start = lx.sim.now
    snapshot = lx.sim.ledger.snapshot()
    read_fd, write_fd = yield from lx.pipe()
    child = yield from lx.fork(_lx_cat_child, write_fd, INPUT_PATH,
                               name="cat")
    yield from lx.close(write_fd)
    out_fd = yield from lx.open(OUTPUT_PATH, O_WRONLY | O_CREAT)
    while True:
        chunk = yield from lx.read(read_fd, CHUNK)
        if not chunk:
            break
        yield lx.compute(_tr_cycles(len(chunk)))
        yield from lx.write(out_fd, chunk.replace(b"a", b"b"))
    yield from lx.close(out_fd)
    yield from lx.close(read_fd)
    yield from lx.waitpid(child)
    return lx.sim.now - start, lx.sim.ledger.since(snapshot)
