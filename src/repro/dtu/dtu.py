"""The DTU device model.

Everything PE-external flows through here: message sends, replies,
RDMA-style memory reads/writes, and the privileged remote-configuration
packets through which a kernel exercises NoC-level isolation.

Timing: injection costs :data:`params.DTU_INJECT_CYCLES`; wire time is
the NoC model's job; SPM-side service costs :data:`SPM_ACCESS_CYCLES`.
Transfer durations are charged to the ``xfer`` ledger tag — the
"Xfers" stack of the paper's figures.
"""

from __future__ import annotations

import itertools
import typing

from repro import params
from repro.dtu.message import (
    HEADER_BYTES,
    Message,
    MessageHeader,
    message_crc,
    payload_crc,
)
from repro.dtu.registers import EndpointKind, EndpointRegisters, MemoryPerm
from repro.dtu.ringbuffer import DUPLICATE, RingBuffer
from repro.noc.packet import Packet
from repro.obs.causal import NO_CONTEXT
from repro.sim.ledger import Tag
from repro.sim.resources import Signal

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.spm import Scratchpad
    from repro.noc.network import Network
    from repro.sim import Simulator
    from repro.sim.events import Event

#: Cycles for the DTU to serve a request against the local SPM.
SPM_ACCESS_CYCLES = 2

#: Wire size of a memory read request / write ack descriptor.
MEM_REQUEST_BYTES = 16


class DtuError(Exception):
    """Base class for DTU-reported failures."""


class MissingCredits(DtuError):
    """Send denied: the endpoint is out of credits (Section 4.4.3)."""


class NoPermission(DtuError):
    """Operation denied: wrong endpoint kind, bounds, or privilege."""


class TransferTimeout(DtuError):
    """A reliable transfer stayed unacknowledged through the whole
    retransmit budget (dead receiver, partitioned NoC), or a
    ``wait_message`` timeout expired."""


class DTU:
    """One Data Transfer Unit, attached to a NoC node.

    ``local_memory`` is the PE's data SPM (or any byte-accurate memory)
    that remote memory endpoints may target and into which received
    ringbuffers conceptually live.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: int,
        local_memory: "Scratchpad",
        ep_count: int = params.DTU_ENDPOINTS,
    ):
        if ep_count < 1:
            raise ValueError("a DTU needs at least one endpoint")
        self.sim = sim
        self.network = network
        self.node = node
        self.local_memory = local_memory
        self.eps: list[EndpointRegisters] = [
            EndpointRegisters() for _ in range(ep_count)
        ]
        #: ringbuffer storage per receive endpoint.
        self._ringbufs: dict[int, RingBuffer] = {}
        #: fired when a message lands in the endpoint's ringbuffer.
        self._signals: dict[int, Signal] = {}
        #: outstanding memory/config transactions awaiting a response.
        self._pending: dict[int, "Event"] = {}
        self._transaction_ids = itertools.count()
        #: "all DTUs are privileged at boot" (Section 3); the kernel
        #: downgrades application PEs during boot.
        self.privileged = True
        self.messages_sent = 0
        self.messages_dropped = 0
        # -- reliable delivery (opt-in; see enable_reliability) ---------
        self._reliable = False
        self._send_seq = itertools.count()
        #: unacknowledged reliable transmissions, keyed ("msg", seq) for
        #: messages/replies and ("txn", id) for memory/config requests.
        self._retx: dict[tuple, dict] = {}
        self.retransmits = 0
        self.acks_sent = 0
        self.crc_drops = 0
        self.transfer_failures = 0
        #: set by the owning PE: where the privileged "probe" config
        #: operation reads the core's halted/running status.
        self.status_source = None
        #: live-migration forwarding: while set, message/reply packets
        #: arriving here are re-sent to this node instead of delivered
        #: (the kernel clears it once the redirect window closes).
        self.redirect_to: int | None = None
        self.redirected = 0
        network.attach(node, self.handle_packet)

    def enable_reliability(self) -> None:
        """Switch this DTU to reliable message delivery.

        Outgoing messages and replies get a sequence number and CRC and
        are retransmitted with exponential backoff until acknowledged
        (hardware acks, :data:`params.DTU_RETX_MAX` attempts); memory
        and configuration requests are re-issued the same way.  When
        the budget is exhausted the DTU reconciles the spent credit and
        fails the transfer with :class:`TransferTimeout` instead of
        leaking endpoint state.  Off by default: the best-effort paths
        are cycle-identical to the calibrated model.
        """
        self._reliable = True

    # ------------------------------------------------------------------
    # Local (software-visible) interface
    # ------------------------------------------------------------------

    def ep(self, index: int) -> EndpointRegisters:
        """Endpoint registers (read-only from the application's view)."""
        if not (0 <= index < len(self.eps)):
            raise ValueError(f"endpoint {index} out of range")
        return self.eps[index]

    def signal(self, ep_index: int) -> Signal:
        """The delivery signal of a receive endpoint (for wait loops)."""
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.RECEIVE:
            raise NoPermission(f"EP{ep_index} is not a receive endpoint")
        return self._signals[ep_index]

    def ringbuffer(self, ep_index: int) -> RingBuffer:
        """The ringbuffer of a receive endpoint."""
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.RECEIVE:
            raise NoPermission(f"EP{ep_index} is not a receive endpoint")
        return self._ringbufs[ep_index]

    # -- message passing ------------------------------------------------

    def send(
        self,
        ep_index: int,
        payload: object,
        length: int,
        reply_ep: int | None = None,
        reply_label: int = 0,
    ) -> "Event":
        """Send a message through a send endpoint.

        Returns the delivery-complete event.  Sending is asynchronous:
        the core is free immediately after programming the registers;
        callers that need synchronous semantics yield the event.

        Raises :class:`MissingCredits` when the endpoint has no credits
        left — "message sending is denied by the DTU until the credits
        have been refilled" (Section 4.4.3).
        """
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.SEND:
            raise NoPermission(f"EP{ep_index} is not a send endpoint")
        if length < 0:
            raise ValueError("negative message length")
        if HEADER_BYTES + length > ep.msg_size:
            raise NoPermission(
                f"message of {length}B exceeds EP{ep_index} limit of "
                f"{ep.msg_size - HEADER_BYTES}B payload"
            )
        if ep.credits < 1:
            raise MissingCredits(f"EP{ep_index} has no credits left")
        if reply_ep is not None:
            reply_regs = self.ep(reply_ep)
            if reply_regs.kind != EndpointKind.RECEIVE:
                raise NoPermission(f"reply EP{reply_ep} is not a receive endpoint")
        ep.credits -= 1
        seq, crc = -1, 0
        if self._reliable:
            seq = next(self._send_seq)
            crc = payload_crc(ep.label, length, payload)
        ctx, msg_span = self._stamp_context()
        header = MessageHeader(
            label=ep.label,
            length=length,
            reply_node=self.node if reply_ep is not None else -1,
            reply_ep=reply_ep if reply_ep is not None else -1,
            reply_label=reply_label,
            credit_ep=ep_index,
            seq=seq,
            crc=crc,
            trace_id=ctx.trace_id,
            parent_span=msg_span,
        )
        message = Message(header, payload)
        packet = Packet(
            source=self.node,
            destination=ep.target_node,
            kind="message",
            size_bytes=message.size_bytes(),
            payload=(ep.target_ep, message),
            trace_id=ctx.trace_id,
            trace_parent=msg_span,
        )
        self.messages_sent += 1
        if not self._reliable:
            done = self._inject(packet)
        else:
            done = self._inject(
                packet,
                retx_key=("msg", seq),
                on_give_up=lambda: self._reconcile_credit(ep_index),
            )
        if self.sim.obs is not None:
            self._observe_message(packet, done, msg_span, ctx)
        return done

    def _stamp_context(self):
        """The trace context to stamp on an outgoing message, plus a
        reserved span id for the message's own DTU span (the parent the
        receiver's handler spans adopt).  ``(NO_CONTEXT, -1)`` when
        observability is off or the sending node has no active request.
        """
        obs = self.sim.obs
        if obs is None:
            return NO_CONTEXT, -1
        ctx = obs.causal.current(self.node)
        if not ctx.valid:
            return NO_CONTEXT, -1
        return ctx, obs.reserve_span_id()

    def _reconcile_credit(self, ep_index: int) -> None:
        """Refund the credit of a send that was given up on, so a dead
        receiver (or a permanently lost reply) cannot leak an
        endpoint's credits."""
        ep = self.eps[ep_index]
        if ep.kind == EndpointKind.SEND:
            ep.credits = min(ep.credits + 1, ep.max_credits)

    def reply(
        self, ep_index: int, slot: int, payload: object, length: int
    ) -> "Event":
        """Reply to the message in ``slot`` of receive endpoint ``ep_index``.

        The DTU extracts the destination from the stored message header
        (Section 4.4.4); a reply needs no dedicated channel and carries a
        credit refill for the original sender.  The slot is acknowledged
        (freed) as part of the reply.
        """
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.RECEIVE:
            raise NoPermission(f"EP{ep_index} is not a receive endpoint")
        if not ep.replies_enabled:
            raise NoPermission(f"EP{ep_index} has replies disabled")
        ringbuf = self._ringbufs[ep_index]
        original = ringbuf.peek(slot)
        if not original.can_reply:
            raise NoPermission("original message does not permit a reply")
        seq, crc = -1, 0
        if self._reliable:
            seq = next(self._send_seq)
            crc = payload_crc(original.header.reply_label, length, payload)
        ctx, msg_span = self._stamp_context()
        header = MessageHeader(
            label=original.header.reply_label, length=length, seq=seq,
            crc=crc, trace_id=ctx.trace_id, parent_span=msg_span,
        )
        message = Message(header, payload)
        packet = Packet(
            source=self.node,
            destination=original.header.reply_node,
            kind="reply",
            size_bytes=message.size_bytes(),
            payload=(original.header.reply_ep, message, original.header.credit_ep),
            trace_id=ctx.trace_id,
            trace_parent=msg_span,
        )
        ringbuf.ack(slot)
        if not self._reliable:
            done = self._inject(packet)
        else:
            done = self._inject(packet, retx_key=("msg", seq))
        if self.sim.obs is not None:
            self._observe_message(packet, done, msg_span, ctx)
        return done

    def _observe_message(self, packet: Packet, done: "Event",
                         span_id: int = -1, parent=NO_CONTEXT) -> None:
        """Record a message/reply span and its round-trip histogram.

        The span closes (and the sample lands) when ``done`` triggers:
        delivery completion in best-effort mode, the hardware ack in
        reliable mode — i.e. the true round trip.  ``span_id``/``parent``
        are the stamped causal identity: the context captured *now*, at
        send time — by completion the node may be working for someone
        else, so the callback must not consult the context stack.
        """
        obs = self.sim.obs
        obs.count(f"dtu.sends.{packet.kind}")
        started = self.sim.now

        def record(event, started=started, packet=packet):
            if not event.ok:
                return
            obs.observe("dtu.msg_rtt", self.sim.now - started)
            obs.complete(
                packet.kind, "dtu", self.node, started,
                span_id=span_id, parent=parent,
                destination=packet.destination, bytes=packet.size_bytes,
            )

        done.add_callback(record)

    def fetch_message(self, ep_index: int) -> tuple[int, Message] | None:
        """Poll a receive endpoint: the next unread (slot, message) or None."""
        return self.ringbuffer(ep_index).fetch()

    def wait_message(self, ep_index: int, timeout: int | None = None):
        """Generator: block until a message is available, then return it.

        Models the paper's polling loop ("the software polls a DTU
        register to wait for received messages", Section 4.3) without
        busy-spinning the simulator.

        ``timeout`` bounds the wait in cycles; expiry raises
        :class:`TransferTimeout`, so callers in fault-prone setups can
        never block forever on a message that will not come.
        """
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            fetched = self.fetch_message(ep_index)
            if fetched is not None:
                return fetched
            if deadline is None:
                yield self.signal(ep_index).wait()
                continue
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise TransferTimeout(
                    f"no message on EP{ep_index} of node {self.node} "
                    f"within {timeout} cycles"
                )
            from repro.sim.events import first_of

            yield first_of(
                self.sim,
                self.signal(ep_index).wait(),
                self.sim.delay(remaining),
            )

    def ack_message(self, ep_index: int, slot: int) -> None:
        """Free a ringbuffer slot after processing (no reply sent)."""
        self.ringbuffer(ep_index).ack(slot)

    # -- remote memory access ----------------------------------------------

    def read_memory(self, ep_index: int, offset: int, length: int,
                    into_addr: int | None = None):
        """Generator: RDMA-read ``length`` bytes at ``offset`` of a memory EP.

        Returns the data; optionally also deposits it at ``into_addr`` in
        local memory (the common case — "the data register denotes the
        location the read data should be transferred to").
        """
        ep = self._memory_ep(ep_index, offset, length, MemoryPerm.READ)
        response = yield from self._memory_transaction(
            kind="mem_read",
            target=ep.mem_node,
            request_bytes=MEM_REQUEST_BYTES,
            payload_builder=lambda tid: (tid, ep.mem_addr + offset, length),
            expect_bytes=length,
        )
        data = response
        if into_addr is not None:
            self.local_memory.write(into_addr, data)
        return data

    def write_memory(self, ep_index: int, offset: int, data: bytes,
                     from_addr: int | None = None):
        """Generator: RDMA-write ``data`` to ``offset`` of a memory EP.

        When ``from_addr`` is given the bytes are taken from local memory
        instead (``data`` then only conveys the length).
        """
        if from_addr is not None:
            data = self.local_memory.read(from_addr, len(data))
        ep = self._memory_ep(ep_index, offset, len(data), MemoryPerm.WRITE)
        yield from self._memory_transaction(
            kind="mem_write",
            target=ep.mem_node,
            request_bytes=MEM_REQUEST_BYTES + len(data),
            payload_builder=lambda tid: (tid, ep.mem_addr + offset, bytes(data)),
        )
        return len(data)

    def _memory_ep(self, ep_index: int, offset: int, length: int,
                   need: MemoryPerm) -> EndpointRegisters:
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.MEMORY:
            raise NoPermission(f"EP{ep_index} is not a memory endpoint")
        if not (ep.mem_perm & need):
            raise NoPermission(f"EP{ep_index} lacks {need} permission")
        if offset < 0 or length < 0 or offset + length > ep.mem_size:
            raise NoPermission(
                f"access [{offset}, {offset + length}) outside EP{ep_index} "
                f"region of {ep.mem_size}B"
            )
        return ep

    def _memory_transaction(self, kind: str, target: int, request_bytes: int,
                            payload_builder, expect_bytes: int = 0):
        """Issue a request packet and wait for the matching ``mem_resp``."""
        transaction = next(self._transaction_ids)
        done = self.sim.event(f"dtu{self.node}.{kind}#{transaction}")
        self._pending[transaction] = done
        ctx, txn_span = self._stamp_context()
        packet = Packet(
            source=self.node,
            destination=target,
            kind=kind,
            size_bytes=request_bytes,
            payload=payload_builder(transaction),
            trace_id=ctx.trace_id,
            trace_parent=txn_span,
        )
        started = self.sim.now
        self._inject_transaction(packet, transaction, expect_bytes)
        response = yield done
        # Whole round trip (inject + request + service + response) is
        # transfer time from the core's point of view.
        self.sim.ledger.charge(Tag.XFER, self.sim.now - started)
        if self.sim.obs is not None:
            # The RDMA round trip as one DTU span; the request and
            # response packets' NoC spans hang off it via the stamp.
            self.sim.obs.complete(
                kind, "dtu", self.node, started, span_id=txn_span,
                parent=ctx, destination=target, bytes=request_bytes,
            )
        return response

    def _inject_transaction(self, packet: Packet, transaction: int,
                            expect_bytes: int = 0) -> None:
        """Inject a request packet whose response completes a pending
        transaction; reliable DTUs re-issue it until answered.

        Requests are idempotent at the receiver (reads, overwrites,
        register writes), so a duplicate caused by a lost *response* is
        harmless — the duplicate response is dropped at :meth:`handle_packet`.
        ``expect_bytes`` sizes the response the caller is waiting for, so
        the retransmit timer also covers the response's wire time.
        """
        if not self._reliable:
            self._inject(packet, charge=False)
            return

        def give_up():
            self.transfer_failures += 1
            pending = self._pending.pop(transaction, None)
            if pending is not None and not pending.triggered:
                pending.fail(
                    TransferTimeout(
                        f"node {self.node}: {packet.kind} to node "
                        f"{packet.destination} got no response after "
                        f"{params.DTU_RETX_MAX} retransmits"
                    )
                )

        self._inject(
            packet, charge=False, retx_key=("txn", transaction),
            on_give_up=give_up, expect_bytes=expect_bytes,
        )

    # ------------------------------------------------------------------
    # Remote (kernel-side) configuration — NoC-level isolation
    # ------------------------------------------------------------------

    def configure_remote(self, target_node: int, operation: str, *args):
        """Generator: kernel-side remote endpoint configuration.

        Sends a privileged configuration packet to ``target_node`` and
        waits for the acknowledgement.  The *hardware* stamps the
        packet with this DTU's privilege — software cannot forge it —
        so only kernel PEs can reconfigure endpoints (Section 4.3).
        Raises :class:`NoPermission` if this DTU is unprivileged.
        """
        transaction = next(self._transaction_ids)
        done = self.sim.event(f"dtu{self.node}.config#{transaction}")
        self._pending[transaction] = done
        ctx, txn_span = self._stamp_context()
        packet = Packet(
            source=self.node,
            destination=target_node,
            kind="ep_config",
            size_bytes=64,
            payload=(transaction, self.privileged, operation, args),
            trace_id=ctx.trace_id,
            trace_parent=txn_span,
        )
        self._inject_transaction(packet, transaction)
        started = self.sim.now
        result = yield done
        self.sim.ledger.charge(Tag.XFER, self.sim.now - started)
        if self.sim.obs is not None:
            self.sim.obs.complete(
                "ep_config", "dtu", self.node, started, span_id=txn_span,
                parent=ctx, destination=target_node, operation=operation,
            )
        if result == "denied":
            raise NoPermission(
                f"DTU at node {self.node} is not privileged to configure "
                f"node {target_node}"
            )
        return result

    def configure_local(self, operation: str, *args) -> object:
        """Directly write this DTU's configuration registers.

        Models local memory-mapped register writes, which succeed only
        while the DTU is still privileged — i.e. for kernel PEs, or for
        any PE during boot before the kernel downgrades it.
        """
        if not self.privileged:
            raise NoPermission(
                f"DTU at node {self.node} is unprivileged; configuration "
                "registers are only writable by kernel PEs"
            )
        return self._apply_config(operation, args)

    def _apply_config(self, operation: str, args: tuple) -> object:
        """Execute a validated configuration operation locally."""
        if operation == "configure":
            ep_index, registers = args
            self.eps[ep_index] = registers
            if registers.kind == EndpointKind.RECEIVE:
                self._ringbufs[ep_index] = RingBuffer(
                    registers.slot_size, registers.slot_count
                )
                # The per-endpoint delivery signal is stable hardware —
                # waiters survive reconfiguration (e.g. after a context
                # switch restores the endpoint).
                self._signals.setdefault(
                    ep_index, Signal(self.sim, f"dtu{self.node}.ep{ep_index}")
                )
            else:
                self._ringbufs.pop(ep_index, None)
            return "ok"
        if operation == "invalidate":
            (ep_index,) = args
            self.eps[ep_index].invalidate()
            self._ringbufs.pop(ep_index, None)
            return "ok"
        if operation == "refill_credits":
            (ep_index,) = args
            ep = self.eps[ep_index]
            ep.credits = ep.max_credits
            return "ok"
        if operation == "downgrade":
            self.privileged = False
            return "ok"
        if operation == "upgrade":
            self.privileged = True
            return "ok"
        if operation == "probe":
            # Kernel watchdog liveness probe: the DTU answers in
            # hardware, reporting the attached core's halted bit — a
            # crashed core cannot fake being alive, and a dead core
            # cannot prevent the answer.
            source = self.status_source
            if source is not None and not source.core_alive():
                return "halted"
            return "alive"
        if operation == "wipe":
            # Kernel-driven recovery: invalidate every endpoint and drop
            # all buffered/inflight state — the NoC-level fencing that
            # cuts a failed PE off from the rest of the chip (Section 3).
            for ep in self.eps:
                ep.invalidate()
            self._ringbufs.clear()
            self._retx.clear()
            self.redirect_to = None
            return "ok"
        if operation == "set_reliable":
            (flag,) = args
            self._reliable = bool(flag)
            return "ok"
        raise RuntimeError(f"unknown configuration operation {operation!r}")

    # ------------------------------------------------------------------
    # NoC delivery handling (the hardware side)
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Entry point for packets the NoC delivers to this node."""
        if packet.corrupted:
            # The link-level CRC catches in-flight bit errors; the
            # packet is discarded here, which a reliable sender observes
            # as a missing ack and retransmits.
            self.crc_drops += 1
            if packet.kind in ("message", "reply"):
                self.messages_dropped += 1
            if self.sim.obs is not None:
                self.sim.obs.count("dtu.crc_drops")
                self.sim.obs.instant("crc_drop", "dtu", self.node,
                                     kind=packet.kind, source=packet.source)
            return
        if self.redirect_to is not None and packet.kind in ("message", "reply"):
            # Live-migration window: software-visible traffic chases the
            # VPE to its new PE.  The source is preserved so the new
            # DTU's hardware ack reaches the original sender.  Acks and
            # memory/config responses are NOT forwarded — they complete
            # transactions this DTU itself still owns.
            self.redirected += 1
            if self.sim.obs is not None:
                self.sim.obs.count("dtu.redirected")
            self.network.send(
                Packet(
                    source=packet.source,
                    destination=self.redirect_to,
                    kind=packet.kind,
                    size_bytes=packet.size_bytes,
                    payload=packet.payload,
                    trace_id=packet.trace_id,
                    trace_parent=packet.trace_parent,
                )
            )
            return
        if packet.kind == "message":
            ep_index, message = packet.payload
            self._deliver_message(ep_index, message, credit_ep=None,
                                  source=packet.source)
        elif packet.kind == "reply":
            ep_index, message, credit_ep = packet.payload
            self._deliver_message(ep_index, message, credit_ep=credit_ep,
                                  source=packet.source)
        elif packet.kind == "msg_ack":
            (seq,) = packet.payload
            entry = self._retx.pop(("msg", seq), None)
            if entry is not None and not entry["done"].triggered:
                entry["done"].succeed()
        elif packet.kind == "mem_read":
            transaction, address, length = packet.payload
            data = self.local_memory.read(address, length)
            self._respond_memory(packet.source, transaction, data, len(data),
                                 request=packet)
        elif packet.kind == "mem_write":
            transaction, address, data = packet.payload
            self.local_memory.write(address, bytes(data))
            self._respond_memory(packet.source, transaction, b"", 0,
                                 request=packet)
        elif packet.kind == "mem_resp":
            transaction, data = packet.payload
            self._complete_transaction(transaction, data)
        elif packet.kind == "ep_config":
            transaction, privileged, operation, args = packet.payload
            if privileged:
                result = self._apply_config(operation, args)
            else:
                result = "denied"
            self.network.send(
                Packet(
                    source=self.node,
                    destination=packet.source,
                    kind="config_ack",
                    size_bytes=16,
                    payload=(transaction, result),
                    # The ack inherits the request's trace, completing
                    # the transaction round trip in the causal graph.
                    trace_id=packet.trace_id,
                    trace_parent=packet.trace_parent,
                )
            )
        elif packet.kind == "config_ack":
            transaction, result = packet.payload
            self._complete_transaction(transaction, result)
        else:
            raise RuntimeError(f"DTU at node {self.node} got {packet!r}")

    def _complete_transaction(self, transaction: int, value: object) -> None:
        """Finish a pending memory/config transaction; duplicate
        responses (re-issued requests whose first answer survived after
        all) are dropped silently."""
        self._retx.pop(("txn", transaction), None)
        pending = self._pending.pop(transaction, None)
        if pending is not None and not pending.triggered:
            pending.succeed(value)

    def _deliver_message(self, ep_index: int, message: Message,
                         credit_ep: int | None, source: int = -1) -> None:
        if message.header.seq >= 0:
            self._deliver_reliable(ep_index, message, credit_ep, source)
            return
        if credit_ep is not None and credit_ep >= 0:
            # A reply refills the original send endpoint's credits.
            sender_ep = self.eps[credit_ep]
            if sender_ep.kind == EndpointKind.SEND:
                sender_ep.credits = min(sender_ep.credits + 1, sender_ep.max_credits)
        ep = self.eps[ep_index] if 0 <= ep_index < len(self.eps) else None
        if ep is None or ep.kind != EndpointKind.RECEIVE:
            self.messages_dropped += 1
            return
        slot = self._ringbufs[ep_index].push(message)
        if slot is None:
            self.messages_dropped += 1
            return
        self._signals[ep_index].fire()

    def _deliver_reliable(self, ep_index: int, message: Message,
                          credit_ep: int | None, source: int) -> None:
        """Sequence-numbered delivery: CRC check, duplicate suppression,
        hardware ack.  Side effects (ringbuffer push, credit refill)
        happen at most once per sequence number; a message the receiver
        cannot accept is simply not acked, so the sender retransmits
        and eventually reconciles.
        """
        ep = self.eps[ep_index] if 0 <= ep_index < len(self.eps) else None
        if ep is None or ep.kind != EndpointKind.RECEIVE:
            self.messages_dropped += 1
            return
        if message.header.crc != message_crc(message):
            self.crc_drops += 1
            self.messages_dropped += 1
            return
        slot = self._ringbufs[ep_index].push(message, source=source)
        if slot is DUPLICATE:
            # Already delivered once: the earlier ack was lost. Re-ack
            # without repeating the delivery side effects.
            self._send_ack(source, message.header.seq)
            return
        if slot is None:
            self.messages_dropped += 1  # ring full: flow-control drop
            return
        if credit_ep is not None and credit_ep >= 0:
            sender_ep = self.eps[credit_ep]
            if sender_ep.kind == EndpointKind.SEND:
                sender_ep.credits = min(sender_ep.credits + 1,
                                        sender_ep.max_credits)
        self._send_ack(source, message.header.seq)
        self._signals[ep_index].fire()

    def _send_ack(self, destination: int, seq: int) -> None:
        """Hardware-generated delivery acknowledgement (no core
        involvement, no ledger charge)."""
        self.acks_sent += 1
        if self.sim.obs is not None:
            self.sim.obs.count("dtu.acks_sent")
        self.network.send(
            Packet(
                source=self.node,
                destination=destination,
                kind="msg_ack",
                size_bytes=8,
                payload=(seq,),
            )
        )

    def _respond_memory(self, requester: int, transaction: int, data: bytes,
                        size: int, request: Packet | None = None) -> None:
        # The response rides the request's trace context, so the RDMA
        # completion's NoC span joins the originating request tree.
        trace_id = request.trace_id if request is not None else -1
        trace_parent = request.trace_parent if request is not None else -1
        self.sim.schedule(
            SPM_ACCESS_CYCLES,
            lambda _: self.network.send(
                Packet(
                    source=self.node,
                    destination=requester,
                    kind="mem_resp",
                    size_bytes=size,
                    payload=(transaction, data),
                    trace_id=trace_id,
                    trace_parent=trace_parent,
                )
            ),
        )

    # ------------------------------------------------------------------

    def _inject(self, packet: Packet, charge: bool = True,
                retx_key: tuple | None = None,
                on_give_up=None, expect_bytes: int = 0) -> "Event":
        """Queue a packet after the injection delay; return delivery event.

        With ``retx_key`` the transmission is reliable: the returned
        event triggers only once the transfer is acknowledged (or fails
        with :class:`TransferTimeout` after the retransmit budget), and
        the packet is re-sent with exponential backoff until then.
        """
        done = self.sim.event(f"dtu{self.node}.delivery")
        if charge:
            self.sim.ledger.charge(Tag.XFER, params.DTU_INJECT_CYCLES)

        def inject(_):
            completion = self.network.send(packet)
            wire = completion - self.sim.now
            if charge:
                self.sim.ledger.charge(Tag.XFER, wire)
            if retx_key is None:
                self.sim.schedule(wire, lambda _: done.succeed())
            else:
                self._retx[retx_key] = {
                    "packet": packet,
                    "attempts": 1,
                    "done": done,
                    "give_up": on_give_up,
                }
                # The expected response's own serialisation time counts
                # toward the round trip the timer must not undercut.
                response_wire = -(-expect_bytes // self.network.bytes_per_cycle)
                self._arm_retx(retx_key, completion + response_wire,
                               params.DTU_RETX_TIMEOUT_CYCLES)

        self.sim.schedule(params.DTU_INJECT_CYCLES, inject)
        return done

    def _arm_retx(self, key: tuple, eta: int, grace: int) -> None:
        """Schedule the retransmit timer for an unacknowledged transfer.

        The timer fires ``grace`` cycles after ``eta`` — the cycle the
        network promised delivery at — so a large packet (whose wire
        time alone exceeds any flat timeout) is never retransmitted
        while it is still legitimately in flight.  ``grace`` covers the
        receiver's turnaround plus the ack's way back and grows by
        :data:`params.DTU_RETX_BACKOFF` per attempt.
        """

        def fire(_):
            entry = self._retx.get(key)
            if entry is None:
                return  # acked (or wiped) in the meantime
            if entry["attempts"] > params.DTU_RETX_MAX:
                del self._retx[key]
                if entry["give_up"] is not None:
                    entry["give_up"]()
                if not entry["done"].triggered:
                    packet = entry["packet"]
                    entry["done"].fail(
                        TransferTimeout(
                            f"node {self.node}: {packet.kind} to node "
                            f"{packet.destination} unacknowledged after "
                            f"{params.DTU_RETX_MAX} retransmits"
                        )
                    )
                return
            entry["attempts"] += 1
            self.retransmits += 1
            if self.sim.obs is not None:
                self.sim.obs.count("dtu.retransmits")
                self.sim.obs.instant(
                    "retransmit", "dtu", self.node,
                    kind=entry["packet"].kind,
                    destination=entry["packet"].destination,
                    attempt=entry["attempts"],
                )
            completion = self.network.send(entry["packet"])
            self._arm_retx(key, completion,
                           int(grace * params.DTU_RETX_BACKOFF))

        self.sim.schedule(max(1, eta - self.sim.now) + grace, fire)


    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "privileged" if self.privileged else "unprivileged"
        return f"<DTU node={self.node} {state}>"
