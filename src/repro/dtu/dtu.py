"""The DTU device model.

Everything PE-external flows through here: message sends, replies,
RDMA-style memory reads/writes, and the privileged remote-configuration
packets through which a kernel exercises NoC-level isolation.

Timing: injection costs :data:`params.DTU_INJECT_CYCLES`; wire time is
the NoC model's job; SPM-side service costs :data:`SPM_ACCESS_CYCLES`.
Transfer durations are charged to the ``xfer`` ledger tag — the
"Xfers" stack of the paper's figures.
"""

from __future__ import annotations

import itertools
import typing

from repro import params
from repro.dtu.message import HEADER_BYTES, Message, MessageHeader
from repro.dtu.registers import EndpointKind, EndpointRegisters, MemoryPerm
from repro.dtu.ringbuffer import RingBuffer
from repro.noc.packet import Packet
from repro.sim.ledger import Tag
from repro.sim.resources import Signal

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.spm import Scratchpad
    from repro.noc.network import Network
    from repro.sim import Simulator
    from repro.sim.events import Event

#: Cycles for the DTU to serve a request against the local SPM.
SPM_ACCESS_CYCLES = 2

#: Wire size of a memory read request / write ack descriptor.
MEM_REQUEST_BYTES = 16


class DtuError(Exception):
    """Base class for DTU-reported failures."""


class MissingCredits(DtuError):
    """Send denied: the endpoint is out of credits (Section 4.4.3)."""


class NoPermission(DtuError):
    """Operation denied: wrong endpoint kind, bounds, or privilege."""


class DTU:
    """One Data Transfer Unit, attached to a NoC node.

    ``local_memory`` is the PE's data SPM (or any byte-accurate memory)
    that remote memory endpoints may target and into which received
    ringbuffers conceptually live.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: int,
        local_memory: "Scratchpad",
        ep_count: int = params.DTU_ENDPOINTS,
    ):
        if ep_count < 1:
            raise ValueError("a DTU needs at least one endpoint")
        self.sim = sim
        self.network = network
        self.node = node
        self.local_memory = local_memory
        self.eps: list[EndpointRegisters] = [
            EndpointRegisters() for _ in range(ep_count)
        ]
        #: ringbuffer storage per receive endpoint.
        self._ringbufs: dict[int, RingBuffer] = {}
        #: fired when a message lands in the endpoint's ringbuffer.
        self._signals: dict[int, Signal] = {}
        #: outstanding memory/config transactions awaiting a response.
        self._pending: dict[int, "Event"] = {}
        self._transaction_ids = itertools.count()
        #: "all DTUs are privileged at boot" (Section 3); the kernel
        #: downgrades application PEs during boot.
        self.privileged = True
        self.messages_sent = 0
        self.messages_dropped = 0
        network.attach(node, self.handle_packet)

    # ------------------------------------------------------------------
    # Local (software-visible) interface
    # ------------------------------------------------------------------

    def ep(self, index: int) -> EndpointRegisters:
        """Endpoint registers (read-only from the application's view)."""
        if not (0 <= index < len(self.eps)):
            raise ValueError(f"endpoint {index} out of range")
        return self.eps[index]

    def signal(self, ep_index: int) -> Signal:
        """The delivery signal of a receive endpoint (for wait loops)."""
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.RECEIVE:
            raise NoPermission(f"EP{ep_index} is not a receive endpoint")
        return self._signals[ep_index]

    def ringbuffer(self, ep_index: int) -> RingBuffer:
        """The ringbuffer of a receive endpoint."""
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.RECEIVE:
            raise NoPermission(f"EP{ep_index} is not a receive endpoint")
        return self._ringbufs[ep_index]

    # -- message passing ------------------------------------------------

    def send(
        self,
        ep_index: int,
        payload: object,
        length: int,
        reply_ep: int | None = None,
        reply_label: int = 0,
    ) -> "Event":
        """Send a message through a send endpoint.

        Returns the delivery-complete event.  Sending is asynchronous:
        the core is free immediately after programming the registers;
        callers that need synchronous semantics yield the event.

        Raises :class:`MissingCredits` when the endpoint has no credits
        left — "message sending is denied by the DTU until the credits
        have been refilled" (Section 4.4.3).
        """
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.SEND:
            raise NoPermission(f"EP{ep_index} is not a send endpoint")
        if length < 0:
            raise ValueError("negative message length")
        if HEADER_BYTES + length > ep.msg_size:
            raise NoPermission(
                f"message of {length}B exceeds EP{ep_index} limit of "
                f"{ep.msg_size - HEADER_BYTES}B payload"
            )
        if ep.credits < 1:
            raise MissingCredits(f"EP{ep_index} has no credits left")
        if reply_ep is not None:
            reply_regs = self.ep(reply_ep)
            if reply_regs.kind != EndpointKind.RECEIVE:
                raise NoPermission(f"reply EP{reply_ep} is not a receive endpoint")
        ep.credits -= 1
        header = MessageHeader(
            label=ep.label,
            length=length,
            reply_node=self.node if reply_ep is not None else -1,
            reply_ep=reply_ep if reply_ep is not None else -1,
            reply_label=reply_label,
            credit_ep=ep_index,
        )
        message = Message(header, payload)
        packet = Packet(
            source=self.node,
            destination=ep.target_node,
            kind="message",
            size_bytes=message.size_bytes(),
            payload=(ep.target_ep, message),
        )
        self.messages_sent += 1
        return self._inject(packet)

    def reply(
        self, ep_index: int, slot: int, payload: object, length: int
    ) -> "Event":
        """Reply to the message in ``slot`` of receive endpoint ``ep_index``.

        The DTU extracts the destination from the stored message header
        (Section 4.4.4); a reply needs no dedicated channel and carries a
        credit refill for the original sender.  The slot is acknowledged
        (freed) as part of the reply.
        """
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.RECEIVE:
            raise NoPermission(f"EP{ep_index} is not a receive endpoint")
        if not ep.replies_enabled:
            raise NoPermission(f"EP{ep_index} has replies disabled")
        ringbuf = self._ringbufs[ep_index]
        original = ringbuf.peek(slot)
        if not original.can_reply:
            raise NoPermission("original message does not permit a reply")
        header = MessageHeader(label=original.header.reply_label, length=length)
        message = Message(header, payload)
        packet = Packet(
            source=self.node,
            destination=original.header.reply_node,
            kind="reply",
            size_bytes=message.size_bytes(),
            payload=(original.header.reply_ep, message, original.header.credit_ep),
        )
        ringbuf.ack(slot)
        return self._inject(packet)

    def fetch_message(self, ep_index: int) -> tuple[int, Message] | None:
        """Poll a receive endpoint: the next unread (slot, message) or None."""
        return self.ringbuffer(ep_index).fetch()

    def wait_message(self, ep_index: int):
        """Generator: block until a message is available, then return it.

        Models the paper's polling loop ("the software polls a DTU
        register to wait for received messages", Section 4.3) without
        busy-spinning the simulator.
        """
        while True:
            fetched = self.fetch_message(ep_index)
            if fetched is not None:
                return fetched
            yield self.signal(ep_index).wait()

    def ack_message(self, ep_index: int, slot: int) -> None:
        """Free a ringbuffer slot after processing (no reply sent)."""
        self.ringbuffer(ep_index).ack(slot)

    # -- remote memory access ----------------------------------------------

    def read_memory(self, ep_index: int, offset: int, length: int,
                    into_addr: int | None = None):
        """Generator: RDMA-read ``length`` bytes at ``offset`` of a memory EP.

        Returns the data; optionally also deposits it at ``into_addr`` in
        local memory (the common case — "the data register denotes the
        location the read data should be transferred to").
        """
        ep = self._memory_ep(ep_index, offset, length, MemoryPerm.READ)
        response = yield from self._memory_transaction(
            kind="mem_read",
            target=ep.mem_node,
            request_bytes=MEM_REQUEST_BYTES,
            payload_builder=lambda tid: (tid, ep.mem_addr + offset, length),
        )
        data = response
        if into_addr is not None:
            self.local_memory.write(into_addr, data)
        return data

    def write_memory(self, ep_index: int, offset: int, data: bytes,
                     from_addr: int | None = None):
        """Generator: RDMA-write ``data`` to ``offset`` of a memory EP.

        When ``from_addr`` is given the bytes are taken from local memory
        instead (``data`` then only conveys the length).
        """
        if from_addr is not None:
            data = self.local_memory.read(from_addr, len(data))
        ep = self._memory_ep(ep_index, offset, len(data), MemoryPerm.WRITE)
        yield from self._memory_transaction(
            kind="mem_write",
            target=ep.mem_node,
            request_bytes=MEM_REQUEST_BYTES + len(data),
            payload_builder=lambda tid: (tid, ep.mem_addr + offset, bytes(data)),
        )
        return len(data)

    def _memory_ep(self, ep_index: int, offset: int, length: int,
                   need: MemoryPerm) -> EndpointRegisters:
        ep = self.ep(ep_index)
        if ep.kind != EndpointKind.MEMORY:
            raise NoPermission(f"EP{ep_index} is not a memory endpoint")
        if not (ep.mem_perm & need):
            raise NoPermission(f"EP{ep_index} lacks {need} permission")
        if offset < 0 or length < 0 or offset + length > ep.mem_size:
            raise NoPermission(
                f"access [{offset}, {offset + length}) outside EP{ep_index} "
                f"region of {ep.mem_size}B"
            )
        return ep

    def _memory_transaction(self, kind: str, target: int, request_bytes: int,
                            payload_builder):
        """Issue a request packet and wait for the matching ``mem_resp``."""
        transaction = next(self._transaction_ids)
        done = self.sim.event(f"dtu{self.node}.{kind}#{transaction}")
        self._pending[transaction] = done
        packet = Packet(
            source=self.node,
            destination=target,
            kind=kind,
            size_bytes=request_bytes,
            payload=payload_builder(transaction),
        )
        started = self.sim.now
        self._inject(packet, charge=False)
        response = yield done
        # Whole round trip (inject + request + service + response) is
        # transfer time from the core's point of view.
        self.sim.ledger.charge(Tag.XFER, self.sim.now - started)
        return response

    # ------------------------------------------------------------------
    # Remote (kernel-side) configuration — NoC-level isolation
    # ------------------------------------------------------------------

    def configure_remote(self, target_node: int, operation: str, *args):
        """Generator: kernel-side remote endpoint configuration.

        Sends a privileged configuration packet to ``target_node`` and
        waits for the acknowledgement.  The *hardware* stamps the
        packet with this DTU's privilege — software cannot forge it —
        so only kernel PEs can reconfigure endpoints (Section 4.3).
        Raises :class:`NoPermission` if this DTU is unprivileged.
        """
        transaction = next(self._transaction_ids)
        done = self.sim.event(f"dtu{self.node}.config#{transaction}")
        self._pending[transaction] = done
        packet = Packet(
            source=self.node,
            destination=target_node,
            kind="ep_config",
            size_bytes=64,
            payload=(transaction, self.privileged, operation, args),
        )
        self._inject(packet, charge=False)
        started = self.sim.now
        result = yield done
        self.sim.ledger.charge(Tag.XFER, self.sim.now - started)
        if result == "denied":
            raise NoPermission(
                f"DTU at node {self.node} is not privileged to configure "
                f"node {target_node}"
            )
        return result

    def configure_local(self, operation: str, *args) -> object:
        """Directly write this DTU's configuration registers.

        Models local memory-mapped register writes, which succeed only
        while the DTU is still privileged — i.e. for kernel PEs, or for
        any PE during boot before the kernel downgrades it.
        """
        if not self.privileged:
            raise NoPermission(
                f"DTU at node {self.node} is unprivileged; configuration "
                "registers are only writable by kernel PEs"
            )
        return self._apply_config(operation, args)

    def _apply_config(self, operation: str, args: tuple) -> object:
        """Execute a validated configuration operation locally."""
        if operation == "configure":
            ep_index, registers = args
            self.eps[ep_index] = registers
            if registers.kind == EndpointKind.RECEIVE:
                self._ringbufs[ep_index] = RingBuffer(
                    registers.slot_size, registers.slot_count
                )
                # The per-endpoint delivery signal is stable hardware —
                # waiters survive reconfiguration (e.g. after a context
                # switch restores the endpoint).
                self._signals.setdefault(
                    ep_index, Signal(self.sim, f"dtu{self.node}.ep{ep_index}")
                )
            else:
                self._ringbufs.pop(ep_index, None)
            return "ok"
        if operation == "invalidate":
            (ep_index,) = args
            self.eps[ep_index].invalidate()
            self._ringbufs.pop(ep_index, None)
            return "ok"
        if operation == "refill_credits":
            (ep_index,) = args
            ep = self.eps[ep_index]
            ep.credits = ep.max_credits
            return "ok"
        if operation == "downgrade":
            self.privileged = False
            return "ok"
        if operation == "upgrade":
            self.privileged = True
            return "ok"
        raise RuntimeError(f"unknown configuration operation {operation!r}")

    # ------------------------------------------------------------------
    # NoC delivery handling (the hardware side)
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Entry point for packets the NoC delivers to this node."""
        if packet.kind == "message":
            self._deliver_message(*packet.payload, credit_ep=None)
        elif packet.kind == "reply":
            ep_index, message, credit_ep = packet.payload
            self._deliver_message(ep_index, message, credit_ep=credit_ep)
        elif packet.kind == "mem_read":
            transaction, address, length = packet.payload
            data = self.local_memory.read(address, length)
            self._respond_memory(packet.source, transaction, data, len(data))
        elif packet.kind == "mem_write":
            transaction, address, data = packet.payload
            self.local_memory.write(address, bytes(data))
            self._respond_memory(packet.source, transaction, b"", 0)
        elif packet.kind == "mem_resp":
            transaction, data = packet.payload
            self._pending.pop(transaction).succeed(data)
        elif packet.kind == "ep_config":
            transaction, privileged, operation, args = packet.payload
            if privileged:
                result = self._apply_config(operation, args)
            else:
                result = "denied"
            self.network.send(
                Packet(
                    source=self.node,
                    destination=packet.source,
                    kind="config_ack",
                    size_bytes=16,
                    payload=(transaction, result),
                )
            )
        elif packet.kind == "config_ack":
            transaction, result = packet.payload
            self._pending.pop(transaction).succeed(result)
        else:
            raise RuntimeError(f"DTU at node {self.node} got {packet!r}")

    def _deliver_message(self, ep_index: int, message: Message,
                         credit_ep: int | None) -> None:
        if credit_ep is not None and credit_ep >= 0:
            # A reply refills the original send endpoint's credits.
            sender_ep = self.eps[credit_ep]
            if sender_ep.kind == EndpointKind.SEND:
                sender_ep.credits = min(sender_ep.credits + 1, sender_ep.max_credits)
        ep = self.eps[ep_index] if 0 <= ep_index < len(self.eps) else None
        if ep is None or ep.kind != EndpointKind.RECEIVE:
            self.messages_dropped += 1
            return
        slot = self._ringbufs[ep_index].push(message)
        if slot is None:
            self.messages_dropped += 1
            return
        self._signals[ep_index].fire()

    def _respond_memory(self, requester: int, transaction: int, data: bytes,
                        size: int) -> None:
        self.sim.schedule(
            SPM_ACCESS_CYCLES,
            lambda _: self.network.send(
                Packet(
                    source=self.node,
                    destination=requester,
                    kind="mem_resp",
                    size_bytes=size,
                    payload=(transaction, data),
                )
            ),
        )

    # ------------------------------------------------------------------

    def _inject(self, packet: Packet, charge: bool = True) -> "Event":
        """Queue a packet after the injection delay; return delivery event."""
        done = self.sim.event(f"dtu{self.node}.delivery")
        if charge:
            self.sim.ledger.charge(Tag.XFER, params.DTU_INJECT_CYCLES)

        def inject(_):
            completion = self.network.send(packet)
            wire = completion - self.sim.now
            if charge:
                self.sim.ledger.charge(Tag.XFER, wire)
            self.sim.schedule(wire, lambda _: done.succeed())

        self.sim.schedule(params.DTU_INJECT_CYCLES, inject)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "privileged" if self.privileged else "unprivileged"
        return f"<DTU node={self.node} {state}>"
