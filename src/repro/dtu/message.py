"""Messages and their headers.

"Messages consist of a header and a payload.  The header is
automatically prepended to the payload by the DTU and contains a label,
the length of the message, and information for a potential reply"
(Section 4.4.2).
"""

from __future__ import annotations

import dataclasses
import zlib

#: Wire size of the header the DTU prepends (label, length, reply info).
#: The reliable-delivery fields (sequence number, CRC) fit the padding
#: of the 16-byte header, so enabling reliability does not change any
#: wire size.
HEADER_BYTES = 16


@dataclasses.dataclass(frozen=True)
class MessageHeader:
    """DTU-generated metadata prepended to every message."""

    #: receiver-chosen sender identification (unforgeable; Section 4.4.2).
    label: int
    #: payload length in bytes.
    length: int
    #: where a reply must go; ``reply_node < 0`` means replies disallowed.
    reply_node: int = -1
    reply_ep: int = -1
    #: label to attach to the reply (identifies the replied-to request).
    reply_label: int = 0
    #: send endpoint at the sender whose credits a reply refills.
    credit_ep: int = -1
    #: reliable-delivery sequence number, unique per sending DTU;
    #: ``seq < 0`` marks a best-effort message (no ack, no retransmit).
    seq: int = -1
    #: CRC over (label, length, payload); 0 on best-effort messages.
    crc: int = 0
    #: causal trace context, stamped by the sending DTU when an
    #: Observer is installed.  Like seq/CRC these ride the padding of
    #: the 16-byte header, so tracing does not change any wire size.
    #: ``trace_id < 0`` means the message is untraced.
    trace_id: int = -1
    #: span id of this message's own DTU span at the sender — the
    #: parent that receiver-side handler spans adopt.
    parent_span: int = -1


@dataclasses.dataclass(frozen=True)
class Message:
    """A delivered message sitting in a ringbuffer slot."""

    header: MessageHeader
    payload: object

    @property
    def label(self) -> int:
        return self.header.label

    @property
    def can_reply(self) -> bool:
        return self.header.reply_node >= 0

    def size_bytes(self) -> int:
        """Wire size: header plus declared payload length."""
        return HEADER_BYTES + self.header.length


def payload_crc(label: int, length: int, payload: object) -> int:
    """CRC the DTU stamps on (and checks against) a reliable message.

    Computed over the stable repr of the header-identifying fields and
    the payload; never 0, so ``crc == 0`` always means "unchecked".
    """
    return zlib.crc32(repr((label, length, payload)).encode()) or 1


def message_crc(message: Message) -> int:
    """The expected CRC of a delivered message."""
    return payload_crc(message.header.label, message.header.length,
                       message.payload)
