"""Messages and their headers.

"Messages consist of a header and a payload.  The header is
automatically prepended to the payload by the DTU and contains a label,
the length of the message, and information for a potential reply"
(Section 4.4.2).
"""

from __future__ import annotations

import dataclasses

#: Wire size of the header the DTU prepends (label, length, reply info).
HEADER_BYTES = 16


@dataclasses.dataclass(frozen=True)
class MessageHeader:
    """DTU-generated metadata prepended to every message."""

    #: receiver-chosen sender identification (unforgeable; Section 4.4.2).
    label: int
    #: payload length in bytes.
    length: int
    #: where a reply must go; ``reply_node < 0`` means replies disallowed.
    reply_node: int = -1
    reply_ep: int = -1
    #: label to attach to the reply (identifies the replied-to request).
    reply_label: int = 0
    #: send endpoint at the sender whose credits a reply refills.
    credit_ep: int = -1


@dataclasses.dataclass(frozen=True)
class Message:
    """A delivered message sitting in a ringbuffer slot."""

    header: MessageHeader
    payload: object

    @property
    def label(self) -> int:
        return self.header.label

    @property
    def can_reply(self) -> bool:
        return self.header.reply_node >= 0

    def size_bytes(self) -> int:
        """Wire size: header plus declared payload length."""
        return HEADER_BYTES + self.header.length
