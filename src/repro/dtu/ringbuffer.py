"""Receive-endpoint ringbuffers.

"Ringbuffers at the receive endpoints allow receivers to simultaneously
accept messages from multiple senders. ... Upon the reception of a
message, the DTU writes the received message at the current write
position and moves the write position forward.  The software in turn
advances the buffer's current read position" (Section 4.4.3).
Messages are dropped if no slot is free — senders are expected to be
throttled by credits before that happens.
"""

from __future__ import annotations

from repro.dtu.message import Message


class RingBuffer:
    """Fixed-slot ringbuffer holding delivered messages."""

    def __init__(self, slot_size: int, slot_count: int):
        if slot_size <= 0 or slot_count <= 0:
            raise ValueError("ringbuffer geometry must be positive")
        self.slot_size = slot_size
        self.slot_count = slot_count
        self._slots: list[Message | None] = [None] * slot_count
        self._write_pos = 0
        self._read_pos = 0
        self.delivered = 0
        self.dropped = 0

    @property
    def occupied(self) -> int:
        """Number of slots holding unacknowledged messages."""
        return sum(1 for slot in self._slots if slot is not None)

    @property
    def full(self) -> bool:
        return self._slots[self._write_pos] is not None

    def push(self, message: Message) -> int | None:
        """Store a delivered message; returns its slot or None if dropped."""
        if message.size_bytes() > self.slot_size:
            # The sender's DTU enforces the size limit; this guards against
            # misconfiguration.  Slot size counts header plus payload.
            raise ValueError(
                f"message of {message.size_bytes()}B exceeds slot of "
                f"{self.slot_size}B"
            )
        if self.full:
            self.dropped += 1
            return None
        slot = self._write_pos
        self._slots[slot] = message
        self._write_pos = (slot + 1) % self.slot_count
        self.delivered += 1
        return slot

    def fetch(self) -> tuple[int, Message] | None:
        """The oldest unread message and its slot, advancing the read position.

        The message stays occupied until :meth:`ack` — software processes
        it in place and acknowledges when done.
        """
        if self._slots[self._read_pos] is None:
            return None
        slot = self._read_pos
        message = self._slots[slot]
        self._read_pos = (slot + 1) % self.slot_count
        return slot, message

    def peek(self, slot: int) -> Message:
        """The message occupying ``slot`` (for reply processing)."""
        message = self._slots[slot]
        if message is None:
            raise ValueError(f"slot {slot} is empty")
        return message

    def ack(self, slot: int) -> None:
        """Mark ``slot`` processed, freeing it for new messages."""
        if self._slots[slot] is None:
            raise ValueError(f"slot {slot} already free")
        self._slots[slot] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RingBuffer {self.occupied}/{self.slot_count} slots of "
            f"{self.slot_size}B>"
        )
