"""Receive-endpoint ringbuffers.

"Ringbuffers at the receive endpoints allow receivers to simultaneously
accept messages from multiple senders. ... Upon the reception of a
message, the DTU writes the received message at the current write
position and moves the write position forward.  The software in turn
advances the buffer's current read position" (Section 4.4.3).
Messages are dropped if no slot is free — senders are expected to be
throttled by credits before that happens.
"""

from __future__ import annotations

import collections

from repro import params
from repro.dtu.message import Message

#: sentinel returned by :meth:`RingBuffer.push` for a suppressed
#: duplicate: the message was already delivered once, so the receiver
#: must re-acknowledge it but not deliver it again.
DUPLICATE = object()


class RingBuffer:
    """Fixed-slot ringbuffer holding delivered messages."""

    def __init__(self, slot_size: int, slot_count: int,
                 dedup_window: int = params.DTU_DEDUP_WINDOW):
        if slot_size <= 0 or slot_count <= 0:
            raise ValueError("ringbuffer geometry must be positive")
        self.slot_size = slot_size
        self.slot_count = slot_count
        self._slots: list[Message | None] = [None] * slot_count
        self._write_pos = 0
        self._read_pos = 0
        self._occupied = 0
        self.delivered = 0
        self.dropped = 0
        #: reliable delivery: recently accepted (source, seq) pairs, so a
        #: retransmit whose ack was lost is re-acked but not re-delivered.
        self._seen: collections.OrderedDict = collections.OrderedDict()
        self._dedup_window = dedup_window
        self.duplicates = 0

    @property
    def occupied(self) -> int:
        """Number of slots holding unacknowledged messages.

        Maintained incrementally by :meth:`push`/:meth:`ack` — credit
        checks consult this on every message, so an O(slot_count) scan
        here made large receive endpoints scale superlinearly.
        """
        return self._occupied

    @property
    def full(self) -> bool:
        return self._slots[self._write_pos] is not None

    def push(self, message: Message, source: int = -1):
        """Store a delivered message.

        Returns the chosen slot, ``None`` if the ring is full (the
        message is dropped), or :data:`DUPLICATE` when a reliable
        message (``header.seq >= 0``) from ``source`` was already
        accepted — the caller re-acks without delivering twice.
        """
        if message.size_bytes() > self.slot_size:
            # The sender's DTU enforces the size limit; this guards against
            # misconfiguration.  Slot size counts header plus payload.
            raise ValueError(
                f"message of {message.size_bytes()}B exceeds slot of "
                f"{self.slot_size}B"
            )
        seq = message.header.seq
        if seq >= 0 and (source, seq) in self._seen:
            self.duplicates += 1
            return DUPLICATE
        if self.full:
            self.dropped += 1
            return None
        slot = self._write_pos
        self._slots[slot] = message
        self._write_pos = (slot + 1) % self.slot_count
        self._occupied += 1
        self.delivered += 1
        if seq >= 0:
            # Record only accepted messages: a retransmit of a message
            # dropped here (ring full) must still be deliverable.
            self._seen[(source, seq)] = True
            while len(self._seen) > self._dedup_window:
                self._seen.popitem(last=False)
        return slot

    def fetch(self) -> tuple[int, Message] | None:
        """The oldest unread message and its slot, advancing the read position.

        The message stays occupied until :meth:`ack` — software processes
        it in place and acknowledges when done.
        """
        if self._slots[self._read_pos] is None:
            return None
        slot = self._read_pos
        message = self._slots[slot]
        self._read_pos = (slot + 1) % self.slot_count
        return slot, message

    def peek(self, slot: int) -> Message:
        """The message occupying ``slot`` (for reply processing)."""
        message = self._slots[slot]
        if message is None:
            raise ValueError(f"slot {slot} is empty")
        return message

    def ack(self, slot: int) -> None:
        """Mark ``slot`` processed, freeing it for new messages."""
        if self._slots[slot] is None:
            raise ValueError(f"slot {slot} already free")
        self._slots[slot] = None
        self._occupied -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RingBuffer {self.occupied}/{self.slot_count} slots of "
            f"{self.slot_size}B>"
        )
