"""The Data Transfer Unit (DTU): the paper's central hardware component.

Each PE has exactly one DTU; it is "the only interface for the PE to
PE-external resources" (Section 3.1).  A DTU contains a fixed set of
endpoints, each configurable as a *send*, *receive*, or *memory*
endpoint.  The configuration registers are writable only by kernel PEs
— remotely, via privileged NoC packets — which is what "NoC-level
isolation" means: a kernel on another PE governs what this PE can
reach, and nothing else about the core needs to be trusted.
"""

from repro.dtu.registers import EndpointKind, EndpointRegisters, MemoryPerm
from repro.dtu.message import Message, MessageHeader
from repro.dtu.ringbuffer import RingBuffer
from repro.dtu.dtu import DTU, DtuError, MissingCredits, NoPermission

__all__ = [
    "DTU",
    "DtuError",
    "MissingCredits",
    "NoPermission",
    "EndpointKind",
    "EndpointRegisters",
    "MemoryPerm",
    "Message",
    "MessageHeader",
    "RingBuffer",
]
