"""Endpoint register model.

Per endpoint the DTU holds the registers named in the paper (Figure 2):
``buffer``, ``target``, ``credits``, and ``label`` — writable only by
kernel PEs — plus the ``data`` register through which the local core
starts transfers (Section 4.3).
"""

from __future__ import annotations

import dataclasses
import enum


class EndpointKind(enum.Enum):
    """What an endpoint is currently configured as."""

    INVALID = "invalid"
    SEND = "send"
    RECEIVE = "receive"
    MEMORY = "memory"


class MemoryPerm(enum.Flag):
    """Permissions of a memory endpoint's target region."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    RW = READ | WRITE


@dataclasses.dataclass
class EndpointRegisters:
    """The kernel-writable configuration of one endpoint."""

    kind: EndpointKind = EndpointKind.INVALID

    # -- send endpoints -----------------------------------------------------
    #: target register: the receive endpoint this EP sends to.
    target_node: int = -1
    target_ep: int = -1
    #: label chosen by the *receiver* to identify this sender (KeyKOS-style);
    #: unforgeable because only kernels can write it.
    label: int = 0
    #: remaining message credits and the refill ceiling.
    credits: int = 0
    max_credits: int = 0
    #: maximum message size at the target (the target ringbuffer slot size).
    msg_size: int = 0

    # -- receive endpoints ---------------------------------------------------
    #: buffer register: ringbuffer placement in the PE's local memory.
    buffer_addr: int = 0
    slot_size: int = 0
    slot_count: int = 0
    #: whether replies out of this ringbuffer are permitted (requires the
    #: kernel to have placed the buffer in protected memory; Section 4.4.4).
    replies_enabled: bool = True

    # -- memory endpoints ----------------------------------------------------
    mem_node: int = -1
    mem_addr: int = 0
    mem_size: int = 0
    mem_perm: MemoryPerm = MemoryPerm.NONE

    def invalidate(self) -> None:
        """Reset to the unconfigured state."""
        fresh = EndpointRegisters()
        for field in dataclasses.fields(fresh):
            setattr(self, field.name, getattr(fresh, field.name))

    @classmethod
    def send_config(
        cls,
        target_node: int,
        target_ep: int,
        label: int,
        credits: int,
        msg_size: int,
    ) -> "EndpointRegisters":
        """Build a send-endpoint configuration."""
        if credits < 0:
            raise ValueError("credits cannot be negative")
        if msg_size <= 0:
            raise ValueError("message size must be positive")
        return cls(
            kind=EndpointKind.SEND,
            target_node=target_node,
            target_ep=target_ep,
            label=label,
            credits=credits,
            max_credits=credits,
            msg_size=msg_size,
        )

    @classmethod
    def receive_config(
        cls,
        buffer_addr: int,
        slot_size: int,
        slot_count: int,
        replies_enabled: bool = True,
    ) -> "EndpointRegisters":
        """Build a receive-endpoint configuration."""
        if slot_size <= 0 or slot_count <= 0:
            raise ValueError("ringbuffer geometry must be positive")
        return cls(
            kind=EndpointKind.RECEIVE,
            buffer_addr=buffer_addr,
            slot_size=slot_size,
            slot_count=slot_count,
            replies_enabled=replies_enabled,
        )

    @classmethod
    def memory_config(
        cls, mem_node: int, mem_addr: int, mem_size: int, perm: MemoryPerm
    ) -> "EndpointRegisters":
        """Build a memory-endpoint configuration."""
        if mem_size <= 0:
            raise ValueError("memory region must be non-empty")
        if mem_addr < 0:
            raise ValueError("memory address cannot be negative")
        return cls(
            kind=EndpointKind.MEMORY,
            mem_node=mem_node,
            mem_addr=mem_addr,
            mem_size=mem_size,
            mem_perm=perm,
        )
