"""Scratchpad memory: the only directly addressable memory of a PE.

The prototype platform's PEs have no caches and no MMU; each core sees
a 64 KiB instruction SPM and a 64 KiB data SPM addressed physically
(paper Sections 4.1-4.2).  The model is byte-accurate so that data
flowing through pipes and files round-trips exactly.
"""

from __future__ import annotations


class Scratchpad:
    """A byte-accurate physically addressed memory bank."""

    def __init__(self, size: int, name: str = "spm"):
        if size < 1:
            raise ValueError(f"memory size must be positive: {size}")
        self.size = size
        self.name = name
        self._bytes = bytearray(size)

    def _check(self, address: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative access length: {length}")
        if address < 0 or address + length > self.size:
            raise ValueError(
                f"{self.name}: access [{address}, {address + length}) outside "
                f"[0, {self.size})"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check(address, length)
        return bytes(self._bytes[address : address + length])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check(address, len(data))
        self._bytes[address : address + len(data)] = data

    def zero(self, address: int, length: int) -> None:
        """Clear a region to zero bytes."""
        self._check(address, length)
        self._bytes[address : address + length] = bytes(length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scratchpad {self.name!r} {self.size}B>"


class SparseMemory(Scratchpad):
    """A byte-accurate memory that materialises storage on first write.

    Large memories (the DRAM module is hundreds of MiB in the Figure 6
    configurations) are mostly never touched; a dense ``bytearray``
    spends more wall time zero-filling at boot than the benchmark spends
    simulating.  This variant keeps 64 KiB chunks in a dict — reads of
    unwritten regions return zero bytes, exactly like the dense model,
    and single-chunk accesses (the common case: filesystem blocks and
    DTU transfers are far smaller than a chunk) take one dict lookup.
    """

    CHUNK_BYTES = 64 * 1024

    def __init__(self, size: int, name: str = "mem"):
        if size < 1:
            raise ValueError(f"memory size must be positive: {size}")
        self.size = size
        self.name = name
        self._chunks: dict[int, bytearray] = {}

    def read(self, address: int, length: int) -> bytes:
        self._check(address, length)
        if length == 0:
            return b""
        chunk_bytes = self.CHUNK_BYTES
        chunks = self._chunks
        index = address // chunk_bytes
        offset = address - index * chunk_bytes
        if offset + length <= chunk_bytes:
            chunk = chunks.get(index)
            if chunk is None:
                return bytes(length)
            return bytes(chunk[offset : offset + length])
        parts = []
        remaining = length
        while remaining > 0:
            take = min(chunk_bytes - offset, remaining)
            chunk = chunks.get(index)
            parts.append(
                bytes(take) if chunk is None
                else bytes(chunk[offset : offset + take])
            )
            remaining -= take
            offset = 0
            index += 1
        return b"".join(parts)

    def write(self, address: int, data: bytes) -> None:
        length = len(data)
        self._check(address, length)
        if length == 0:
            return
        chunk_bytes = self.CHUNK_BYTES
        chunks = self._chunks
        index = address // chunk_bytes
        offset = address - index * chunk_bytes
        if offset + length <= chunk_bytes:
            chunk = chunks.get(index)
            if chunk is None:
                chunk = chunks[index] = bytearray(chunk_bytes)
            chunk[offset : offset + length] = data
            return
        position = 0
        while position < length:
            take = min(chunk_bytes - offset, length - position)
            chunk = chunks.get(index)
            if chunk is None:
                chunk = chunks[index] = bytearray(chunk_bytes)
            chunk[offset : offset + take] = data[position : position + take]
            position += take
            offset = 0
            index += 1

    def zero(self, address: int, length: int) -> None:
        self._check(address, length)
        chunk_bytes = self.CHUNK_BYTES
        chunks = self._chunks
        index = address // chunk_bytes
        offset = address - index * chunk_bytes
        remaining = length
        while remaining > 0:
            take = min(chunk_bytes - offset, remaining)
            chunk = chunks.get(index)
            if chunk is not None:
                # unmaterialised chunks already read back as zeros
                chunk[offset : offset + take] = bytes(take)
            remaining -= take
            offset = 0
            index += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SparseMemory {self.name!r} {self.size}B "
            f"({len(self._chunks)} chunks live)>"
        )
