"""Scratchpad memory: the only directly addressable memory of a PE.

The prototype platform's PEs have no caches and no MMU; each core sees
a 64 KiB instruction SPM and a 64 KiB data SPM addressed physically
(paper Sections 4.1-4.2).  The model is byte-accurate so that data
flowing through pipes and files round-trips exactly.
"""

from __future__ import annotations


class Scratchpad:
    """A byte-accurate physically addressed memory bank."""

    def __init__(self, size: int, name: str = "spm"):
        if size < 1:
            raise ValueError(f"memory size must be positive: {size}")
        self.size = size
        self.name = name
        self._bytes = bytearray(size)

    def _check(self, address: int, length: int) -> None:
        if length < 0:
            raise ValueError(f"negative access length: {length}")
        if address < 0 or address + length > self.size:
            raise ValueError(
                f"{self.name}: access [{address}, {address + length}) outside "
                f"[0, {self.size})"
            )

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check(address, length)
        return bytes(self._bytes[address : address + length])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        self._check(address, len(data))
        self._bytes[address : address + len(data)] = data

    def zero(self, address: int, length: int) -> None:
        """Clear a region to zero bytes."""
        self._check(address, length)
        self._bytes[address : address + length] = bytes(length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scratchpad {self.name!r} {self.size}B>"
