"""Devices whose interrupts are DTU messages.

The paper proposes (Section 4.4.2): "device interrupts should be sent
as messages as well to integrate them with the existing concepts.  This
would allow to wait for them as for any other message, interpose them,
sent them to any PE, independent of the core" — but leaves it
unimplemented for lack of devices on the prototype.  This module
implements the idea for the simulation platform.

A :class:`Device` occupies a NoC node and holds a small DTU (endpoints
configured by the kernel like any other).  When the device raises an
interrupt, its DTU sends a regular message through a send endpoint —
so delivery, ringbuffers, credits, labels, and interposition all come
for free.  Two concrete devices are provided:

- :class:`TimerDevice` — fires after a programmed delay (one-shot) or
  periodically,
- :class:`BlockDevice` — a DMA-style storage device: commands arrive as
  messages, data moves via its memory endpoint, completion is an
  interrupt message.
"""

from __future__ import annotations

import typing

from repro.dtu.dtu import DTU
from repro.hw.spm import Scratchpad

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.sim import Simulator

#: endpoint the device uses to send its interrupt messages.
IRQ_SEND_EP = 0
#: endpoint on which command messages arrive (devices that take them).
CMD_RECV_EP = 1
#: endpoint for DMA memory access (devices that move data).
DMA_MEM_EP = 2

#: interrupt message payload size.
IRQ_BYTES = 16


class Device:
    """Base: a DTU-fronted device at a NoC node (no core behind it)."""

    def __init__(self, sim: "Simulator", network: "Network", node: int,
                 name: str = "device", buffer_bytes: int = 4096):
        self.sim = sim
        self.name = name
        self.node = node
        #: small device-local buffer memory (for DMA staging).
        self.buffer = Scratchpad(buffer_bytes, name=f"{name}.buf")
        self.dtu = DTU(sim, network, node, self.buffer)
        self.interrupts_sent = 0

    def raise_interrupt(self, payload: object = ()) -> None:
        """Send an interrupt as a plain DTU message.

        Requires the kernel to have configured :data:`IRQ_SEND_EP` to
        point at some receive gate; an unconfigured or credit-less
        endpoint silently drops the interrupt (like a masked IRQ line).
        """
        from repro.dtu.dtu import DtuError

        try:
            self.dtu.send(IRQ_SEND_EP, ("irq", self.name, payload), IRQ_BYTES)
            self.interrupts_sent += 1
        except DtuError:
            pass  # masked: no target or out of credits


class TimerDevice(Device):
    """A timer whose expiry is a message."""

    def __init__(self, sim, network, node, name: str = "timer"):
        super().__init__(sim, network, node, name)
        self._generation = 0

    def program(self, delay_cycles: int, periodic: bool = False) -> None:
        """Arm the timer (re-programming cancels the previous arm)."""
        if delay_cycles < 1:
            raise ValueError("timer delay must be at least one cycle")
        self._generation += 1
        self._arm(delay_cycles, periodic, self._generation)

    def cancel(self) -> None:
        self._generation += 1

    def _arm(self, delay: int, periodic: bool, generation: int) -> None:
        def fire(_):
            if generation != self._generation:
                return  # cancelled or re-programmed
            self.raise_interrupt((self.sim.now,))
            if periodic:
                self._arm(delay, periodic, generation)

        self.sim.schedule(delay, fire)


class Wire:
    """A point-to-point link between two :class:`NetworkDevice` NICs."""

    def __init__(self, sim: "Simulator", latency_cycles: int = 200,
                 bytes_per_cycle: int = 1):
        self.sim = sim
        self.latency_cycles = latency_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self._ends: list["NetworkDevice"] = []
        self.frames_carried = 0

    def connect(self, a: "NetworkDevice", b: "NetworkDevice") -> None:
        self._ends = [a, b]
        a.wire = self
        b.wire = self

    def transmit(self, sender: "NetworkDevice", frame: bytes) -> None:
        if len(self._ends) != 2:
            raise RuntimeError("wire is not connected at both ends")
        peer = self._ends[1] if self._ends[0] is sender else self._ends[0]
        duration = self.latency_cycles + max(
            1, len(frame) // self.bytes_per_cycle
        )
        self.frames_carried += 1
        self.sim.schedule(duration, lambda _: peer.receive_frame(frame))


class NetworkDevice(Device):
    """A NIC: frames out via DMA + wire, frames in via DMA + interrupt.

    - TX: a ``("tx", mem_offset, length)`` command message makes the NIC
      DMA-read the frame from its memory window and push it on the wire.
    - RX: an arriving frame is DMA-written into the next slot of the RX
      ring inside the same window, then announced with an
      ``("rx", offset, length)`` interrupt message.
    """

    def __init__(self, sim, network, node, name: str = "nic",
                 rx_base: int = 2048, rx_slots: int = 8,
                 rx_slot_bytes: int = 256):
        super().__init__(sim, network, node, name)
        self.wire: Wire | None = None
        self.rx_base = rx_base
        self.rx_slots = rx_slots
        self.rx_slot_bytes = rx_slot_bytes
        self._rx_next = 0
        self.frames_sent = 0
        self.frames_received = 0
        self._pump = None

    def start(self) -> None:
        """Serve TX commands (after the kernel wired the endpoints)."""
        if self._pump is None:
            self._pump = self.sim.process(self._serve(), f"{self.name}.tx")

    def _serve(self):
        while True:
            slot, message = yield from self.dtu.wait_message(CMD_RECV_EP)
            op, offset, length = message.payload
            bad = op != "tx" or self.wire is None
            # Replying acknowledges the command AND refunds the driver's
            # send credit (Section 4.4.4) — a NIC that only acks starves
            # its command channel after max_credits lifetime commands.
            # Fire-and-forget senders keep the plain-ack behaviour.
            if message.can_reply:
                yield self.dtu.reply(
                    CMD_RECV_EP, slot, ("err" if bad else "ok", op), 16
                )
            else:
                self.dtu.ack_message(CMD_RECV_EP, slot)
            if bad:
                self.raise_interrupt(("error", op))
                continue
            frame = yield from self.dtu.read_memory(DMA_MEM_EP, offset, length)
            self.frames_sent += 1
            self.wire.transmit(self, bytes(frame))
            # The frame left the buffer: the driver may reuse the slot.
            self.raise_interrupt(("txdone", offset))

    def receive_frame(self, frame: bytes) -> None:
        """Wire-side delivery entry point."""
        if len(frame) > self.rx_slot_bytes:
            self.raise_interrupt(("overrun", len(frame)))
            return
        slot = self._rx_next
        self._rx_next = (slot + 1) % self.rx_slots
        offset = self.rx_base + slot * self.rx_slot_bytes

        def dma():
            yield from self.dtu.write_memory(DMA_MEM_EP, offset, frame)
            self.frames_received += 1
            self.raise_interrupt(("rx", offset, len(frame)))

        self.sim.process(dma(), f"{self.name}.rx")


class BlockDevice(Device):
    """DMA storage: commands in, data via memory endpoint, IRQ out.

    Command messages (on :data:`CMD_RECV_EP`):

    - ``("read", sector, count, mem_offset)`` — copy sectors into the
      memory region behind :data:`DMA_MEM_EP` at ``mem_offset``,
    - ``("write", sector, count, mem_offset)`` — the reverse.

    Completion raises an interrupt carrying the command tag.
    """

    SECTOR_BYTES = 512

    def __init__(self, sim, network, node, sectors: int = 2048,
                 name: str = "disk", sector_cycles: int = 64):
        super().__init__(sim, network, node, name)
        self.media = Scratchpad(sectors * self.SECTOR_BYTES,
                                name=f"{name}.media")
        self.sector_cycles = sector_cycles
        self.commands_served = 0
        self._pump = None

    def start(self) -> None:
        """Begin serving commands (call once the kernel configured the
        command receive endpoint)."""
        if self._pump is None:
            self._pump = self.sim.process(self._serve(), f"{self.name}.serve")

    def _serve(self):
        while True:
            slot, message = yield from self.dtu.wait_message(CMD_RECV_EP)
            self.dtu.ack_message(CMD_RECV_EP, slot)
            op, sector, count, mem_offset = message.payload
            nbytes = count * self.SECTOR_BYTES
            # media access time
            yield self.sim.delay(self.sector_cycles * count)
            if op == "read":
                data = self.media.read(sector * self.SECTOR_BYTES, nbytes)
                yield from self.dtu.write_memory(DMA_MEM_EP, mem_offset, data)
            elif op == "write":
                data = yield from self.dtu.read_memory(
                    DMA_MEM_EP, mem_offset, nbytes
                )
                self.media.write(sector * self.SECTOR_BYTES, data)
            else:
                self.raise_interrupt(("error", op))
                continue
            self.commands_served += 1
            self.raise_interrupt(("done", op, sector, count))
