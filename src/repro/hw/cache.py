"""Caches in front of the DTU: the paper's Section 7 extension.

"We plan to add caches to the PEs or replace the SPM with caches.  The
cache will use the DTU to load/store cache lines from/into DRAM.  In
this way, the DTU remains the only component with access to PE-external
resources and it thus suffices to control the DTU."

:class:`Cache` is a set-associative, write-back, write-allocate cache
whose misses fetch 32-byte lines through a backend (typically a memory
endpoint).  :class:`CachedMemory` wraps it into a byte-granular
load/store interface so software can treat PE-external memory as
directly addressable — the missing piece for POSIX-style applications.
"""

from __future__ import annotations

from repro import params


class CacheLine:
    __slots__ = ("tag", "data", "dirty", "last_use")

    def __init__(self, tag: int, data: bytearray):
        self.tag = tag
        self.data = data
        self.dirty = False
        self.last_use = 0


class Cache:
    """Set-associative write-back cache over a line-granular backend.

    ``backend_read(offset, size)`` and ``backend_write(offset, data)``
    are generator functions (normally a
    :class:`~repro.m3.lib.gate.MemGate`'s methods), so every miss and
    write-back costs real simulated DTU/NoC time.
    """

    def __init__(self, sim, backend_read, backend_write,
                 size_bytes: int = 8 * 1024,
                 line_bytes: int = params.CACHE_LINE_BYTES,
                 ways: int = 4, hit_cycles: int = 1):
        if line_bytes & (line_bytes - 1) or line_bytes < 8:
            raise ValueError("line size must be a power of two >= 8")
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must divide into sets evenly")
        self.sim = sim
        self.backend_read = backend_read
        self.backend_write = backend_write
        self.line_bytes = line_bytes
        self.ways = ways
        self.set_count = size_bytes // (line_bytes * ways)
        self.hit_cycles = hit_cycles
        self._sets: list[list[CacheLine]] = [[] for _ in range(self.set_count)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, address: int) -> tuple[int, int, int]:
        line_number = address // self.line_bytes
        return (
            line_number % self.set_count,  # set index
            line_number // self.set_count,  # tag
            line_number * self.line_bytes,  # line base address
        )

    def _line(self, address: int):
        """Generator: the cache line containing ``address`` (fetching
        and possibly evicting)."""
        set_index, tag, base = self._locate(address)
        bucket = self._sets[set_index]
        self._clock += 1
        for line in bucket:
            if line.tag == tag:
                self.hits += 1
                line.last_use = self._clock
                yield self.sim.delay(self.hit_cycles)
                return line
        # miss: fetch through the DTU
        self.misses += 1
        data = yield from self.backend_read(base, self.line_bytes)
        line = CacheLine(tag, bytearray(data))
        line.last_use = self._clock
        if len(bucket) >= self.ways:
            victim = min(bucket, key=lambda l: l.last_use)
            bucket.remove(victim)
            if victim.dirty:
                yield from self._write_back(set_index, victim)
        bucket.append(line)
        return line

    def _write_back(self, set_index: int, line: CacheLine):
        self.writebacks += 1
        line_number = line.tag * self.set_count + set_index
        yield from self.backend_write(
            line_number * self.line_bytes, bytes(line.data)
        )

    # -- byte-granular access --------------------------------------------

    def read(self, address: int, size: int):
        """Generator: read ``size`` bytes (line by line)."""
        if size < 0 or address < 0:
            raise ValueError("bad access")
        out = bytearray()
        position = address
        while position < address + size:
            line = yield from self._line(position)
            offset = position % self.line_bytes
            take = min(self.line_bytes - offset, address + size - position)
            out.extend(line.data[offset : offset + take])
            position += take
        return bytes(out)

    def write(self, address: int, data: bytes):
        """Generator: write-allocate write of ``data``."""
        position = address
        index = 0
        while index < len(data):
            line = yield from self._line(position)
            offset = position % self.line_bytes
            take = min(self.line_bytes - offset, len(data) - index)
            line.data[offset : offset + take] = data[index : index + take]
            line.dirty = True
            position += take
            index += take
        return len(data)

    def flush(self):
        """Generator: write every dirty line back (for handoff points)."""
        for set_index, bucket in enumerate(self._sets):
            for line in bucket:
                if line.dirty:
                    yield from self._write_back(set_index, line)
                    line.dirty = False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedMemory:
    """Byte-addressable view of a remote region through a cache.

    This is what "replace the SPM with caches" looks like to software:
    plain loads/stores whose misses transparently become DTU transfers.
    """

    def __init__(self, env, mem_gate, cache_bytes: int = 8 * 1024,
                 ways: int = 4):
        self.cache = Cache(
            env.sim,
            backend_read=mem_gate.read,
            backend_write=mem_gate.write,
            size_bytes=cache_bytes,
            ways=ways,
        )

    def load(self, address: int, size: int):
        """Generator: read bytes."""
        return (yield from self.cache.read(address, size))

    def store(self, address: int, data: bytes):
        """Generator: write bytes."""
        return (yield from self.cache.write(address, data))

    def flush(self):
        """Generator: push dirty state to the backing memory."""
        yield from self.cache.flush()
