"""Processing elements: core + scratchpad + DTU at one NoC node."""

from __future__ import annotations

import typing

from repro import params
from repro.dtu.dtu import DTU
from repro.hw.core import Core, CoreType
from repro.hw.spm import Scratchpad

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.sim import Simulator
    from repro.sim.process import Process


class ProcessingElement:
    """One PE: "the combination of core, local memory ... and DTU"."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: int,
        core_type: CoreType,
        spm_code_bytes: int = params.SPM_CODE_BYTES,
        spm_data_bytes: int = params.SPM_DATA_BYTES,
        ep_count: int = params.DTU_ENDPOINTS,
    ):
        self.sim = sim
        self.node = node
        self.core = Core(core_type)
        self.spm_code = Scratchpad(spm_code_bytes, name=f"pe{node}.code")
        self.spm_data = Scratchpad(spm_data_bytes, name=f"pe{node}.data")
        self.dtu = DTU(sim, network, node, self.spm_data, ep_count=ep_count)
        # The DTU can report the core's halted bit (the kernel watchdog's
        # "probe" configuration operation) — the DTU is separate hardware
        # and keeps answering even when the core is dead.
        self.dtu.status_source = self
        #: set when the core has suffered a permanent fault (fail-stop).
        self.failed = False
        #: the software currently occupying this PE (None when free).
        self.occupant: "Process | None" = None
        #: set while a kernel has claimed the PE for a VPE that has not
        #: started yet (so concurrent creates cannot double-book it).
        self.reserved = False
        #: simple bump allocator over the data SPM for software buffers.
        self._alloc_next = 0

    @property
    def busy(self) -> bool:
        """Whether software occupies this PE or a kernel reserved it."""
        return self.reserved or (self.occupant is not None and self.occupant.alive)

    def reserve(self) -> None:
        """Claim a free PE for a VPE that will start later."""
        if self.busy:
            raise RuntimeError(f"PE {self.node} is not free")
        self.reserved = True

    def run(self, generator, name: str | None = None) -> "Process":
        """Start bare-metal software on this PE (one occupant at a time)."""
        if self.occupant is not None and self.occupant.alive:
            raise RuntimeError(f"PE {self.node} is already running software")
        process = self.sim.process(generator, name or f"pe{self.node}.sw")
        self.occupant = process
        self.reserved = False
        return process

    def fail(self, cause: object = "pe-fault") -> None:
        """Fail-stop the core: it halts permanently, mid-instruction.

        The DTU keeps running (it is separate hardware on the same
        node), which is what lets the kernel detect the failure via a
        remote probe and recover.  The occupant process is interrupted
        so the simulation does not keep executing dead software.
        """
        self.failed = True
        occupant = self.occupant
        if occupant is not None and occupant.alive:
            try:
                occupant.interrupt(cause)
            except RuntimeError:
                # The occupant is not blocked yet (it was created this
                # very cycle); halt it as soon as it first blocks.
                self.sim.call_soon(
                    lambda _: occupant.interrupt(cause)
                    if occupant.alive else None
                )

    def core_alive(self) -> bool:
        """The halted bit the DTU's "probe" operation reports."""
        return not self.failed

    def release(self) -> None:
        """Mark the PE free again (after its occupant finished or was reset)."""
        self.occupant = None
        self.reserved = False
        self._alloc_next = 0

    def alloc_buffer(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of data SPM; returns the start address.

        A bump allocator is enough: the SPM is wiped when a new
        application is loaded onto the PE.
        """
        if nbytes < 0:
            raise ValueError("negative buffer size")
        address = self._alloc_next
        if address + nbytes > self.spm_data.size:
            raise MemoryError(
                f"PE {self.node}: SPM exhausted "
                f"({address + nbytes} > {self.spm_data.size})"
            )
        self._alloc_next = address + nbytes
        return address

    def compute(self, cycles: int):
        """An event representing ``cycles`` of application computation."""
        return self.sim.delay(cycles, tag="app")

    def compute_op(self, operation: str, nbytes: int):
        """Application computation priced by this PE's core type."""
        return self.compute(self.core.cycles_for(operation, nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PE node={self.node} core={self.core.type.name}>"
