"""Hardware platform models: cores, memories, processing elements.

A processing element (PE) is "the combination of core, local memory
(scratchpad or cache) and DTU" (paper Section 2.2).  The platform
assembles PEs and one DRAM module on the NoC, mirroring the simulated
Tomahawk configuration of Section 4.1.
"""

from repro.hw.spm import Scratchpad
from repro.hw.dram import Dram, DramModule
from repro.hw.core import Core, CoreType, CORE_TYPES
from repro.hw.pe import ProcessingElement
from repro.hw.platform import Platform, PlatformConfig

__all__ = [
    "Scratchpad",
    "Dram",
    "DramModule",
    "Core",
    "CoreType",
    "CORE_TYPES",
    "ProcessingElement",
    "Platform",
    "PlatformConfig",
]
