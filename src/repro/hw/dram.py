"""The DRAM module: one shared off-PE memory on the NoC.

Tomahawk "consists of multiple PEs, connected over a network-on-chip
and one DRAM module" (Section 4.1).  The module answers the DTUs'
RDMA request packets; software never touches it directly.
"""

from __future__ import annotations

import typing

from repro import params
from repro.hw.spm import SparseMemory
from repro.noc.packet import Packet

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.sim import Simulator


class Dram(SparseMemory):
    """Byte-accurate DRAM array.

    Backed sparsely (:class:`~repro.hw.spm.SparseMemory`): the Figure 6
    configurations give a 40-PE system hundreds of MiB of DRAM of which
    only the filesystem image is ever touched, and zero-filling a dense
    array at every system boot dominated benchmark wall time.
    """

    def __init__(self, size: int):
        super().__init__(size, name="dram")


class DramModule:
    """NoC endpoint serving memory request packets against a :class:`Dram`.

    - ``mem_read``:  payload ``(requester_ep_transfer_id, address, length)``;
      responds with a ``mem_resp`` packet carrying the data bytes.
    - ``mem_write``: payload ``(transfer_id, address, data)``; applies the
      write after :data:`params.DRAM_ACCESS_CYCLES` and acks.
    """

    def __init__(self, sim: "Simulator", network: "Network", node: int, size: int,
                 access_cycles: int = params.DRAM_ACCESS_CYCLES):
        self.sim = sim
        self.network = network
        self.node = node
        self.memory = Dram(size)
        self.access_cycles = access_cycles
        self.reads = 0
        self.writes = 0
        network.attach(node, self.handle_packet)

    def handle_packet(self, packet: Packet) -> None:
        """NoC delivery entry point."""
        if packet.corrupted:
            # Link-level CRC failure: discard; a reliable DTU re-issues
            # the request when no response arrives.
            return
        if packet.kind == "mem_read":
            transfer_id, address, length = packet.payload
            self.reads += 1
            data = self.memory.read(address, length)
            self.sim.schedule(
                self.access_cycles, self._respond, (packet.source, transfer_id, data)
            )
        elif packet.kind == "mem_write":
            transfer_id, address, data = packet.payload
            self.writes += 1
            self.memory.write(address, bytes(data))
            self.sim.schedule(
                self.access_cycles, self._respond, (packet.source, transfer_id, b"")
            )
        else:
            raise RuntimeError(f"DRAM module got unexpected packet {packet!r}")

    def _respond(self, request: tuple) -> None:
        requester, transfer_id, data = request
        self.network.send(
            Packet(
                source=self.node,
                destination=requester,
                kind="mem_resp",
                size_bytes=len(data),
                payload=(transfer_id, data),
            )
        )
