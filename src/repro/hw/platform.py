"""Platform assembly: the simulated Tomahawk-like chip.

A platform is a mesh NoC with one DRAM module and a set of PEs whose
core types are given by a :class:`PlatformConfig`.  Node numbering is
row-major; the DRAM module occupies the last node, PEs fill the mesh
from node 0.
"""

from __future__ import annotations

import dataclasses

from repro import params
from repro.hw.core import CORE_TYPES
from repro.hw.dram import DramModule
from repro.hw.pe import ProcessingElement
from repro.noc.network import Network
from repro.noc.topology import MeshTopology
from repro.sim import Simulator


@dataclasses.dataclass
class PlatformConfig:
    """Shape of the simulated chip."""

    #: core type name per PE, in node order (see :data:`repro.hw.core.CORE_TYPES`).
    pe_types: list
    mesh_width: int = params.DEFAULT_MESH_WIDTH
    mesh_height: int = params.DEFAULT_MESH_HEIGHT
    dram_bytes: int = 64 * 1024 * 1024
    noc_hop_cycles: int = params.NOC_HOP_CYCLES
    noc_bytes_per_cycle: int = params.NOC_BYTES_PER_CYCLE
    spm_data_bytes: int = params.SPM_DATA_BYTES
    ep_count: int = params.DTU_ENDPOINTS

    def __post_init__(self):
        capacity = self.mesh_width * self.mesh_height - 1  # one node for DRAM
        if len(self.pe_types) > capacity:
            raise ValueError(
                f"{len(self.pe_types)} PEs do not fit a "
                f"{self.mesh_width}x{self.mesh_height} mesh with one DRAM node"
            )
        unknown = [t for t in self.pe_types if t not in CORE_TYPES]
        if unknown:
            raise ValueError(f"unknown core types: {unknown}")

    @classmethod
    def homogeneous(cls, pe_count: int, core_type: str = "xtensa", **kwargs):
        """A platform of ``pe_count`` identical PEs."""
        return cls(pe_types=[core_type] * pe_count, **kwargs)


class Platform:
    """The assembled chip: simulator, NoC, PEs, DRAM.

    With a :class:`~repro.sim.shard.ShardPlan` installed the single
    ``Simulator`` becomes a :class:`~repro.sim.shard.ShardedSimulator`:
    each hardware component schedules into its own node's shard queue,
    and NoC deliveries cross shard boundaries through the explicit
    injection seam on :class:`~repro.noc.network.Network`.
    """

    def __init__(self, config: PlatformConfig, shard_plan=None):
        self.config = config
        self.topology = MeshTopology(config.mesh_width, config.mesh_height)
        self.shard_plan = shard_plan
        if shard_plan is None:
            self.sim = Simulator()
        else:
            from repro.sim.shard import ShardedSimulator

            if len(shard_plan.node_to_shard) != self.topology.node_count:
                raise ValueError(
                    f"shard plan covers {len(shard_plan.node_to_shard)} "
                    f"nodes, mesh has {self.topology.node_count}"
                )
            self.sim = ShardedSimulator(shard_plan)
        self.network = Network(
            self.sim,
            self.topology,
            hop_cycles=config.noc_hop_cycles,
            bytes_per_cycle=config.noc_bytes_per_cycle,
        )
        if shard_plan is not None:
            self.network.shards = self.sim
        self.dram_node = self.topology.node_count - 1
        self.dram = DramModule(
            self.sim_for(self.dram_node), self.network, self.dram_node,
            config.dram_bytes
        )
        self.pes: list[ProcessingElement] = [
            ProcessingElement(
                self.sim_for(node),
                self.network,
                node,
                CORE_TYPES[type_name],
                spm_data_bytes=config.spm_data_bytes,
                ep_count=config.ep_count,
            )
            for node, type_name in enumerate(config.pe_types)
        ]

    def sim_for(self, node: int):
        """The simulator a component at ``node`` should schedule into:
        the node's shard member under a shard plan, else the one
        simulator.  Clocks agree either way."""
        if self.shard_plan is None:
            return self.sim
        return self.sim.member_for(node)

    def pe(self, node: int) -> ProcessingElement:
        """The PE at ``node`` (which must not be the DRAM node)."""
        if not (0 <= node < len(self.pes)):
            raise ValueError(f"no PE at node {node}")
        return self.pes[node]

    def find_free_pe(self, core_type: str | None = None,
                     nodes=None) -> ProcessingElement | None:
        """First unoccupied PE, optionally of a requested core type.

        This is the kernel's PE-allocation primitive: "the application
        can request a specific type of PE — for example a specific
        accelerator" (Section 4.5.5).  ``nodes`` restricts the search to
        a set of node ids — each kernel of a partitioned mesh only
        allocates PEs inside its own domain.
        """
        for pe in self.pes:
            if pe.busy or pe.failed:
                continue
            if nodes is not None and pe.node not in nodes:
                continue
            if core_type is not None and pe.core.type.name != core_type:
                continue
            return pe
        return None

    def enable_reliable_messaging(self) -> None:
        """Switch every DTU on the chip to reliable delivery
        (acknowledged, CRC-checked, retransmitted — see
        :meth:`repro.dtu.dtu.DTU.enable_reliability`)."""
        for pe in self.pes:
            pe.dtu.enable_reliability()

    @classmethod
    def build(cls, pe_count: int = 8, accelerators: dict | None = None,
              shard_plan=None, **config_kwargs) -> "Platform":
        """Convenience constructor: ``pe_count`` Xtensa PEs plus optional
        accelerators given as ``{"fft-accel": 1, ...}``."""
        types = ["xtensa"] * pe_count
        for name, count in (accelerators or {}).items():
            types.extend([name] * count)
        return cls(PlatformConfig(pe_types=types, **config_kwargs),
                   shard_plan=shard_plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Platform {self.config.mesh_width}x{self.config.mesh_height} "
            f"{len(self.pes)} PEs>"
        )
