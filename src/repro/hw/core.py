"""Core models.

The DTU abstracts from core heterogeneity; for the simulation, cores
differ only in which computations they accelerate.  A core type maps
named operations to cycle costs — the FFT accelerator executes the
``fft`` operation ~30x faster than a general-purpose core (paper
Section 5.8), everything else at parity.
"""

from __future__ import annotations

import dataclasses
import math

from repro import params


@dataclasses.dataclass(frozen=True)
class CoreType:
    """A kind of core: its name and per-operation cost densities."""

    name: str
    description: str = ""
    #: cycles per byte for named operations this core accelerates or runs
    #: in software; operations not listed cannot run on this core unless
    #: ``general_purpose`` is set.
    op_cycles_per_byte: dict = dataclasses.field(default_factory=dict)
    general_purpose: bool = True

    def supports(self, operation: str) -> bool:
        """Whether this core can execute ``operation`` at all."""
        return self.general_purpose or operation in self.op_cycles_per_byte

    def cycles_for(self, operation: str, nbytes: int) -> int:
        """Cycle cost of running ``operation`` over ``nbytes`` here."""
        if operation in self.op_cycles_per_byte:
            density = self.op_cycles_per_byte[operation]
        elif self.general_purpose:
            raise KeyError(
                f"core type {self.name!r} has no cost entry for {operation!r}"
            )
        else:
            raise ValueError(
                f"core type {self.name!r} cannot execute {operation!r}"
            )
        return max(1, math.ceil(density * nbytes))


#: General-purpose Xtensa-like RISC core (the default PE of Tomahawk).
XTENSA = CoreType(
    name="xtensa",
    description="general-purpose Xtensa-like RISC core",
    op_cycles_per_byte={"fft": params.FFT_SW_CYCLES_PER_BYTE},
)

#: Core with FFT instruction extensions (Section 5.8): ~30x faster FFT.
FFT_ACCEL = CoreType(
    name="fft-accel",
    description="Xtensa core with FFT instruction extensions",
    op_cycles_per_byte={
        "fft": params.FFT_SW_CYCLES_PER_BYTE / params.FFT_ACCEL_SPEEDUP
    },
)

#: A fixed-function accelerator that can run *only* the FFT (no kernel,
#: no general-purpose software) — the kind of PE NoC-level isolation
#: exists to support.
FFT_ASIC = CoreType(
    name="fft-asic",
    description="fixed-function FFT circuit",
    op_cycles_per_byte={
        "fft": params.FFT_SW_CYCLES_PER_BYTE / params.FFT_ACCEL_SPEEDUP
    },
    general_purpose=False,
)

CORE_TYPES: dict[str, CoreType] = {
    core.name: core for core in (XTENSA, FFT_ACCEL, FFT_ASIC)
}


class Core:
    """An instance of a :class:`CoreType` inside one PE."""

    def __init__(self, core_type: CoreType):
        self.type = core_type
        self.busy_cycles = 0

    def cycles_for(self, operation: str, nbytes: int) -> int:
        """Cost of ``operation`` on this core; also accumulates busy time."""
        cycles = self.type.cycles_for(operation, nbytes)
        self.busy_cycles += cycles
        return cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.type.name}>"
