"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective over the telemetry plane's
epoch series — either a **latency** objective ("at least ``target`` of
``series`` samples at or below ``threshold`` cycles") or an
**availability** objective ("at most ``1 - target`` of ``total_series``
events land in ``bad_series``").  The :class:`SloMonitor` evaluates it
in-sim, at every telemetry epoch close, with the standard burn-rate
construction:

    error budget = 1 - target
    burn rate over a window = (bad events / total events) / budget

A burn rate of 1.0 consumes the budget exactly at the sustainable
pace; a burn of 10 exhausts it ten times too fast.  Each alert rule
pairs a *short* and a *long* sliding window (both in epochs) with one
factor: the alert **fires** when both windows burn at or above the
factor — the long window proves the problem is real, the short window
proves it is still happening — and resolves when either drops below.
Fired alerts are recorded as Observer instants and on the monitor's
``alerts`` list, where the control plane consumes them: the autoscaler
(``policy="slo"``) scales up on new page alerts, and kernel failover
verdicts are annotated with the alert that preceded them.

Everything is a pure function of closed telemetry epochs, so two runs
of the same simulation alert on the same cycle.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer

#: default alert rules: (severity, short window, long window, factor),
#: windows in telemetry epochs.  The page rule catches fast burns (a
#: fault window, a dead domain); the ticket rule catches slow leaks.
DEFAULT_WINDOWS = (
    ("page", 2, 12, 6.0),
    ("ticket", 6, 36, 2.0),
)


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """One objective.  Exactly one of the two modes must be set:

    - latency: ``series`` (a quantile series) + ``threshold`` — a
      sample is bad when it exceeds ``threshold`` cycles;
    - availability: ``bad_series`` / ``total_series`` (counter series).
    """

    name: str
    target: float
    series: str = ""
    threshold: int = 0
    bad_series: str = ""
    total_series: str = ""

    def __post_init__(self):
        if not (0.0 < self.target < 1.0):
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        latency = bool(self.series)
        availability = bool(self.bad_series) and bool(self.total_series)
        if latency == availability:
            raise ValueError(
                "an SloSpec needs either series+threshold (latency) or "
                "bad_series+total_series (availability), not both/neither"
            )

    @property
    def kind(self) -> str:
        return "latency" if self.series else "availability"

    def describe(self) -> str:
        if self.kind == "latency":
            return (f"{self.target:.2%} of {self.series} "
                    f"<= {self.threshold:,} cycles")
        return (f"{self.target:.2%} of {self.total_series} "
                f"not in {self.bad_series}")


class SloMonitor:
    """Evaluates one spec at every telemetry epoch close."""

    def __init__(self, observer: "Observer", spec: SloSpec,
                 windows=DEFAULT_WINDOWS):
        if observer.telemetry is None:
            raise RuntimeError("enable telemetry before adding SLOs")
        self.observer = observer
        self.telemetry = observer.telemetry
        self.spec = spec
        self.windows = tuple(windows)
        self.budget = 1.0 - spec.target
        if spec.kind == "latency":
            self.bad_series = self.telemetry.watch_threshold(
                spec.series, spec.threshold
            )
        else:
            self.bad_series = spec.bad_series
        #: per closed epoch: (epoch_index, end_cycle, epoch_bad,
        #: epoch_total, {severity: (short_burn, long_burn)},
        #: (active severities...)).
        self.timeline: list[tuple] = []
        #: (end_cycle, severity, "fire" | "resolve", short, long).
        self.alerts: list[tuple] = []
        #: most recent fired alert: (end_cycle, slo name, severity).
        self.last_fired: tuple | None = None
        self._active: dict[str, bool] = {}
        self.telemetry.on_epoch_close.append(self._on_epoch_close)
        observer.slo_monitors.append(self)

    # -- reading the series -------------------------------------------

    def _window_bad_total(self, index: int, width: int) -> tuple[int, int]:
        bad = self.telemetry.window_sum(self.bad_series, index, width)
        if self.spec.kind == "latency":
            first = index - width + 1
            total = sum(
                hist.count
                for point_index, hist in self.telemetry.points(
                    self.spec.series
                )
                if first <= point_index <= index
            )
        else:
            total = self.telemetry.window_sum(
                self.spec.total_series, index, width
            )
        return bad, total

    def burn(self, index: int, width: int) -> float:
        """Burn rate over the window ending at epoch ``index``."""
        bad, total = self._window_bad_total(index, width)
        if not total:
            return 0.0
        return (bad / total) / self.budget

    # -- evaluation ----------------------------------------------------

    def _on_epoch_close(self, index: int, end_cycle: int) -> None:
        epoch_bad, epoch_total = self._window_bad_total(index, 1)
        burns: dict[str, tuple[float, float]] = {}
        active = []
        for severity, short_window, long_window, factor in self.windows:
            short_burn = self.burn(index, short_window)
            long_burn = self.burn(index, long_window)
            burns[severity] = (short_burn, long_burn)
            firing = short_burn >= factor and long_burn >= factor
            was_firing = self._active.get(severity, False)
            if firing and not was_firing:
                self.alerts.append(
                    (end_cycle, severity, "fire", short_burn, long_burn)
                )
                self.last_fired = (end_cycle, self.spec.name, severity)
                self.observer.instant(
                    f"slo_{severity}", "slo", -1, slo=self.spec.name,
                    epoch=index, short_burn=round(short_burn, 2),
                    long_burn=round(long_burn, 2),
                )
            elif was_firing and not firing:
                self.alerts.append(
                    (end_cycle, severity, "resolve", short_burn,
                     long_burn)
                )
                self.observer.instant(
                    f"slo_{severity}_resolved", "slo", -1,
                    slo=self.spec.name, epoch=index,
                )
            self._active[severity] = firing
            if firing:
                active.append(severity)
        self.timeline.append(
            (index, end_cycle, epoch_bad, epoch_total, burns,
             tuple(active))
        )

    # -- consumption ---------------------------------------------------

    @property
    def breached(self) -> bool:
        """Whether any alert ever fired."""
        return any(state == "fire" for _, _, state, _, _ in self.alerts)

    def fired_since(self, cursor: int,
                    severity: str | None = None) -> tuple[int, list]:
        """New fire alerts past ``cursor``; returns (new cursor, fires).

        How the control plane polls: keep the returned cursor, pass it
        back next epoch.
        """
        fires = [
            alert for alert in self.alerts[cursor:]
            if alert[2] == "fire"
            and (severity is None or alert[1] == severity)
        ]
        return len(self.alerts), fires

    def verdict(self) -> dict:
        """End-of-run summary for reports."""
        bad = total = 0
        for _, _, epoch_bad, epoch_total, _, _ in self.timeline:
            bad += epoch_bad
            total += epoch_total
        worst = 0.0
        for _, _, _, _, burns, _ in self.timeline:
            for short_burn, long_burn in burns.values():
                worst = max(worst, short_burn, long_burn)
        return {
            "name": self.spec.name,
            "objective": self.spec.describe(),
            "bad": bad,
            "total": total,
            "good_fraction": 1.0 - (bad / total) if total else 1.0,
            "worst_burn": worst,
            "alerts": sum(
                1 for _, _, state, _, _ in self.alerts if state == "fire"
            ),
            "breached": self.breached,
        }


def last_alert_before(observer: "Observer", cycle: int) -> tuple | None:
    """The most recent SLO alert fired at or before ``cycle``, across
    every monitor: ``(end_cycle, slo name, severity)`` or None.  This
    is the annotation the kernel attaches to failover verdicts."""
    best = None
    for monitor in observer.slo_monitors:
        for end_cycle, severity, state, _, _ in monitor.alerts:
            if state == "fire" and end_cycle <= cycle:
                if best is None or end_cycle > best[0]:
                    best = (end_cycle, monitor.spec.name, severity)
    return best
