"""Deterministic metric primitives: log2-bucket histograms.

Buckets are fixed powers of two, so two runs of the same simulation
produce byte-identical histograms — no wall-clock, no adaptive
resizing.  Bucket 0 holds the value 0; bucket ``b`` (b >= 1) holds the
half-open range ``[2^(b-1), 2^b)``.  64 buckets cover every cycle
count a simulation can reasonably produce.
"""

from __future__ import annotations

BUCKET_COUNT = 64


class Histogram:
    """A log2-bucket histogram of non-negative integer samples."""

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        self.counts = [0] * BUCKET_COUNT
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, value: int) -> None:
        """Record one sample."""
        value = int(value)
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.counts[min(value.bit_length(), BUCKET_COUNT - 1)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """Half-open ``[low, high)`` range of bucket ``index``."""
        if not (0 <= index < BUCKET_COUNT):
            raise ValueError(f"bucket {index} out of range")
        if index == 0:
            return (0, 1)
        return (1 << (index - 1), 1 << index)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given quantile.

        Deterministic and conservative: the true value is strictly below
        the returned bound.  Returns 0 on an empty histogram.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0
        threshold = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if bucket_count and seen >= threshold:
                return self.bucket_bounds(index)[1]
        return self.bucket_bounds(BUCKET_COUNT - 1)[1]  # pragma: no cover

    def rows(self) -> list[tuple[str, int, str]]:
        """(range, count, cumulative%) rows for non-empty buckets."""
        out = []
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            seen += bucket_count
            low, high = self.bucket_bounds(index)
            out.append(
                (f"[{low:,}, {high:,})", bucket_count,
                 f"{seen / self.count:.1%}")
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name!r} n={self.count} "
                f"min={self.min} max={self.max}>")
