"""Deterministic metric primitives: log2-bucket histograms.

Buckets are fixed powers of two, so two runs of the same simulation
produce byte-identical histograms — no wall-clock, no adaptive
resizing.  Bucket 0 holds the value 0; bucket ``b`` (b >= 1) holds the
half-open range ``[2^(b-1), 2^b)``.  64 buckets cover every cycle
count a simulation can reasonably produce.

For tail quantiles (p99, p999) the 2x bucket granularity is too
coarse: every sample in ``[2^(b-1), 2^b)`` reports the same bound.
``Histogram(precision=k)`` opts into HDR-style *log-linear
sub-buckets*: each power-of-two range is split into ``2^k`` equal
linear sub-buckets (values below ``2^(k+1)`` are counted exactly), so
quantiles carry a relative error below ``2^-k`` while staying fully
deterministic — sub-bucket edges are pure functions of the value.
The default (``precision=None``) keeps the original behaviour bit for
bit.
"""

from __future__ import annotations

BUCKET_COUNT = 64


class Histogram:
    """A log2-bucket histogram of non-negative integer samples."""

    __slots__ = ("name", "counts", "count", "total", "min", "max",
                 "precision", "fine")

    def __init__(self, name: str = "", precision: int | None = None):
        self.name = name
        self.counts = [0] * BUCKET_COUNT
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        if precision is not None and precision < 1:
            raise ValueError(f"precision must be >= 1, got {precision}")
        self.precision = precision
        #: sub-bucket lower bound -> count (only with ``precision``).
        self.fine: dict[int, int] | None = (
            {} if precision is not None else None
        )

    def observe(self, value: int) -> None:
        """Record one sample."""
        value = int(value)
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.counts[min(value.bit_length(), BUCKET_COUNT - 1)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.fine is not None:
            low, _high = self.fine_bounds(value)
            self.fine[low] = self.fine.get(low, 0) + 1

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """Half-open ``[low, high)`` range of bucket ``index``."""
        if not (0 <= index < BUCKET_COUNT):
            raise ValueError(f"bucket {index} out of range")
        if index == 0:
            return (0, 1)
        return (1 << (index - 1), 1 << index)

    def fine_bounds(self, value: int) -> tuple[int, int]:
        """Half-open ``[low, high)`` log-linear sub-bucket of ``value``.

        Requires ``precision``.  Values with at most ``precision + 1``
        significant bits are counted exactly (width-1 sub-buckets);
        above that, the power-of-two range ``[2^e, 2^(e+1))`` is split
        into ``2^precision`` sub-buckets of width ``2^(e - precision)``.
        """
        if self.precision is None:
            raise ValueError("fine_bounds requires a precision histogram")
        shift = value.bit_length() - 1 - self.precision
        if shift <= 0:
            return (value, value + 1)
        low = (value >> shift) << shift
        return (low, low + (1 << shift))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given quantile.

        Deterministic and conservative: the true value is strictly below
        the returned bound.  Returns 0 on an empty histogram.  With
        ``precision`` set, the bound comes from the log-linear
        sub-buckets (relative error below ``2^-precision``) instead of
        the 2x-granularity log2 buckets.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0
        threshold = fraction * self.count
        seen = 0
        if self.fine is not None:
            for low in sorted(self.fine):
                seen += self.fine[low]
                if seen >= threshold:
                    shift = low.bit_length() - 1 - self.precision
                    return low + (1 << shift if shift > 0 else 1)
            raise AssertionError("unreachable")  # pragma: no cover
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if bucket_count and seen >= threshold:
                return self.bucket_bounds(index)[1]
        return self.bucket_bounds(BUCKET_COUNT - 1)[1]  # pragma: no cover

    def rows(self) -> list[tuple[str, int, str]]:
        """(range, count, cumulative%) rows for non-empty buckets."""
        out = []
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            seen += bucket_count
            low, high = self.bucket_bounds(index)
            out.append(
                (f"[{low:,}, {high:,})", bucket_count,
                 f"{seen / self.count:.1%}")
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name!r} n={self.count} "
                f"min={self.min} max={self.max}>")
