"""Deterministic metric primitives: log2-bucket histograms.

Buckets are fixed powers of two, so two runs of the same simulation
produce byte-identical histograms — no wall-clock, no adaptive
resizing.  Bucket 0 holds the value 0; bucket ``b`` (b >= 1) holds the
half-open range ``[2^(b-1), 2^b)``.  64 buckets cover every cycle
count a simulation can reasonably produce.

For tail quantiles (p99, p999) the 2x bucket granularity is too
coarse: every sample in ``[2^(b-1), 2^b)`` reports the same bound.
``Histogram(precision=k)`` opts into HDR-style *log-linear
sub-buckets*: each power-of-two range is split into ``2^k`` equal
linear sub-buckets (values below ``2^(k+1)`` are counted exactly), so
quantiles carry a relative error below ``2^-k`` while staying fully
deterministic — sub-bucket edges are pure functions of the value.
The default (``precision=None``) keeps the original behaviour bit for
bit.
"""

from __future__ import annotations

from fractions import Fraction

BUCKET_COUNT = 64

#: quantile fractions are interpreted as decimals with at most this
#: denominator (0.7 means 7/10, not the nearest binary float).
_FRACTION_DENOMINATOR = 10**9


class Histogram:
    """A log2-bucket histogram of non-negative integer samples."""

    __slots__ = ("name", "counts", "count", "total", "min", "max",
                 "precision", "fine")

    def __init__(self, name: str = "", precision: int | None = None):
        self.name = name
        self.counts = [0] * BUCKET_COUNT
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        if precision is not None and precision < 1:
            raise ValueError(f"precision must be >= 1, got {precision}")
        self.precision = precision
        #: sub-bucket lower bound -> count (only with ``precision``).
        self.fine: dict[int, int] | None = (
            {} if precision is not None else None
        )

    def observe(self, value: int) -> None:
        """Record one sample."""
        value = int(value)
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.counts[min(value.bit_length(), BUCKET_COUNT - 1)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.fine is not None:
            low, _high = self.fine_bounds(value)
            self.fine[low] = self.fine.get(low, 0) + 1

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """Half-open ``[low, high)`` range of bucket ``index``."""
        if not (0 <= index < BUCKET_COUNT):
            raise ValueError(f"bucket {index} out of range")
        if index == 0:
            return (0, 1)
        return (1 << (index - 1), 1 << index)

    def fine_bounds(self, value: int) -> tuple[int, int]:
        """Half-open ``[low, high)`` log-linear sub-bucket of ``value``.

        Requires ``precision``.  Values with at most ``precision + 1``
        significant bits are counted exactly (width-1 sub-buckets);
        above that, the power-of-two range ``[2^e, 2^(e+1))`` is split
        into ``2^precision`` sub-buckets of width ``2^(e - precision)``.
        """
        if self.precision is None:
            raise ValueError("fine_bounds requires a precision histogram")
        shift = value.bit_length() - 1 - self.precision
        if shift <= 0:
            return (value, value + 1)
        low = (value >> shift) << shift
        return (low, low + (1 << shift))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given quantile.

        Deterministic and conservative: the true value is strictly below
        the returned bound.  Edge cases are defined: an empty histogram
        returns 0; ``fraction=0.0`` returns the bound of the smallest
        sample's bucket; ``fraction=1.0`` the bound of the largest; a
        single-sample histogram returns that sample's bound for every
        fraction.  The fraction is read as a decimal — ``0.7`` selects
        rank ``ceil(0.7 * count)`` exactly, never the neighbouring rank
        that binary float rounding would pick.  With ``precision`` set,
        the bound comes from the log-linear sub-buckets (relative error
        below ``2^-precision``) instead of the 2x-granularity log2
        buckets.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0
        exact = Fraction(fraction).limit_denominator(_FRACTION_DENOMINATOR)
        rank = -(-(exact.numerator * self.count) // exact.denominator)
        seen = 0
        if self.fine is not None:
            for low in sorted(self.fine):
                seen += self.fine[low]
                if seen >= rank:
                    shift = low.bit_length() - 1 - self.precision
                    return low + (1 << shift if shift > 0 else 1)
            raise AssertionError("unreachable")  # pragma: no cover
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if bucket_count and seen >= rank:
                if index == BUCKET_COUNT - 1:
                    # the top bucket absorbs every sample too large for
                    # its nominal [2^62, 2^63) range, so its static
                    # bound is not conservative — the observed max is.
                    return self.max + 1
                return self.bucket_bounds(index)[1]
        return self.bucket_bounds(BUCKET_COUNT - 1)[1]  # pragma: no cover

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram.

        Merging shard-local histograms is exact: the result is bit for
        bit the histogram a single simulator would have produced from
        the union of the samples (same buckets, same sub-buckets, same
        quantile bounds).  Both sides must share the same ``precision``.
        """
        if other.precision != self.precision:
            raise ValueError(
                f"cannot merge precision={other.precision} histogram "
                f"into precision={self.precision}"
            )
        for index, bucket_count in enumerate(other.counts):
            if bucket_count:
                self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or
                                      other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or
                                      other.max > self.max):
            self.max = other.max
        if self.fine is not None and other.fine:
            for low, fine_count in other.fine.items():
                self.fine[low] = self.fine.get(low, 0) + fine_count

    def snapshot(self) -> dict:
        """A JSON-safe, mergeable snapshot of this histogram.

        Sparse and deterministic: only non-empty buckets appear, in
        ascending order.  ``from_snapshot`` round-trips exactly.
        """
        snap = {
            "name": self.name,
            "precision": self.precision,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "counts": [
                [index, bucket_count]
                for index, bucket_count in enumerate(self.counts)
                if bucket_count
            ],
        }
        if self.fine is not None:
            snap["fine"] = [
                [low, self.fine[low]] for low in sorted(self.fine)
            ]
        return snap

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output."""
        hist = cls(snap["name"], precision=snap["precision"])
        for index, bucket_count in snap["counts"]:
            hist.counts[index] = bucket_count
        hist.count = snap["count"]
        hist.total = snap["total"]
        hist.min = snap["min"]
        hist.max = snap["max"]
        if hist.fine is not None:
            for low, fine_count in snap.get("fine", ()):
                hist.fine[low] = fine_count
        return hist

    def rows(self) -> list[tuple[str, int, str]]:
        """(range, count, cumulative%) rows for non-empty buckets."""
        out = []
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            seen += bucket_count
            low, high = self.bucket_bounds(index)
            out.append(
                (f"[{low:,}, {high:,})", bucket_count,
                 f"{seen / self.count:.1%}")
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name!r} n={self.count} "
                f"min={self.min} max={self.max}>")
