"""Chrome trace-event JSON export.

Maps the Observer's spans and instants onto the trace-event format that
Perfetto and ``chrome://tracing`` load: every PE (node) becomes a
"process" (``pid``), every category becomes a "thread" (``tid``) inside
it, spans become complete events (``ph: "X"`` with ``ts``/``dur``), and
instants become instant events (``ph: "i"``).  Timestamps are simulated
cycles, exported one cycle per microsecond (the viewer's native unit);
``metadata.clock`` records that.

Processes and threads are labelled with ``process_name`` /
``thread_name`` metadata events: the process name comes from the
Observer's node labels (kernel domain, app, service, NIC roles set by
``M3System``) with ``PE <n>`` as the fallback, and each category row is
named after itself so Perfetto shows roles instead of bare ids.

Causally-linked spans that cross a PE boundary additionally emit
**flow events** (``ph: "s"``/``"f"``): Perfetto draws an arrow from the
parent span (e.g. the DTU message span at the sender) to each child
recorded on another node (the receiver's handler span), making the
request's path across the chip visible in the UI.

With telemetry enabled (``observer.enable_telemetry()``), every closed
epoch of every series additionally becomes a **counter event**
(``ph: "C"``) so the time-series render as counter tracks in Perfetto
alongside the spans — quantile series chart their per-epoch p99.
Without telemetry the export is unchanged byte for byte (flush the
telemetry before exporting so the trailing partial epoch charts too).

The export is plain ``json.dump``-able data — no wall-clock, fully
deterministic, round-trips through ``json.loads``.
"""

from __future__ import annotations

import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer

#: pid used for events with no node attribution.
GLOBAL_PID = -1


def _flow_events(observer: "Observer") -> list[dict]:
    """Arrow pairs for causal parent->child links that cross nodes.

    Each cross-node edge becomes one ``"s"`` (start, at the parent) and
    one ``"f"`` (finish with ``bp: "e"``, binding to the enclosing
    slice, at the child).  The flow id is the child's span id — unique,
    since a span has exactly one incoming causal edge.  Timestamps are
    clamped into both slices so the viewer anchors the arrow correctly.
    """
    spans = [s for s in observer.spans if s.span_id >= 0]
    by_id = {s.span_id: s for s in spans}
    flows: list[dict] = []
    for span in spans:
        parent = by_id.get(span.parent_id)
        if parent is None or parent.node == span.node:
            continue
        common = {"cat": "causal", "name": "request", "id": span.span_id}
        flows.append({
            **common, "ph": "s",
            "ts": min(max(parent.begin, span.begin), parent.end),
            "pid": parent.node if parent.node >= 0 else GLOBAL_PID,
            "tid": parent.category,
        })
        flows.append({
            **common, "ph": "f", "bp": "e", "ts": span.begin,
            "pid": span.node if span.node >= 0 else GLOBAL_PID,
            "tid": span.category,
        })
    return flows


def _counter_events(observer: "Observer") -> list[dict]:
    """``ph: "C"`` counter samples from the telemetry plane's epochs.

    One event per closed epoch per series, stamped at the epoch's end
    cycle; Perfetto renders each series as a counter track.  Quantile
    series chart their per-epoch p99 bound.
    """
    telemetry = observer.telemetry
    events: list[dict] = []
    for name in telemetry.names():
        kind = telemetry.kinds[name]
        for index, value in telemetry.points(name):
            if kind == "quantile":
                value = value.percentile(0.99)
            events.append({
                "name": name,
                "cat": "telemetry",
                "ph": "C",
                "ts": telemetry.end_cycle(index),
                "pid": GLOBAL_PID,
                "tid": "telemetry",
                "args": {"value": value},
            })
    return events


def trace_events(observer: "Observer") -> list[dict]:
    """The Observer's spans/instants as trace-event dicts."""
    events: list[dict] = []
    seen_pids: dict[int, set] = {}
    for span in observer.spans:
        pid = span.node if span.node >= 0 else GLOBAL_PID
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.begin,
            "dur": span.end - span.begin,
            "pid": pid,
            "tid": span.category,
        }
        args = dict(span.args) if span.args else {}
        if span.trace_id >= 0:
            args["trace"] = span.trace_id
            args["span"] = span.span_id
            if span.parent_id >= 0:
                args["parent"] = span.parent_id
        if args:
            event["args"] = args
        events.append(event)
        seen_pids.setdefault(pid, set()).add(span.category)
    for instant in observer.instants:
        pid = instant.node if instant.node >= 0 else GLOBAL_PID
        event = {
            "name": instant.name,
            "cat": instant.category,
            "ph": "i",
            "ts": instant.time,
            "pid": pid,
            "tid": instant.category,
            "s": "p",  # process-scoped instant
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
        seen_pids.setdefault(pid, set()).add(instant.category)
    for flow in _flow_events(observer):
        events.append(flow)
        seen_pids.setdefault(flow["pid"], set()).add(flow["tid"])
    if observer.telemetry is not None:
        for counter in _counter_events(observer):
            events.append(counter)
            seen_pids.setdefault(counter["pid"], set()).add(
                counter["tid"]
            )
    events.sort(key=lambda e: (e["ts"], e["pid"], str(e["tid"]),
                               e["ph"], e["name"], e.get("id", -1)))
    metadata = []
    for pid in sorted(seen_pids):
        if pid == GLOBAL_PID:
            label = "simulator"
        else:
            label = observer.node_labels.get(pid, f"PE {pid}")
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": label},
        })
        for tid in sorted(seen_pids[pid]):
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tid},
            })
    return metadata + events


def to_chrome_trace(observer: "Observer") -> dict:
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": trace_events(observer),
        "displayTimeUnit": "ms",
        "metadata": {
            "clock": "simulated-cycles",
            "spans_dropped": observer.spans_dropped,
            "instants_dropped": observer.instants_dropped,
        },
    }


def export_chrome_trace(observer: "Observer", path) -> dict:
    """Write the trace to ``path``; returns the exported object."""
    trace = to_chrome_trace(observer)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
    return trace
