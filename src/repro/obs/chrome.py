"""Chrome trace-event JSON export.

Maps the Observer's spans and instants onto the trace-event format that
Perfetto and ``chrome://tracing`` load: every PE (node) becomes a
"process" (``pid``), every category becomes a "thread" (``tid``) inside
it, spans become complete events (``ph: "X"`` with ``ts``/``dur``), and
instants become instant events (``ph: "i"``).  Timestamps are simulated
cycles, exported one cycle per microsecond (the viewer's native unit);
``metadata.clock`` records that.

The export is plain ``json.dump``-able data — no wall-clock, fully
deterministic, round-trips through ``json.loads``.
"""

from __future__ import annotations

import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer

#: pid used for events with no node attribution.
GLOBAL_PID = -1


def trace_events(observer: "Observer") -> list[dict]:
    """The Observer's spans/instants as trace-event dicts."""
    events: list[dict] = []
    seen_pids: dict[int, set] = {}
    for span in observer.spans:
        pid = span.node if span.node >= 0 else GLOBAL_PID
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.begin,
            "dur": span.end - span.begin,
            "pid": pid,
            "tid": span.category,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
        seen_pids.setdefault(pid, set()).add(span.category)
    for instant in observer.instants:
        pid = instant.node if instant.node >= 0 else GLOBAL_PID
        event = {
            "name": instant.name,
            "cat": instant.category,
            "ph": "i",
            "ts": instant.time,
            "pid": pid,
            "tid": instant.category,
            "s": "p",  # process-scoped instant
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
        seen_pids.setdefault(pid, set()).add(instant.category)
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    metadata = []
    for pid in sorted(seen_pids):
        label = "simulator" if pid == GLOBAL_PID else f"PE {pid}"
        metadata.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": label},
        })
    return metadata + events


def to_chrome_trace(observer: "Observer") -> dict:
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": trace_events(observer),
        "displayTimeUnit": "ms",
        "metadata": {
            "clock": "simulated-cycles",
            "spans_dropped": observer.spans_dropped,
            "instants_dropped": observer.instants_dropped,
        },
    }


def export_chrome_trace(observer: "Observer", path) -> dict:
    """Write the trace to ``path``; returns the exported object."""
    trace = to_chrome_trace(observer)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
    return trace
