"""Prometheus-style text exposition of the Observer's metrics.

Renders the counters, gauges, and histograms one Observer collected in
the standard ``text/plain; version=0.0.4`` shape — ``# TYPE`` comments,
cumulative ``_bucket{le="..."}`` rows, ``_sum``/``_count`` — so the
simulated metrics can be diffed against, or loaded like, a real
scrape.  Output is fully deterministic: metric names are sanitized the
same way every time and everything is emitted in sorted order.

The exposition is a *point-in-time* scrape of the cumulative metrics;
the per-epoch history lives in :mod:`repro.obs.timeseries`.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer


def metric_name(name: str) -> str:
    """Sanitize an Observer metric name for the exposition format
    (``kv.kv0.requests`` -> ``kv_kv0_requests``)."""
    out = []
    for index, char in enumerate(name):
        if char.isalnum() or char in "_:":
            out.append(char)
        else:
            out.append("_")
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out) or "_"


def _format_value(value) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(observer: "Observer") -> str:
    """The full exposition for one Observer, ending in a newline."""
    lines: list[str] = []
    for name in sorted(observer.counters):
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} counter")
        lines.append(f"{safe} {observer.counters[name]}")
    for name in sorted(observer.gauges):
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} gauge")
        lines.append(f"{safe} {_format_value(observer.gauges[name])}")
    for name in sorted(observer.histograms):
        hist = observer.histograms[name]
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} histogram")
        cumulative = 0
        for index, bucket_count in enumerate(hist.counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            _low, high = hist.bucket_bounds(index)
            lines.append(
                f'{safe}_bucket{{le="{high}"}} {cumulative}'
            )
        lines.append(f'{safe}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{safe}_sum {hist.total}")
        lines.append(f"{safe}_count {hist.count}")
    return "\n".join(lines) + "\n"
