"""Causal request tracing: context propagation and critical paths.

The Observer's flat spans answer *what* happened on each PE; this
module answers *why an operation took as long as it did*.  It follows
the Dapper model:

- A **trace context** is ``(trace id, span id)``.  The first span
  opened on a node with no active context starts a new trace (the
  request root — e.g. a client syscall in libm3); spans opened while a
  context is active become children of it.
- The context crosses PEs inside the padding of the 16-byte DTU
  :class:`~repro.dtu.message.MessageHeader` (like the reliable-delivery
  seq/CRC fields — no wire-size change): the sending DTU stamps the
  trace id and the id of the message's own span, and the receiver's
  handler *adopts* that pair, so every span recorded while handling the
  message becomes a child of the in-flight message span.  This works
  across kernel domains (the inter-kernel protocol rides ordinary DTU
  messages), through replies, and for RDMA/config transactions via the
  matching :class:`~repro.noc.packet.Packet` stamp.

On top of the resulting span forest this module provides **per-request
assembly** (:func:`assemble_requests`) and **critical-path extraction**
(:func:`critical_path`): the root interval is partitioned into
segments, each attributed to the *deepest* causally-linked span
covering it, and span categories map onto the paper's components
(libm3 / DTU transfer / NoC / kernel / service / inter-kernel RPC).

Zero-overhead contract unchanged: nothing here runs unless an Observer
is installed (``sim.obs is None`` costs one branch per site), and all
analysis is a pure function of recorded spans — fully deterministic.
"""

from __future__ import annotations

import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer, Span


class TraceContext(typing.NamedTuple):
    """One position in a trace: ``(trace_id, span_id)``."""

    trace_id: int
    span_id: int

    @property
    def valid(self) -> bool:
        return self.trace_id >= 0


#: "no context": spans recorded under it stay outside every trace.
NO_CONTEXT = TraceContext(-1, -1)


def header_context(header) -> TraceContext:
    """The trace context a DTU :class:`MessageHeader` carries.

    ``header.parent_span`` is the span id of the in-flight message
    itself, so receiver-side spans adopting this context become
    children of the message span — the causal edge across the NoC.
    """
    return TraceContext(header.trace_id, header.parent_span)


class CausalTracker:
    """Per-node stacks of active trace contexts.

    The simulator is single-threaded and cooperative, so "what request
    is this code working for" is well-defined per NoC node: the top of
    that node's context stack.  :meth:`repro.obs.observer.Observer.begin`
    pushes, :meth:`~repro.obs.observer.Observer.end` pops (by span id,
    so interleaved processes on one node cannot unbalance the stack).
    """

    def __init__(self):
        self._trace_ids = itertools.count(1)
        self._stacks: dict[int, list[TraceContext]] = {}

    def current(self, node: int) -> TraceContext:
        """The active context on ``node`` (``NO_CONTEXT`` if idle)."""
        stack = self._stacks.get(node)
        return stack[-1] if stack else NO_CONTEXT

    def open(self, node: int, span_id: int,
             parent: TraceContext | None = None) -> tuple[int, int]:
        """Activate a new span on ``node``; returns (trace_id, parent_id).

        ``parent=None`` nests under the node's current context (or
        starts a new trace when there is none); an explicit ``parent``
        adopts a propagated context — an *invalid* one (``trace_id <
        0``, e.g. from an unstamped message) starts a new trace, so
        every handler span still lands in some request tree.
        """
        if parent is None:
            parent = self.current(node)
        if parent.valid:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(self._trace_ids), -1
        self._stacks.setdefault(node, []).append(
            TraceContext(trace_id, span_id)
        )
        return trace_id, parent_id

    def close(self, node: int, span_id: int) -> None:
        """Deactivate ``span_id`` on ``node`` (tolerates out-of-order
        closes from interleaved processes)."""
        stack = self._stacks.get(node)
        if not stack:
            return
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].span_id == span_id:
                del stack[index]
                return


# -- request assembly ---------------------------------------------------------


class Request(typing.NamedTuple):
    """All spans of one traced request, stitched into a tree."""

    trace_id: int
    root: "Span"
    spans: tuple

    @property
    def total_cycles(self) -> int:
        return self.root.end - self.root.begin

    def children(self) -> dict[int, list]:
        """span_id -> direct children (begin order)."""
        index: dict[int, list] = {}
        for span in self.spans:
            if span.parent_id >= 0:
                index.setdefault(span.parent_id, []).append(span)
        return index


def assemble_requests(observer: "Observer") -> list[Request]:
    """Group the observer's spans by trace and pick each trace's root.

    Returns requests in trace-id order (deterministic).  The root is
    the span recorded with no parent; if it is missing (ring-capacity
    drop, a span that never ended), the earliest span stands in.
    """
    groups: dict[int, list] = {}
    for span in observer.spans:
        if span.trace_id >= 0:
            groups.setdefault(span.trace_id, []).append(span)
    requests = []
    for trace_id in sorted(groups):
        spans = sorted(groups[trace_id], key=lambda s: (s.begin, s.span_id))
        roots = [s for s in spans if s.parent_id < 0]
        root = roots[0] if roots else spans[0]
        requests.append(Request(trace_id, root, tuple(spans)))
    return requests


def find_request(observer: "Observer", name: str,
                 category: str = "syscall-client") -> Request:
    """The *last* assembled request whose root matches (warm run)."""
    matches = [
        request for request in assemble_requests(observer)
        if request.root.name == name and request.root.category == category
    ]
    if not matches:
        raise ValueError(f"no traced request with root {name!r}/{category!r}")
    return matches[-1]


# -- critical-path extraction -------------------------------------------------

#: span category -> report component (the paper's cycle attribution).
COMPONENT_BY_CATEGORY = {
    "syscall-client": "libm3",
    "m3fs-client": "libm3",
    "syscall": "kernel",
    "ctxsw": "kernel",
    "watchdog": "kernel",
    "dtu": "dtu-transfer",
    "noc": "noc-transfer",
    "noc-queue": "noc-contention",
    "m3fs": "service",
    "kv": "service",
    "traffic": "app",
    "ik": "inter-kernel",
}


def component_of(category: str) -> str:
    return COMPONENT_BY_CATEGORY.get(category, "other")


class Segment(typing.NamedTuple):
    """One critical-path interval, attributed to a span/component."""

    start: int
    end: int
    span: "Span"
    component: str

    @property
    def cycles(self) -> int:
        return self.end - self.start


def critical_path(request: Request) -> list[Segment]:
    """Partition the request's end-to-end interval into attributed
    segments.

    Every cycle in ``[root.begin, root.end)`` is charged to the
    *deepest* span of the request tree covering it (ties: later begin,
    then higher span id) — the innermost work the request was waiting
    on at that moment.  The result is an exact, gap-free partition:
    segment cycles sum to the measured end-to-end latency, so component
    attribution always covers 100% of it.
    """
    root = request.root
    lo, hi = root.begin, root.end
    if hi <= lo:
        return []
    spans = [s for s in request.spans if s.end > s.begin
             and s.end > lo and s.begin < hi]
    by_id = {s.span_id: s for s in request.spans}
    depth_memo: dict[int, int] = {}

    def depth(span) -> int:
        cached = depth_memo.get(span.span_id)
        if cached is None:
            parent = by_id.get(span.parent_id)
            # Parent ids are always allocated before their children
            # begin, so this recursion cannot cycle.
            cached = 0 if parent is None else depth(parent) + 1
            depth_memo[span.span_id] = cached
        return cached

    bounds = sorted(
        {lo, hi}
        | {t for s in spans for t in (s.begin, s.end) if lo < t < hi}
    )
    pieces: list[tuple[int, int, object]] = []
    for start, end in zip(bounds, bounds[1:]):
        cover = root
        best = (-1, 0, 0)
        for span in spans:
            if span.begin <= start and span.end >= end:
                rank = (depth(span), span.begin, span.span_id)
                if rank > best:
                    best, cover = rank, span
        if pieces and pieces[-1][2] is cover:
            pieces[-1] = (pieces[-1][0], end, cover)
        else:
            pieces.append((start, end, cover))
    return [
        Segment(start, end, span, component_of(span.category))
        for start, end, span in pieces
    ]


def component_breakdown(segments: list[Segment]) -> dict[str, int]:
    """component -> cycles, summed over a critical path."""
    totals: dict[str, int] = {}
    for segment in segments:
        totals[segment.component] = (
            totals.get(segment.component, 0) + segment.cycles
        )
    return totals
