"""The Observer: the simulation-wide collection hub.

One Observer is installed per simulator (``sim.obs``); every
instrumented component — NoC, DTU, kernel, services — reads that
attribute and pays one ``is None`` branch when observability is off.

Collected data:

- **spans** — typed intervals ``(name, category, node, begin, end,
  args)``; either opened with :meth:`Observer.begin` / closed with
  :meth:`Observer.end`, or recorded retroactively with
  :meth:`Observer.complete` (natural in a discrete-event model where
  the completion cycle is known at injection time).  Every span also
  carries causal identity — ``(span_id, parent_id, trace_id)`` — wired
  through :mod:`repro.obs.causal`: spans opened while another span is
  active on the same node become its children, and handlers adopt the
  context propagated in DTU message headers, linking spans across PEs
  and kernel domains into per-request trees.
- **instants** — point events (a retransmit, a watchdog probe).
- **counters / gauges / histograms** — cheap named metrics; histograms
  use the deterministic log2 buckets of :mod:`repro.obs.metrics`.
- **link occupancy epochs** — per-link busy fraction sampled on fixed
  epoch boundaries, driven lazily from packet injections so the
  sampler never keeps the event queue alive.

Span/instant storage is optionally bounded (ring semantics with a
dropped-record counter) so long fault sweeps cannot grow without
bound.
"""

from __future__ import annotations

import collections
import itertools
import typing

from repro.obs.causal import CausalTracker, TraceContext
from repro.obs.metrics import Histogram

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.sim.engine import Simulator

#: default link-occupancy sampling period in cycles.
DEFAULT_EPOCH = 10_000


class Span(typing.NamedTuple):
    name: str
    category: str
    node: int
    begin: int
    end: int
    args: dict | None
    #: causal identity; -1 = outside any trace (see repro.obs.causal).
    span_id: int = -1
    parent_id: int = -1
    trace_id: int = -1


class Instant(typing.NamedTuple):
    name: str
    category: str
    node: int
    time: int
    args: dict | None


class Observer:
    """Collects spans, instants, and metrics for one simulation."""

    def __init__(self, sim: "Simulator", span_capacity: int | None = None,
                 epoch: int = DEFAULT_EPOCH):
        if span_capacity is not None and span_capacity < 1:
            raise ValueError("span capacity must be positive")
        if epoch < 1:
            raise ValueError("epoch must be positive")
        self.sim = sim
        self.span_capacity = span_capacity
        self._spans: collections.deque = collections.deque(maxlen=span_capacity)
        self._instants: collections.deque = collections.deque(maxlen=span_capacity)
        self.spans_dropped = 0
        self.instants_dropped = 0
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        #: (source, destination) -> [(epoch_end_cycle, busy_fraction)].
        self.link_series: dict[tuple, list[tuple[int, float]]] = {}
        self.epoch = epoch
        self._next_epoch = epoch
        self._open: dict[int, tuple] = {}
        self._span_ids = itertools.count(1)
        #: per-node trace-context stacks (causal request tracing).
        self.causal = CausalTracker()
        #: node -> human label ("kernel0", "app:find-3", ...) for exports.
        self.node_labels: dict[int, str] = {}
        #: optional streaming-telemetry hub (see repro.obs.timeseries);
        #: None by default so instrumented sites pay one branch.
        self.telemetry = None
        #: optional flight recorder (see repro.obs.flight).
        self.flight = None
        #: attached SLO monitors (see repro.obs.slo); consulted by the
        #: kernel to annotate failover verdicts.
        self.slo_monitors: list = []

    # -- installation ----------------------------------------------------

    @classmethod
    def install(cls, sim: "Simulator", **kwargs) -> "Observer":
        """Create an Observer and hook it onto ``sim.obs``."""
        if sim.obs is not None:
            raise RuntimeError("simulator already has an observer installed")
        observer = cls(sim, **kwargs)
        sim.obs = observer
        return observer

    def enable_telemetry(self, **kwargs):
        """Attach a :class:`~repro.obs.timeseries.Telemetry` hub.

        Counters, gauges, and histogram observations recorded through
        this Observer fan into per-epoch series from here on.
        """
        from repro.obs.timeseries import Telemetry

        if self.telemetry is not None:
            raise RuntimeError("telemetry is already enabled")
        self.telemetry = Telemetry(self.sim, **kwargs)
        return self.telemetry

    def enable_flight_recorder(self, **kwargs):
        """Attach a :class:`~repro.obs.flight.FlightRecorder`."""
        from repro.obs.flight import FlightRecorder

        if self.flight is not None:
            raise RuntimeError("flight recorder is already enabled")
        self.flight = FlightRecorder(self, **kwargs)
        return self.flight

    # -- spans -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    @property
    def instants(self) -> list[Instant]:
        return list(self._instants)

    def reserve_span_id(self) -> int:
        """Allocate a span id up front (for spans recorded later with
        :meth:`complete`, e.g. an in-flight DTU message whose id must be
        stamped into the header before the span's end is known)."""
        return next(self._span_ids)

    def begin(self, name: str, category: str, node: int = -1,
              parent: TraceContext | None = None, **args) -> int:
        """Open a span at the current cycle; returns its id.

        The span joins the causal graph: under ``parent`` when given (a
        :class:`~repro.obs.causal.TraceContext` adopted from a message
        header), else under the node's active context, else as the root
        of a new trace.  It stays the node's active context until
        :meth:`end`.
        """
        span_id = next(self._span_ids)
        trace_id, parent_id = self.causal.open(node, span_id, parent)
        self._open[span_id] = (name, category, node, self.sim.now,
                               args or None, trace_id, parent_id)
        return span_id

    def end(self, span_id: int, **args) -> Span:
        """Close an open span at the current cycle."""
        try:
            (name, category, node, begin, begin_args,
             trace_id, parent_id) = self._open.pop(span_id)
        except KeyError:
            raise ValueError(
                f"span id {span_id} is not open (unknown id, or the span "
                f"was already ended)"
            ) from None
        self.causal.close(node, span_id)
        merged = begin_args
        if args:
            merged = {**(begin_args or {}), **args}
        return self._store_span(
            Span(name, category, node, begin, self.sim.now, merged,
                 span_id, parent_id, trace_id)
        )

    def complete(self, name: str, category: str, node: int, begin: int,
                 end: int | None = None, span_id: int = -1,
                 parent: TraceContext | None = None, **args) -> Span:
        """Record a span whose begin (and optionally end) is already known.

        Unlike :meth:`begin`, this never starts a new trace: the span
        joins the causal graph only when ``parent`` is a valid context
        (or the node has one active); otherwise it stays unlinked, as
        background spans should.  Pass ``span_id`` (from
        :meth:`reserve_span_id`) when other spans were parented on this
        one before it completed.
        """
        if parent is None:
            parent = self.causal.current(node)
        if parent.valid:
            trace_id, parent_id = parent.trace_id, parent.span_id
            if span_id < 0:
                span_id = next(self._span_ids)
        else:
            trace_id, parent_id = -1, -1
        return self._store_span(
            Span(name, category, node, begin,
                 self.sim.now if end is None else end, args or None,
                 span_id, parent_id, trace_id)
        )

    def _store_span(self, span: Span) -> Span:
        if (self.span_capacity is not None
                and len(self._spans) == self.span_capacity):
            self.spans_dropped += 1
        self._spans.append(span)
        if self.flight is not None:
            self.flight.record_span(span)
        return span

    def instant(self, name: str, category: str, node: int = -1, **args) -> None:
        """Record a point event at the current cycle."""
        if (self.span_capacity is not None
                and len(self._instants) == self.span_capacity):
            self.instants_dropped += 1
        instant = Instant(name, category, node, self.sim.now, args or None)
        self._instants.append(instant)
        if self.flight is not None:
            self.flight.record_instant(instant)

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter."""
        self.counters[name] = self.counters.get(name, 0) + n
        if self.telemetry is not None:
            self.telemetry.counter(name, n)

    def gauge(self, name: str, value) -> None:
        """Set a named gauge to its latest value."""
        self.gauges[name] = value
        if self.telemetry is not None:
            self.telemetry.gauge(name, value)

    def observe(self, name: str, value: int) -> None:
        """Record a sample into a named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        hist.observe(value)
        if self.telemetry is not None:
            self.telemetry.observe(name, value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (empty if nothing was observed)."""
        return self.histograms.get(name) or Histogram(name)

    # -- link occupancy epochs ----------------------------------------------

    def sample_links(self, network: "Network", force: bool = False) -> None:
        """Fold completed epochs into the per-link occupancy series.

        Called from :meth:`Network.send` whenever observability is on,
        so sampling advances with traffic and never schedules anything
        (a recurring timer would keep the event queue alive forever).
        With ``force``, the trailing partial epoch is flushed too (for
        end-of-run reports).
        """
        now = self.sim.now
        while self._next_epoch <= now:
            self._record_epoch(network, self._next_epoch - self.epoch,
                               self._next_epoch)
            self._next_epoch += self.epoch
        if force and now > self._next_epoch - self.epoch:
            self._record_epoch(network, self._next_epoch - self.epoch, now)
        if self.telemetry is not None:
            self.telemetry.advance(now)

    def label_node(self, node: int, label: str) -> None:
        """Attach a human-readable role label to a NoC node (shown as
        the Perfetto process name: kernel domain, app, service, NIC)."""
        self.node_labels[node] = label

    def _record_epoch(self, network: "Network", start: int, end: int) -> None:
        span = end - start
        busy_links, busiest = 0, 0.0
        for key, link in network.iter_links():
            if not link.packets:
                continue
            busy = link.busy_within(end) - link.busy_within(start)
            if busy:
                fraction = busy / span
                self.link_series.setdefault(key, []).append(
                    (end, fraction)
                )
                busy_links += 1
                if fraction > busiest:
                    busiest = fraction
        if self.telemetry is not None and busy_links:
            self.telemetry.gauge("noc.links_busy", busy_links)
            self.telemetry.gauge("noc.link_busy_max", round(busiest, 4))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Observer spans={len(self._spans)} "
                f"instants={len(self._instants)} "
                f"counters={len(self.counters)} "
                f"histograms={len(self.histograms)}>")
