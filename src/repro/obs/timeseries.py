"""Epoch-bucketed time-series telemetry.

The Observer's counters, gauges, and histograms answer "what happened
over the whole run"; the telemetry plane adds the time axis.  Simulated
time is cut into fixed *epochs* (``epoch`` cycles each, numbered from
0), and every instrument folds into the epoch containing the current
cycle:

- **counter series** — per-epoch deltas (requests this epoch, retries
  this epoch), summed within the epoch;
- **gauge series** — last-written value per epoch (queue depth, live
  replica count);
- **quantile series** — one deterministic
  :class:`~repro.obs.metrics.Histogram` per epoch (per-epoch p99
  without storing samples).

Epochs advance *lazily*: every record checks the clock, and
:meth:`Telemetry.advance` is also driven from the Observer's
``sample_links`` path — the telemetry plane never schedules simulator
events, so an idle simulation still drains its queue.  When an epoch
closes, registered *samplers* (callables returning ``(name, value)``
gauge pairs) are polled — this is how sources that nobody pushes, like
per-replica kv queue depth, get a series.

Retention is a ring: each series keeps the most recent ``retention``
epochs and counts what it dropped.  :meth:`Telemetry.snapshot` emits a
JSON-safe, *mergeable* form — :func:`merge_snapshots` combines
shard-local or worker-local snapshots deterministically (counters add,
gauges add across disjoint sources, histograms merge exactly), so
``runall`` workers and ``ShardedSimulator`` shards aggregate to the
same bytes as a monolithic run.
"""

from __future__ import annotations

import collections
import typing

from repro.obs.metrics import Histogram

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

#: default telemetry epoch in cycles — coarser than the 10k-cycle link
#: epochs; one row per epoch in the eval reports.
DEFAULT_TELEMETRY_EPOCH = 50_000

#: default per-series ring size, in epochs.
DEFAULT_RETENTION = 1024

COUNTER, GAUGE, QUANTILE = "counter", "gauge", "quantile"


class Telemetry:
    """Per-epoch series for one simulation (``observer.telemetry``)."""

    def __init__(self, sim: "Simulator",
                 epoch: int = DEFAULT_TELEMETRY_EPOCH,
                 retention: int | None = DEFAULT_RETENTION,
                 precision: int | None = 7):
        if epoch < 1:
            raise ValueError("telemetry epoch must be positive")
        if retention is not None and retention < 1:
            raise ValueError("retention must be positive")
        self.sim = sim
        self.epoch = epoch
        self.retention = retention
        self.precision = precision
        #: name -> series kind (fixed at first record).
        self.kinds: dict[str, str] = {}
        #: name -> deque of (epoch_index, value); value is an int/float
        #: for counter/gauge series, a Histogram for quantile series.
        self._series: dict[str, collections.deque] = {}
        #: name -> closed epochs evicted by the retention ring.
        self.dropped_epochs: dict[str, int] = {}
        #: index of the open (accumulating) epoch.
        self._open_index = 0
        self._open_counters: dict[str, int] = {}
        self._open_gauges: dict[str, float] = {}
        self._open_quantiles: dict[str, Histogram] = {}
        #: quantile series name -> sorted thresholds; each observation
        #: above a threshold bumps the exact-count counter series
        #: ``{name}.over_{threshold}`` (how SLO monitors get exact
        #: bad-event counts instead of reading them off sub-buckets).
        self._watches: dict[str, tuple[int, ...]] = {}
        #: callables polled at each epoch close; each returns an
        #: iterable of (gauge name, value) pairs.
        self.samplers: list = []
        #: called after an epoch folds: fn(epoch_index, end_cycle).
        self.on_epoch_close: list = []

    # -- recording -------------------------------------------------------

    def counter(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the open epoch's delta for ``name``."""
        self._tick()
        self._open_counters[name] = self._open_counters.get(name, 0) + n

    def gauge(self, name: str, value) -> None:
        """Set the open epoch's value for ``name`` (last write wins)."""
        self._tick()
        self._open_gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        """Record a sample into the open epoch's histogram."""
        self._tick()
        hist = self._open_quantiles.get(name)
        if hist is None:
            hist = self._open_quantiles[name] = Histogram(
                name, precision=self.precision
            )
        hist.observe(value)
        for threshold in self._watches.get(name, ()):
            if value > threshold:
                over = f"{name}.over_{threshold}"
                self._open_counters[over] = \
                    self._open_counters.get(over, 0) + 1

    def watch_threshold(self, name: str, threshold: int) -> str:
        """Count samples of quantile series ``name`` above ``threshold``.

        Returns the counter series name carrying the exact over-count
        (``{name}.over_{threshold}``).
        """
        current = self._watches.get(name, ())
        if threshold not in current:
            self._watches[name] = tuple(sorted(current + (threshold,)))
        return f"{name}.over_{threshold}"

    def add_sampler(self, sampler) -> None:
        """Register a callable polled at each epoch close; it returns
        an iterable of ``(gauge name, value)`` pairs."""
        self.samplers.append(sampler)

    # -- epoch machinery -------------------------------------------------

    def advance(self, now: int | None = None) -> None:
        """Close every epoch that ended at or before ``now``."""
        if now is None:
            now = self.sim.now
        target = now // self.epoch
        while self._open_index < target:
            self._close_epoch(self._open_index)
            self._open_index += 1

    def _tick(self) -> None:
        self.advance(self.sim.now)

    def flush(self) -> None:
        """Fold the trailing partial epoch (for end-of-run reports).

        Idempotent: records landing after a flush re-open the same
        epoch and a later flush combines them.
        """
        self.advance(self.sim.now)
        self._close_epoch(self._open_index)

    def _close_epoch(self, index: int) -> None:
        for sampler in self.samplers:
            for name, value in sampler():
                self._open_gauges[name] = value
        for name, value in self._open_counters.items():
            self._fold(name, COUNTER, index, value)
        for name, value in self._open_gauges.items():
            self._fold(name, GAUGE, index, value)
        for name, hist in self._open_quantiles.items():
            self._fold(name, QUANTILE, index, hist)
        self._open_counters.clear()
        self._open_gauges.clear()
        self._open_quantiles.clear()
        end_cycle = (index + 1) * self.epoch
        for hook in self.on_epoch_close:
            hook(index, end_cycle)

    def _fold(self, name: str, kind: str, index: int, value) -> None:
        known = self.kinds.get(name)
        if known is None:
            self.kinds[name] = kind
            self._series[name] = collections.deque(maxlen=self.retention)
        elif known != kind:
            raise ValueError(
                f"series {name!r} is a {known}, not a {kind}"
            )
        ring = self._series[name]
        if ring and ring[-1][0] == index:  # re-flush of a partial epoch
            last_index, last_value = ring[-1]
            if kind == COUNTER:
                value = last_value + value
            elif kind == QUANTILE:
                last_value.merge(value)
                value = last_value
            ring[-1] = (last_index, value)
            return
        if self.retention is not None and len(ring) == self.retention:
            self.dropped_epochs[name] = self.dropped_epochs.get(name, 0) + 1
        ring.append((index, value))

    # -- reading ---------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    def points(self, name: str) -> list[tuple[int, typing.Any]]:
        """Closed epochs of a series as ``(epoch_index, value)`` pairs."""
        return list(self._series.get(name, ()))

    def end_cycle(self, index: int) -> int:
        """The cycle at which epoch ``index`` ends (exclusive)."""
        return (index + 1) * self.epoch

    def value_at(self, name: str, index: int, default=0):
        """The series value at one epoch (``default`` when absent)."""
        for point_index, value in self._series.get(name, ()):
            if point_index == index:
                return value
        return default

    def window_sum(self, name: str, last_index: int, width: int) -> int:
        """Sum of a counter series over ``[last_index - width + 1,
        last_index]`` — missing epochs count 0."""
        first = last_index - width + 1
        total = 0
        for index, value in self._series.get(name, ()):
            if first <= index <= last_index:
                total += value
        return total

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe, mergeable snapshot of every closed epoch."""
        series = {}
        for name in sorted(self._series):
            kind = self.kinds[name]
            points = [
                [index,
                 value.snapshot() if kind == QUANTILE else value]
                for index, value in self._series[name]
            ]
            series[name] = {"kind": kind, "points": points}
        return {
            "epoch": self.epoch,
            "precision": self.precision,
            "dropped": dict(sorted(self.dropped_epochs.items())),
            "series": series,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Telemetry epoch={self.epoch} "
                f"series={len(self._series)} open={self._open_index}>")


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge shard-local telemetry snapshots deterministically.

    All snapshots must share the same epoch length.  Same-named series
    must agree on kind; same-epoch points combine as counter-add,
    gauge-add (gauges from different shards are disjoint sources, e.g.
    distinct replicas), and exact histogram merge.  The result is
    independent of snapshot order and equals what one telemetry hub
    fed all the records would have produced.
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    epoch = snapshots[0]["epoch"]
    precision = snapshots[0]["precision"]
    for snap in snapshots:
        if snap["epoch"] != epoch:
            raise ValueError(
                f"cannot merge snapshots with epochs "
                f"{epoch} and {snap['epoch']}"
            )
    merged_series: dict[str, dict] = {}
    dropped: dict[str, int] = {}
    for snap in snapshots:
        for name, count in snap["dropped"].items():
            dropped[name] = dropped.get(name, 0) + count
        for name, body in snap["series"].items():
            into = merged_series.setdefault(
                name, {"kind": body["kind"], "points": {}}
            )
            if into["kind"] != body["kind"]:
                raise ValueError(
                    f"series {name!r} is a {into['kind']} in one "
                    f"snapshot and a {body['kind']} in another"
                )
            points = into["points"]
            for index, value in body["points"]:
                if index not in points:
                    points[index] = (
                        Histogram.from_snapshot(value)
                        if body["kind"] == QUANTILE else value
                    )
                elif body["kind"] == QUANTILE:
                    points[index].merge(Histogram.from_snapshot(value))
                else:
                    points[index] = points[index] + value
    out_series = {}
    for name in sorted(merged_series):
        body = merged_series[name]
        out_series[name] = {
            "kind": body["kind"],
            "points": [
                [index,
                 value.snapshot() if body["kind"] == QUANTILE else value]
                for index, value in sorted(body["points"].items())
            ],
        }
    return {
        "epoch": epoch,
        "precision": precision,
        "dropped": dict(sorted(dropped.items())),
        "series": out_series,
    }
