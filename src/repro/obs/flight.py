"""The flight recorder: a bounded black box per kernel domain.

When a failure verdict lands — a kernel domain declared dead, a
watchdog killing a wedged VPE, a route with no live replica — the
post-mortem question is "what did this domain look like just before?".
The full span/instant stores answer it only if they are unbounded; the
flight recorder answers it with O(1) memory: per kernel domain, a ring
of the most recent ``capacity`` spans and instants (fed by the
Observer at record time, one branch when disabled), plus the last few
telemetry epochs.

``dump(reason)`` freezes the rings into a deterministic snapshot —
called by the kernel at each failure verdict and available on demand.
Dumps are plain dicts; :func:`render_dump` formats one as stable text
for reports and CI artifacts.  Node-to-domain attribution comes from
the mapping ``M3System`` installs at boot; unmapped nodes (DRAM, NICs,
the control plane's ``-1``) land in domain ``-1``.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Instant, Observer, Span

#: spans/instants retained per domain ring.
DEFAULT_CAPACITY = 64

#: telemetry epochs included in a dump.
DEFAULT_EPOCHS = 8


class FlightRecorder:
    """Bounded recent-history rings, dumped on failure verdicts."""

    def __init__(self, observer: "Observer",
                 capacity: int = DEFAULT_CAPACITY,
                 epochs: int = DEFAULT_EPOCHS,
                 domain_of: dict[int, int] | None = None):
        if capacity < 1:
            raise ValueError("flight capacity must be positive")
        self.observer = observer
        self.capacity = capacity
        self.epochs = epochs
        #: NoC node -> kernel domain; everything else -> domain -1.
        self.domain_of: dict[int, int] = dict(domain_of or {})
        self._spans: dict[int, collections.deque] = {}
        self._instants: dict[int, collections.deque] = {}
        self.dumps: list[dict] = []

    def map_nodes(self, mapping: dict[int, int]) -> None:
        """Attribute NoC nodes to kernel domains for the rings."""
        self.domain_of.update(mapping)

    # -- feeding (called by the Observer, one branch when off) ---------

    def _ring(self, store: dict, node: int) -> collections.deque:
        domain = self.domain_of.get(node, -1)
        ring = store.get(domain)
        if ring is None:
            ring = store[domain] = collections.deque(maxlen=self.capacity)
        return ring

    def record_span(self, span: "Span") -> None:
        self._ring(self._spans, span.node).append(span)

    def record_instant(self, instant: "Instant") -> None:
        self._ring(self._instants, instant.node).append(instant)

    # -- dumping -------------------------------------------------------

    def dump(self, reason: str, domain: int | None = None) -> dict:
        """Freeze the rings into a snapshot; returns and retains it.

        ``domain`` names the domain the verdict is about (shown first
        when rendering); every domain's ring is included either way.
        """
        telemetry = self.observer.telemetry
        series_tail: dict[str, list] = {}
        epoch = None
        if telemetry is not None:
            epoch = telemetry.epoch
            for name in telemetry.names():
                points = telemetry.points(name)[-self.epochs:]
                kind = telemetry.kinds[name]
                if kind == "quantile":
                    points = [
                        (index,
                         f"n={hist.count} p99<{hist.percentile(0.99):,}")
                        for index, hist in points
                    ]
                series_tail[name] = [
                    (index, value) for index, value in points
                ]
        snapshot = {
            "reason": reason,
            "cycle": self.observer.sim.now,
            "domain": domain,
            "epoch": epoch,
            "spans": {
                ring_domain: list(ring)
                for ring_domain, ring in sorted(self._spans.items())
            },
            "instants": {
                ring_domain: list(ring)
                for ring_domain, ring in sorted(self._instants.items())
            },
            "telemetry": series_tail,
            "counters": dict(sorted(self.observer.counters.items())),
        }
        self.dumps.append(snapshot)
        self.observer.instant(
            "flight_dump", "flight", -1, reason=reason,
            domain=domain if domain is not None else -1,
        )
        return snapshot


def _args_text(args: dict | None) -> str:
    if not args:
        return ""
    return " " + " ".join(
        f"{key}={args[key]}" for key in sorted(args)
    )


def render_dump(dump: dict, span_limit: int = 10,
                instant_limit: int = 12, series_limit: int = 12) -> str:
    """Format one flight dump as deterministic text.

    The verdict's domain renders first; rings are tail-truncated to
    the given limits so reports stay bounded.
    """
    lines = [
        f"flight dump: {dump['reason']}",
        f"  at cycle {dump['cycle']:,}"
        + (f", domain {dump['domain']}" if dump['domain'] is not None
           else ""),
    ]
    domains = sorted(
        set(dump["spans"]) | set(dump["instants"]),
        key=lambda ring_domain: (ring_domain != dump["domain"],
                                 ring_domain),
    )
    for ring_domain in domains:
        lines.append(f"  domain {ring_domain}:")
        instants = dump["instants"].get(ring_domain, [])[-instant_limit:]
        for instant in instants:
            lines.append(
                f"    @{instant.time:>10,} ! {instant.name}"
                f"/{instant.category} node={instant.node}"
                + _args_text(instant.args)
            )
        spans = dump["spans"].get(ring_domain, [])[-span_limit:]
        for span in spans:
            lines.append(
                f"    [{span.begin:>9,}..{span.end:>9,}] {span.name}"
                f"/{span.category} node={span.node}"
                + _args_text(span.args)
            )
    if dump["telemetry"]:
        lines.append(f"  telemetry (epoch={dump['epoch']:,} cycles):")
        for name in sorted(dump["telemetry"])[:series_limit]:
            points = ", ".join(
                f"{index}:{value}"
                for index, value in dump["telemetry"][name]
            )
            lines.append(f"    {name}: {points}")
    return "\n".join(lines)
