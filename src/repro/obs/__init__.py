"""Structured observability for the simulator.

The paper's whole evaluation is cycle accounting — stacked App/Xfers/OS
breakdowns — and PR 1's reliability machinery (retransmits, watchdog
probes, recovery) is invisible without runtime introspection.  This
package is the first-class observability layer:

- :class:`~repro.obs.observer.Observer` — the per-simulation hub that
  collects typed **spans** (begin/end, category, node, metadata),
  **instant events**, and cheap **metrics** (counters, gauges, log2
  histograms, per-link occupancy epochs).
- :mod:`repro.obs.chrome` — exports the collected spans/instants as a
  Chrome trace-event JSON file that loads in Perfetto /
  ``chrome://tracing`` (PEs map to "processes", categories to
  "threads").
- :mod:`repro.obs.metrics` — deterministic fixed-bucket histograms
  (powers of two, never wall-clock).
- :mod:`repro.obs.causal` — Dapper-style causal request tracing: trace
  contexts propagated in DTU message headers link spans across PEs and
  kernel domains into per-request trees, from which
  :func:`~repro.obs.causal.critical_path` extracts the chain of cycle
  intervals that determined end-to-end latency, attributed per
  component (libm3 / DTU / NoC / kernel / service / inter-kernel RPC).
- :mod:`repro.obs.timeseries` — the streaming telemetry plane:
  epoch-bucketed counter/gauge/quantile series with ring retention and
  mergeable snapshots (``observer.enable_telemetry()``).
- :mod:`repro.obs.slo` — declarative latency/availability SLOs
  evaluated in-sim with multi-window burn-rate alerting; alerts feed
  the autoscaler (``policy="slo"``) and failover verdicts.
- :mod:`repro.obs.flight` — a bounded per-domain flight recorder
  dumped deterministically on failure verdicts
  (``observer.enable_flight_recorder()``).
- :mod:`repro.obs.prom` — Prometheus-style text exposition of the
  collected metrics.

Zero-overhead contract: nothing is collected unless an Observer is
installed on the simulator (``sim.obs``); every instrumentation point
in the NoC, DTU, kernel, and services pays exactly one attribute load
plus one ``is None`` branch when observability is off, so all
calibrated figures stay bit-identical.  See ``docs/observability.md``.
"""

from repro.obs.causal import (
    NO_CONTEXT,
    Request,
    Segment,
    TraceContext,
    assemble_requests,
    component_breakdown,
    critical_path,
    find_request,
    header_context,
)
from repro.obs.metrics import Histogram
from repro.obs.observer import Instant, Observer, Span
from repro.obs.chrome import trace_events, to_chrome_trace, export_chrome_trace
from repro.obs.timeseries import Telemetry, merge_snapshots
from repro.obs.slo import SloMonitor, SloSpec, last_alert_before
from repro.obs.flight import FlightRecorder, render_dump
from repro.obs.prom import render_prometheus

__all__ = [
    "FlightRecorder",
    "Histogram",
    "Instant",
    "NO_CONTEXT",
    "Observer",
    "Request",
    "Segment",
    "SloMonitor",
    "SloSpec",
    "Span",
    "Telemetry",
    "TraceContext",
    "assemble_requests",
    "component_breakdown",
    "critical_path",
    "find_request",
    "header_context",
    "last_alert_before",
    "merge_snapshots",
    "render_dump",
    "render_prometheus",
    "trace_events",
    "to_chrome_trace",
    "export_chrome_trace",
]
