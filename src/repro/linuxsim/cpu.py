"""A single time-shared CPU with explicit context-switch costs.

Linux in the paper's evaluation runs everything on one core ("Linux
does not provide support for multiple PEs in the simulator",
Section 5.1), so pipe partners and fork children interleave, paying
"both the direct and the indirect costs of context switches"
(Section 1.3).  The direct cost is charged here on every owner change;
the indirect cost (cold caches after a switch) is part of the cache
model's copy bandwidth.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Simulator


class Cpu:
    """Cooperative single-core scheduler: hold to run, release to block."""

    def __init__(self, sim: "Simulator", switch_cycles: int):
        self.sim = sim
        self.switch_cycles = switch_cycles
        self._owner: object = None
        self._last_owner: object = None
        self._waiters: collections.deque = collections.deque()
        self.context_switches = 0

    def acquire(self, who: object):
        """Generator: take the CPU (queueing behind the current owner)."""
        if self._owner is who:
            return
        if self._owner is not None:
            ticket = self.sim.event(f"cpu.wait.{who}")
            self._waiters.append((who, ticket))
            yield ticket
            # ownership transferred by release()
            return
        yield from self._switch_to(who)

    def _switch_to(self, who: object):
        if self._last_owner is not None and self._last_owner is not who:
            self.context_switches += 1
            yield self.sim.delay(self.switch_cycles, tag=Tag.OS)
        self._owner = who
        self._last_owner = who

    def release(self, who: object) -> None:
        """Give up the CPU (when blocking or exiting)."""
        if self._owner is not who:
            raise RuntimeError(f"{who!r} released a CPU it does not own")
        self._owner = None
        if self._waiters:
            next_who, ticket = self._waiters.popleft()

            def handoff(next_who=next_who, ticket=ticket):
                yield from self._switch_to(next_who)
                ticket.succeed()

            self.sim.process(handoff(), "cpu.handoff")

    @property
    def owner(self) -> object:
        return self._owner
