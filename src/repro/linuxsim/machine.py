"""The Linux machine and its process environment.

:class:`LxEnv` is the Linux counterpart of libm3's ``Env``: the object
simulated programs receive, exposing syscalls whose costs follow the
paper's published decomposition.  All processes share one time-shared
core (:class:`~repro.linuxsim.cpu.Cpu`).
"""

from __future__ import annotations

import math
import typing

from repro import params
from repro.linuxsim.cpu import Cpu
from repro.linuxsim.fs import LxFsError, TmpFs
from repro.linuxsim.pipe import LxPipe
from repro.sim import Simulator
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.process import Process

#: open(2) flag values for the baseline (mirrors OpenFlags numerically).
O_RDONLY = 1
O_WRONLY = 2
O_RDWR = 3
O_CREAT = 4
O_TRUNC = 8


class _Descriptor:
    """One open-file-table entry."""

    def __init__(self, kind: str, node=None, pipe: LxPipe | None = None,
                 path: str = ""):
        self.kind = kind  # "file" | "pipe_r" | "pipe_w"
        self.node = node
        self.pipe = pipe
        self.path = path
        self.position = 0


class LinuxMachine:
    """One simulated Linux box: a core, a tmpfs, and processes."""

    def __init__(self, costs: params.LinuxCosts = params.LINUX_XTENSA,
                 warm_cache: bool = False):
        self.sim = Simulator()
        self.costs = costs
        #: True models the miss-free "Lx-$" configuration.
        self.warm_cache = warm_cache
        self.cpu = Cpu(self.sim, costs.context_switch_cycles)
        self.fs = TmpFs()
        self._next_pid = 1

    # -- bandwidth model ------------------------------------------------------

    def copy_cycles(self, nbytes: int) -> int:
        """memcpy duration: miss-limited unless the cache is warm."""
        if nbytes <= 0:
            return 0
        bandwidth = (
            self.costs.memcpy_nomiss_bytes_per_cycle
            if self.warm_cache
            else self.costs.memcpy_bytes_per_cycle
        )
        return max(1, math.ceil(nbytes / bandwidth))

    def zero_cycles(self, nbytes: int) -> int:
        """memset duration for block zeroing."""
        if nbytes <= 0:
            return 0
        bandwidth = (
            self.costs.memset_nomiss_bytes_per_cycle
            if self.warm_cache
            else self.costs.memset_bytes_per_cycle
        )
        return max(1, math.ceil(nbytes / bandwidth))

    # -- processes ---------------------------------------------------------------

    def spawn(self, func, *args, name: str = "proc",
              parent: "LxEnv | None" = None) -> "LxEnv":
        """Start ``func(env, *args)`` as a process; returns its env."""
        env = LxEnv(self, name=name, pid=self._next_pid)
        self._next_pid += 1
        if parent is not None:
            env.inherit_fds(parent)

        def body():
            yield from self.cpu.acquire(env)
            try:
                result = yield from func(env, *args)
            finally:
                env.close_all_fds()
                self.cpu.release(env)
            return result

        env.process = self.sim.process(body(), name)
        return env

    def run_program(self, func, *args, name: str = "main", limit=None):
        """Spawn + simulate to completion; returns the program's result."""
        env = self.spawn(func, *args, name=name)
        return self.sim.run_process(_join(env), name=f"{name}.join",
                                    limit=limit)


def _join(env: "LxEnv"):
    result = yield env.process
    return result


class LxEnv:
    """What a simulated Linux program sees: POSIX-ish syscalls."""

    def __init__(self, machine: LinuxMachine, name: str, pid: int):
        self.machine = machine
        self.sim = machine.sim
        self.costs = machine.costs
        self.name = name
        self.pid = pid
        self.process: "Process | None" = None
        self._fds: dict[int, _Descriptor] = {}
        self._next_fd = 3  # 0..2 are the std streams
        self.syscall_count = 0

    # -- plumbing ------------------------------------------------------------

    def _kernel(self, cycles: int):
        """Kernel-path time (the figures' "OS" stack)."""
        return self.sim.delay(int(cycles), tag=Tag.OS)

    def _copy(self, nbytes: int):
        """Data-copy time (the figures' "Xfers" stack)."""
        return self.sim.delay(self.machine.copy_cycles(nbytes), tag=Tag.XFER)

    def compute(self, cycles: int):
        """Application computation (the figures' "App" stack)."""
        return self.sim.delay(int(cycles), tag=Tag.APP)

    def _block_until(self, make_event):
        """Generator: release the CPU, wait, reacquire (context switch)."""
        self.machine.cpu.release(self)
        yield make_event()
        yield from self.machine.cpu.acquire(self)

    def _install(self, descriptor: _Descriptor) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = descriptor
        return fd

    def _get(self, fd: int) -> _Descriptor:
        try:
            return self._fds[fd]
        except KeyError:
            raise LxFsError(f"EBADF: {fd}") from None

    def inherit_fds(self, parent: "LxEnv") -> None:
        """fork semantics: shared descriptors (same offsets, same pipes)."""
        self._fds = dict(parent._fds)
        self._next_fd = parent._next_fd
        for descriptor in self._fds.values():
            if descriptor.kind == "pipe_w":
                descriptor.pipe.writer_count += 1

    def close_all_fds(self) -> None:
        for fd in list(self._fds):
            descriptor = self._fds.pop(fd)
            self._drop(descriptor)

    def _drop(self, descriptor: _Descriptor) -> None:
        if descriptor.kind == "pipe_w":
            descriptor.pipe.writer_count -= 1
            if descriptor.pipe.writer_count <= 0:
                descriptor.pipe.close_write()

    # -- syscalls -------------------------------------------------------------

    def null_syscall(self):
        """Generator: the Figure 3 micro-benchmark (410 cycles on Xtensa)."""
        self.syscall_count += 1
        yield self._kernel(self.costs.syscall_cycles)

    def open(self, path: str, flags: int):
        """Generator: open/create a tmpfs file; returns an fd."""
        self.syscall_count += 1
        fs = self.machine.fs
        yield self._kernel(
            self.costs.syscall_enter_leave_cycles
            + self.costs.fd_lookup_checks_cycles
            + self.costs.path_component_cycles * fs.path_depth(path)
        )
        if not fs.exists(path):
            if not (flags & O_CREAT):
                raise LxFsError(f"ENOENT: {path!r}")
            node = fs.create(path)
        else:
            node = fs.lookup(path)
        if node.kind != "file":
            raise LxFsError(f"EISDIR: {path!r}")
        if flags & O_TRUNC:
            node.data.clear()
        return self._install(_Descriptor("file", node=node, path=path))

    def read(self, fd: int, count: int):
        """Generator: read bytes (files and pipe read ends)."""
        self.syscall_count += 1
        descriptor = self._get(fd)
        if descriptor.kind == "pipe_r":
            return (yield from self._pipe_read(descriptor, count))
        if descriptor.kind != "file":
            raise LxFsError("EBADF: not readable")
        node = descriptor.node
        data = bytes(node.data[descriptor.position : descriptor.position + count])
        blocks = max(1, self.machine.fs.blocks_of(len(data)))
        yield self._kernel(
            self.costs.syscall_enter_leave_cycles
            + self.costs.fd_lookup_checks_cycles
            + self.costs.page_cache_op_cycles * blocks
        )
        yield self._copy(len(data))
        descriptor.position += len(data)
        return data

    def write(self, fd: int, data: bytes):
        """Generator: write bytes; zeroes freshly allocated blocks first
        ("Linux is overwriting each block with zeros before handing it
        out to a writing application", Section 5.4)."""
        self.syscall_count += 1
        descriptor = self._get(fd)
        if descriptor.kind == "pipe_w":
            return (yield from self._pipe_write(descriptor, data))
        if descriptor.kind != "file":
            raise LxFsError("EBADF: not writable")
        node = descriptor.node
        fs = self.machine.fs
        blocks = max(1, fs.blocks_of(len(data)))
        fresh = fs.new_blocks_for_write(node, descriptor.position, len(data))
        yield self._kernel(
            self.costs.syscall_enter_leave_cycles
            + self.costs.fd_lookup_checks_cycles
            + self.costs.page_cache_op_cycles * blocks
        )
        if fresh:
            yield self._kernel(self.machine.zero_cycles(fresh * fs.block_bytes))
        yield self._copy(len(data))
        end = descriptor.position + len(data)
        if len(node.data) < end:
            node.data.extend(bytes(end - len(node.data)))
        node.data[descriptor.position : end] = data
        descriptor.position = end
        return len(data)

    def lseek(self, fd: int, offset: int, whence: int = 0):
        """Generator: reposition a file descriptor."""
        self.syscall_count += 1
        descriptor = self._get(fd)
        if descriptor.kind != "file":
            raise LxFsError("ESPIPE")
        yield self._kernel(self.costs.syscall_cycles)
        if whence == 0:
            descriptor.position = offset
        elif whence == 1:
            descriptor.position += offset
        elif whence == 2:
            descriptor.position = len(descriptor.node.data) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return descriptor.position

    def close(self, fd: int):
        """Generator: release a descriptor."""
        self.syscall_count += 1
        descriptor = self._get(fd)
        yield self._kernel(self.costs.syscall_cycles)
        del self._fds[fd]
        self._drop(descriptor)

    def stat(self, path: str):
        """Generator: (kind, size, links).  "stat is well optimized on
        Linux" (Section 5.6) — one flat, tuned cost."""
        self.syscall_count += 1
        yield self._kernel(self.costs.stat_cycles)
        node = self.machine.fs.lookup(path)
        size = len(node.data) if node.kind == "file" else 0
        return (node.kind, size, node.links)

    def mkdir(self, path: str):
        self.syscall_count += 1
        yield self._kernel(self._namespace_cost(path))
        self.machine.fs.mkdir(path)

    def unlink(self, path: str):
        self.syscall_count += 1
        yield self._kernel(self._namespace_cost(path))
        self.machine.fs.unlink(path)

    def link(self, existing: str, new_path: str):
        self.syscall_count += 1
        yield self._kernel(self._namespace_cost(new_path))
        self.machine.fs.link(existing, new_path)

    def rename(self, old_path: str, new_path: str):
        """Generator: rename(2)."""
        self.syscall_count += 1
        yield self._kernel(self._namespace_cost(new_path))
        self.machine.fs.rename(old_path, new_path)

    def readdir(self, path: str):
        """Generator: getdents, one pass."""
        self.syscall_count += 1
        yield self._kernel(self._namespace_cost(path))
        return self.machine.fs.readdir(path)

    def _namespace_cost(self, path: str) -> int:
        return (
            self.costs.syscall_enter_leave_cycles
            + self.costs.dir_op_cycles
            + self.costs.path_component_cycles
            * self.machine.fs.path_depth(path)
        )

    # -- pipes -------------------------------------------------------------------

    def pipe(self):
        """Generator: create a pipe; returns (read_fd, write_fd)."""
        self.syscall_count += 1
        yield self._kernel(self.costs.syscall_cycles)
        pipe_obj = LxPipe(self.sim)
        pipe_obj.writer_count = 1
        read_fd = self._install(_Descriptor("pipe_r", pipe=pipe_obj))
        write_fd = self._install(_Descriptor("pipe_w", pipe=pipe_obj))
        return read_fd, write_fd

    def _pipe_read(self, descriptor: _Descriptor, count: int):
        pipe_obj = descriptor.pipe
        yield self._kernel(
            self.costs.syscall_enter_leave_cycles
            + self.costs.fd_lookup_checks_cycles
        )
        while not pipe_obj.buffer and not pipe_obj.write_closed:
            yield from self._block_until(pipe_obj.wait_for_data)
        data = pipe_obj.pull(count)
        if data:
            yield self._copy(len(data))
            yield self._kernel(self.costs.pipe_wakeup_cycles)
        return data

    def _pipe_write(self, descriptor: _Descriptor, data: bytes):
        pipe_obj = descriptor.pipe
        yield self._kernel(
            self.costs.syscall_enter_leave_cycles
            + self.costs.fd_lookup_checks_cycles
        )
        written = 0
        while written < len(data):
            while pipe_obj.free_space == 0:
                yield from self._block_until(pipe_obj.wait_for_space)
            accepted = pipe_obj.push(data[written:])
            yield self._copy(accepted)
            yield self._kernel(self.costs.pipe_wakeup_cycles)
            written += accepted
        return written

    # -- processes ------------------------------------------------------------------

    def fork(self, child_func, *args, name: str | None = None):
        """Generator: start a child process running ``child_func``;
        returns its env (the waitpid handle)."""
        self.syscall_count += 1
        yield self._kernel(self.costs.fork_cycles)
        child = self.machine.spawn(
            child_func, *args,
            name=name or f"{self.name}.child", parent=self,
        )
        return child

    def execve(self, binary_path: str):
        """Generator: account for program loading (image read + setup)."""
        self.syscall_count += 1
        node = self.machine.fs.lookup(binary_path)
        yield self._kernel(self.costs.exec_cycles)
        yield self._copy(len(node.data))

    def waitpid(self, child: "LxEnv"):
        """Generator: block until the child exits; returns its result."""
        self.syscall_count += 1
        yield self._kernel(self.costs.syscall_cycles)
        if not child.process.done.triggered:
            yield from self._block_until(lambda: child.process.done)
        if not child.process.done.ok:
            raise child.process.done.value
        return child.process.done.value

    def mmap(self, fd: int):
        """Generator: mmap(2) a file; returns a :class:`Mapping`.

        Reproduces the configuration the paper measured but excluded
        from Figure 3: copying through mmap is *slower* than
        read()/write() because every fresh page costs a fault and the
        fault handler thrashes the cache against the app's memcpy.
        """
        self.syscall_count += 1
        descriptor = self._get(fd)
        if descriptor.kind != "file":
            raise LxFsError("ENODEV: mmap needs a regular file")
        yield self._kernel(self.costs.syscall_cycles)
        return Mapping(self, descriptor.node)

    def sendfile(self, out_fd: int, in_fd: int, count: int):
        """Generator: in-kernel copy, no per-block user crossings —
        "both benchmarks use sendfile to transfer the data"
        (Section 5.6)."""
        self.syscall_count += 1
        source = self._get(in_fd)
        target = self._get(out_fd)
        if source.kind != "file" or target.kind != "file":
            raise LxFsError("EINVAL: sendfile needs regular files here")
        fs = self.machine.fs
        data = bytes(
            source.node.data[source.position : source.position + count]
        )
        blocks = max(1, fs.blocks_of(len(data)))
        fresh = fs.new_blocks_for_write(
            target.node, target.position, len(data)
        )
        yield self._kernel(
            self.costs.syscall_enter_leave_cycles
            + 2 * self.costs.fd_lookup_checks_cycles
            + 2 * self.costs.page_cache_op_cycles * blocks
        )
        if fresh:
            yield self._kernel(self.machine.zero_cycles(fresh * fs.block_bytes))
        yield self._copy(len(data))
        end = target.position + len(data)
        if len(target.node.data) < end:
            target.node.data.extend(bytes(end - len(target.node.data)))
        target.node.data[target.position : end] = data
        source.position += len(data)
        target.position = end
        return len(data)


class Mapping:
    """An mmap'd file: page-fault-driven, cache-thrashing access.

    Every first touch of a 4 KiB page costs a page fault; the copy in
    or out of the mapping runs at the thrash-limited bandwidth (see
    :data:`repro.params.LinuxCosts.mmap_thrash_bytes_per_cycle`).
    """

    def __init__(self, env: LxEnv, node):
        self.env = env
        self.node = node
        self._touched: set[int] = set()
        self.faults = 0

    def _fault_pages(self, offset: int, count: int):
        block = self.env.machine.fs.block_bytes
        first = offset // block
        last = (offset + max(count, 1) - 1) // block
        for page in range(first, last + 1):
            if page not in self._touched:
                self._touched.add(page)
                self.faults += 1
                yield self.env._kernel(self.env.costs.page_fault_cycles)

    def _thrash_copy(self, nbytes: int):
        import math as _math

        bandwidth = self.env.costs.mmap_thrash_bytes_per_cycle
        return self.env.sim.delay(
            max(1, _math.ceil(nbytes / bandwidth)), tag=Tag.XFER
        )

    def read(self, offset: int, count: int):
        """Generator: load bytes out of the mapping."""
        yield from self._fault_pages(offset, count)
        data = bytes(self.node.data[offset : offset + count])
        yield self._thrash_copy(len(data))
        return data

    def write(self, offset: int, data: bytes):
        """Generator: store bytes into the mapping (extends the file)."""
        yield from self._fault_pages(offset, len(data))
        yield self._thrash_copy(len(data))
        end = offset + len(data)
        if len(self.node.data) < end:
            self.node.data.extend(bytes(end - len(self.node.data)))
        self.node.data[offset : end] = data
        return len(data)
