"""The Linux baseline model.

The paper compares M3 against Linux 3.18 on a cycle-accurate Xtensa
simulator (Section 5.1).  This package is the substitute: an analytic,
event-driven model of a traditional monolithic OS on a *single*
time-shared core, calibrated against the per-operation cycle costs the
paper publishes (null syscall 410 cycles; read() = ~380 enter/leave +
~400 fd/security + ~550 page cache per 4 KiB block; memcpy that cannot
saturate memory bandwidth; block zeroing before first write; context
switches for pipes and fork).

Two cache variants reproduce the figures' "Lx" and "Lx-$" bars:
``warm_cache=False`` charges realistic miss-limited copy bandwidth,
``warm_cache=True`` models the hypothetical miss-free run.
"""

from repro.linuxsim.cpu import Cpu
from repro.linuxsim.fs import TmpFs, LxFsError
from repro.linuxsim.pipe import LxPipe
from repro.linuxsim.machine import LinuxMachine, LxEnv

__all__ = ["Cpu", "LinuxMachine", "LxEnv", "LxFsError", "LxPipe", "TmpFs"]
