"""Linux pipes: a bounded kernel buffer with blocking semantics."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Simulator

#: default Linux pipe buffer (16 pages).
PIPE_BUFFER_BYTES = 64 * 1024


class LxPipe:
    """Kernel pipe object: byte FIFO with capacity and waiter queues."""

    def __init__(self, sim: "Simulator", capacity: int = PIPE_BUFFER_BYTES):
        self.sim = sim
        self.capacity = capacity
        self.buffer = bytearray()
        self.write_closed = False
        #: open write descriptors (EOF when it reaches zero).
        self.writer_count = 0
        self._space_waiters: list = []
        self._data_waiters: list = []

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.buffer)

    def push(self, data: bytes) -> int:
        """Store up to the free space; returns bytes accepted."""
        accepted = min(len(data), self.free_space)
        if accepted:
            self.buffer.extend(data[:accepted])
            self._wake(self._data_waiters)
        return accepted

    def pull(self, count: int) -> bytes:
        """Take up to ``count`` bytes from the front."""
        taken = bytes(self.buffer[:count])
        if taken:
            del self.buffer[: len(taken)]
            self._wake(self._space_waiters)
        return taken

    def close_write(self) -> None:
        self.write_closed = True
        self._wake(self._data_waiters)

    # -- blocking ----------------------------------------------------------

    def wait_for_data(self):
        """Event: data available or writer closed."""
        event = self.sim.event("pipe.data")
        if self.buffer or self.write_closed:
            event.succeed()
        else:
            self._data_waiters.append(event)
        return event

    def wait_for_space(self):
        """Event: room in the buffer."""
        event = self.sim.event("pipe.space")
        if self.free_space:
            event.succeed()
        else:
            self._space_waiters.append(event)
        return event

    def _wake(self, waiters: list) -> None:
        pending, waiters[:] = waiters[:], []
        for event in pending:
            event.succeed()
