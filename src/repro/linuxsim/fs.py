"""tmpfs: the in-memory filesystem of the Linux baseline.

Byte-accurate content in plain bytearrays; 4 KiB block accounting so
page-cache operations and zeroing can be charged per block exactly as
the paper describes (Section 5.4).
"""

from __future__ import annotations

from repro import params


class LxFsError(Exception):
    """errno-style failure."""


class _Node:
    def __init__(self, kind: str):
        self.kind = kind  # "file" | "dir"
        self.data = bytearray() if kind == "file" else None
        self.entries: dict[str, "_Node"] = {} if kind == "dir" else None
        self.links = 1


class TmpFs:
    """A tree of directories and byte-array files."""

    def __init__(self, block_bytes: int = params.LINUX_BLOCK_BYTES):
        self.block_bytes = block_bytes
        self.root = _Node("dir")

    # -- path handling ------------------------------------------------------

    @staticmethod
    def split(path: str) -> list[str]:
        return [part for part in path.split("/") if part and part != "."]

    def _walk(self, path: str) -> _Node:
        node = self.root
        for part in self.split(path):
            if node.kind != "dir":
                raise LxFsError(f"ENOTDIR crossing {part!r}")
            try:
                node = node.entries[part]
            except KeyError:
                raise LxFsError(f"ENOENT: {path!r}") from None
        return node

    def _walk_parent(self, path: str) -> tuple[_Node, str]:
        parts = self.split(path)
        if not parts:
            raise LxFsError("EINVAL: root")
        node = self.root
        for part in parts[:-1]:
            try:
                node = node.entries[part]
            except (KeyError, TypeError):
                raise LxFsError(f"ENOENT: {path!r}") from None
            if node.kind != "dir":
                raise LxFsError(f"ENOTDIR: {part!r}")
        return node, parts[-1]

    def path_depth(self, path: str) -> int:
        """Components walked (drives per-component lookup costs)."""
        return max(1, len(self.split(path)))

    # -- operations ----------------------------------------------------------

    def exists(self, path: str) -> bool:
        try:
            self._walk(path)
            return True
        except LxFsError:
            return False

    def lookup(self, path: str) -> _Node:
        return self._walk(path)

    def create(self, path: str) -> _Node:
        parent, name = self._walk_parent(path)
        if name in parent.entries:
            raise LxFsError(f"EEXIST: {path!r}")
        node = _Node("file")
        parent.entries[name] = node
        return node

    def mkdir(self, path: str) -> None:
        parent, name = self._walk_parent(path)
        if name in parent.entries:
            raise LxFsError(f"EEXIST: {path!r}")
        parent.entries[name] = _Node("dir")

    def unlink(self, path: str) -> None:
        parent, name = self._walk_parent(path)
        if name not in parent.entries:
            raise LxFsError(f"ENOENT: {path!r}")
        node = parent.entries[name]
        if node.kind == "dir" and node.entries:
            raise LxFsError(f"ENOTEMPTY: {path!r}")
        del parent.entries[name]
        node.links -= 1

    def link(self, existing: str, new_path: str) -> None:
        node = self._walk(existing)
        if node.kind == "dir":
            raise LxFsError("EPERM: hard link to directory")
        parent, name = self._walk_parent(new_path)
        if name in parent.entries:
            raise LxFsError(f"EEXIST: {new_path!r}")
        parent.entries[name] = node
        node.links += 1

    def rename(self, old_path: str, new_path: str) -> None:
        """rename(2): move an entry, replacing an existing target file."""
        old_parent, old_name = self._walk_parent(old_path)
        if old_name not in old_parent.entries:
            raise LxFsError(f"ENOENT: {old_path!r}")
        new_parent, new_name = self._walk_parent(new_path)
        moving = old_parent.entries[old_name]
        existing = new_parent.entries.get(new_name)
        if existing is not None and existing is not moving:
            if existing.kind == "dir":
                raise LxFsError(f"EISDIR: {new_path!r}")
            existing.links -= 1
        new_parent.entries[new_name] = moving
        del old_parent.entries[old_name]

    def readdir(self, path: str) -> list[str]:
        node = self._walk(path)
        if node.kind != "dir":
            raise LxFsError(f"ENOTDIR: {path!r}")
        return sorted(node.entries)

    # -- block accounting -------------------------------------------------------

    def blocks_of(self, nbytes: int) -> int:
        """4 KiB blocks covering ``nbytes``."""
        return -(-nbytes // self.block_bytes)

    def new_blocks_for_write(self, node: _Node, offset: int, count: int) -> int:
        """Blocks that a write [offset, offset+count) allocates fresh —
        these are the ones Linux zeroes before handing out."""
        old_blocks = self.blocks_of(len(node.data))
        new_blocks = self.blocks_of(max(len(node.data), offset + count))
        return max(0, new_blocks - old_blocks)
