"""NoC packets."""

from __future__ import annotations

import dataclasses
import itertools

_packet_ids = itertools.count()


@dataclasses.dataclass
class Packet:
    """A unit of NoC traffic.

    ``size_bytes`` drives the timing model (header + payload wire
    bytes); ``payload`` carries the simulated content (a message object
    or raw bytes) to the receiving hardware model.
    """

    source: int
    destination: int
    kind: str  # "message" | "mem_read" | "mem_write" | "mem_resp"
    size_bytes: int
    payload: object = None
    #: set by an installed fault plan: in-flight bit errors.  Receivers
    #: detect this through the NoC's link-level CRC and discard the
    #: packet (reliable DTU channels then retransmit).
    corrupted: bool = False
    #: causal trace context (mirrors the MessageHeader stamp; also set
    #: on headerless memory/config packets so RDMA transactions join
    #: the request trace).  ``trace_id < 0`` = untraced.
    trace_id: int = -1
    #: span id the in-network span of this packet is parented on.
    trace_parent: int = -1
    packet_id: int = dataclasses.field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"negative packet size: {self.size_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.packet_id} {self.kind} "
            f"{self.source}->{self.destination} {self.size_bytes}B>"
        )
