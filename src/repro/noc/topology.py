"""2D mesh topology: nodes, coordinates, and directed links."""

from __future__ import annotations


class MeshTopology:
    """A ``width`` x ``height`` mesh of nodes numbered row-major.

    Node ``n`` sits at ``(x, y) = (n % width, n // width)``.  Each pair
    of adjacent nodes is connected by two directed links, one per
    direction, because NoC channels are unidirectional wires.
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError(f"mesh dimensions must be positive: {width}x{height}")
        self.width = width
        self.height = height

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> tuple[int, int]:
        """The ``(x, y)`` position of ``node``."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """The node id at position ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> list[int]:
        """Nodes adjacent to ``node`` (2 to 4 of them)."""
        x, y = self.coordinates(node)
        adjacent = []
        if x > 0:
            adjacent.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            adjacent.append(self.node_at(x + 1, y))
        if y > 0:
            adjacent.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            adjacent.append(self.node_at(x, y + 1))
        return adjacent

    def links(self) -> list[tuple[int, int]]:
        """All directed links as ``(from, to)`` pairs."""
        return [
            (node, neighbor)
            for node in range(self.node_count)
            for neighbor in self.neighbors(node)
        ]

    def distance(self, a: int, b: int) -> int:
        """Manhattan distance (the minimal hop count) between two nodes."""
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by)

    def _check(self, node: int) -> None:
        if not (0 <= node < self.node_count):
            raise ValueError(
                f"node {node} outside mesh of {self.node_count} nodes"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MeshTopology {self.width}x{self.height}>"
