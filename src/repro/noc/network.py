"""The network facade: packet delivery with wormhole-style timing.

A packet's head flit advances one router per :data:`~repro.params`
hop latency; the body streams behind it at link bandwidth.  Each link
on the XY path is reserved for the packet's serialisation time, so two
packets crossing the same link queue behind each other.  Delivery
completes when the tail clears the last link.
"""

from __future__ import annotations

import typing

from repro import params
from repro.noc.link import Link
from repro.noc.packet import Packet
from repro.noc.routing import XYRouter
from repro.noc.topology import MeshTopology
from repro.obs.causal import TraceContext

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Simulator

#: Wire overhead per packet: routing/flow-control header flits.
PACKET_HEADER_BYTES = 16

DeliveryHandler = typing.Callable[[Packet], None]


class Network:
    """A mesh NoC that delivers packets to per-node handlers."""

    def __init__(
        self,
        sim: "Simulator",
        topology: MeshTopology,
        hop_cycles: int = params.NOC_HOP_CYCLES,
        bytes_per_cycle: int = params.NOC_BYTES_PER_CYCLE,
        router: XYRouter | None = None,
    ):
        if hop_cycles < 0:
            raise ValueError("hop latency cannot be negative")
        self.sim = sim
        self.topology = topology
        self.router = router or XYRouter(topology)
        self.hop_cycles = hop_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self._links: dict[tuple[int, int], Link] = {
            (a, b): Link(a, b, bytes_per_cycle) for a, b in topology.links()
        }
        # Every node also gets a real loopback link, so same-node
        # transfers queue, count, and report like any other traffic.
        for node in range(topology.node_count):
            self._links[(node, node)] = Link(node, node, bytes_per_cycle)
        self._handlers: dict[int, DeliveryHandler] = {}
        #: injection-side counters: every packet handed to the NoC.
        self.packets_injected = 0
        self.bytes_injected = 0
        #: delivery-side counters: packets that actually reached (or
        #: will reach) their handler — faults can make these lower.
        self.packets_sent = 0
        self.bytes_sent = 0
        #: optional tracer (see :meth:`enable_tracing`).
        self.tracer = None
        #: optional fault plan (see :mod:`repro.faults`); with None
        #: installed, delivery pays exactly one branch per packet.
        self.fault_plan = None
        #: optional sharded engine (see :mod:`repro.sim.shard`); when
        #: set, deliveries route through its cross-shard injection seam
        #: instead of this facade's own queue.
        self.shards = None
        self.packets_lost = 0
        self.packets_corrupted = 0
        self.packets_delayed = 0

    def enable_tracing(self, capacity: int | None = None) -> "object":
        """Record every packet injection; returns the Tracer.

        ``capacity`` bounds the record store with ring semantics (see
        :class:`repro.sim.tracing.Tracer`).
        """
        from repro.sim.tracing import Tracer

        self.tracer = Tracer(self.sim, enabled=True, capacity=capacity)
        return self.tracer

    # -- attachment ----------------------------------------------------------

    def attach(self, node: int, handler: DeliveryHandler) -> None:
        """Register the hardware model that receives packets at ``node``."""
        self.topology._check(node)
        if node in self._handlers:
            raise ValueError(f"node {node} already has an attached handler")
        self._handlers[node] = handler

    def link(self, source: int, destination: int) -> Link:
        """The directed link between two adjacent nodes (for stats/tests)."""
        try:
            return self._links[(source, destination)]
        except KeyError:
            raise ValueError(f"no link {source}->{destination}") from None

    def iter_links(self):
        """Iterate ``((source, destination), Link)`` pairs — the public
        face of the link table, for observers and reports (loopback
        links ``(n, n)`` included)."""
        return iter(self._links.items())

    # -- timing model ----------------------------------------------------------

    def delivery_time(self, packet: Packet) -> int:
        """Reserve the path now; return the absolute completion cycle."""
        wire_bytes = packet.size_bytes + PACKET_HEADER_BYTES
        now = self.sim.now
        if packet.source == packet.destination:
            # Local loopback through the node's own router: a real link,
            # so self-traffic queues and shows up in per-link stats.
            _start, end = self._links[(packet.source, packet.source)].reserve(
                now + self.hop_cycles, wire_bytes
            )
            return end
        head_arrival = now
        completion = now
        links = self._links
        hop_cycles = self.hop_cycles
        for hop in self.router.links_on_path(packet.source, packet.destination):
            start, end = links[hop].reserve(head_arrival + hop_cycles, wire_bytes)
            head_arrival = start  # downstream hops stall behind contention
            completion = end
        return completion

    # -- sending ----------------------------------------------------------------

    def send(self, packet: Packet) -> int:
        """Inject ``packet``; schedule delivery; return the completion cycle."""
        completion = self.delivery_time(packet)
        self.packets_injected += 1
        self.bytes_injected += packet.size_bytes
        handler = self._handlers.get(packet.destination)
        if handler is None:
            raise RuntimeError(
                f"packet to node {packet.destination} but nothing is attached there"
            )
        verdict = "deliver"
        if self.fault_plan is not None:
            # The fault verdict comes first: delivered-traffic counters
            # and the trace must record the packet's actual fate, not
            # the pre-fault plan.
            verdict, extra = self.fault_plan.judge(packet, self.sim.now, self)
            if verdict == "drop":
                # The packet burned its path reservations, then vanished;
                # the sender still observes the nominal completion time.
                self.packets_lost += 1
                if self.tracer is not None:
                    self.tracer.log(
                        packet.kind,
                        f"{packet.source}->{packet.destination} "
                        f"{packet.size_bytes}B DROPPED",
                    )
                if self.sim.obs is not None:
                    self._observe_packet(packet, completion, verdict)
                return completion
            if verdict == "corrupt":
                packet.corrupted = True
                self.packets_corrupted += 1
            if extra:
                self.packets_delayed += 1
                completion += extra
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        if self.tracer is not None:
            self.tracer.log(
                packet.kind,
                f"{packet.source}->{packet.destination} "
                f"{packet.size_bytes}B eta={completion}",
            )
        if self.sim.obs is not None:
            self._observe_packet(packet, completion, verdict)
        if self.shards is None:
            self.sim.schedule(completion - self.sim.now, handler, packet)
        else:
            # The cross-shard seam: deliveries land in the queue of the
            # destination node's shard (counted when crossing a boundary).
            self.shards.deliver(packet, handler, completion)
        return completion

    def _observe_packet(self, packet: Packet, completion: int,
                        verdict: str) -> None:
        """Span + counters for one injected packet (observer installed).

        The packet's span adopts the trace context the sending DTU
        stamped on it, and the *contended* share of the wire time — the
        difference between the reserved completion and the uncontended
        completion on an idle path — is recorded as a nested
        ``noc-queue`` span, so critical paths can attribute cycles to
        NoC contention separately from raw transfer time.
        """
        obs = self.sim.obs
        obs.count("noc.packets_injected")
        obs.count(f"noc.packets_{'delivered' if verdict != 'drop' else 'dropped'}")
        obs.count("noc.payload_bytes", packet.size_bytes)
        ctx = TraceContext(packet.trace_id, packet.trace_parent)
        now = self.sim.now
        span = obs.complete(
            packet.kind, "noc", packet.source, now, completion,
            parent=ctx, destination=packet.destination,
            bytes=packet.size_bytes, verdict=verdict,
        )
        queued = completion - self._uncontended_completion(packet, now)
        if queued > 0:
            obs.complete(
                "queueing", "noc-queue", packet.source,
                completion - queued, completion,
                parent=TraceContext(span.trace_id, span.span_id),
                destination=packet.destination, cycles=queued,
            )
        obs.sample_links(self)

    def _uncontended_completion(self, packet: Packet, now: int) -> int:
        """When the packet would complete on an idle path (no queueing)."""
        wire_bytes = packet.size_bytes + PACKET_HEADER_BYTES
        if packet.source == packet.destination:
            hops = 1
        else:
            hops = len(self.router.links_on_path(packet.source,
                                                 packet.destination))
        serialization = -(-wire_bytes // self.bytes_per_cycle)
        return now + hops * self.hop_cycles + max(serialization, 1)

    def transfer(self, packet: Packet, tag: str | None = None):
        """An event that triggers when ``packet`` has been delivered.

        ``tag`` charges the transfer latency to the time ledger (the
        paper's "Xfers" category).
        """
        completion = self.send(packet)
        return self.sim.delay(completion - self.sim.now, tag=tag)

    # -- statistics ----------------------------------------------------------------

    def utilization_report(self) -> dict[tuple[int, int], float]:
        """Exact per-link utilisation over the elapsed simulation time.

        Includes loopback links (``(n, n)``) for same-node transfers;
        only occupancy inside ``[0, now)`` counts, so values are exact
        and never clamped.
        """
        elapsed = self.sim.now
        return {
            key: link.utilization(elapsed)
            for key, link in self._links.items()
            if link.packets
        }
