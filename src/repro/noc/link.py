"""Directed NoC links as serially-reserved resources."""

from __future__ import annotations

import bisect


class Link:
    """One directed channel between adjacent routers.

    A packet occupies the link for its serialisation time
    (``ceil(bytes / bytes_per_cycle)``).  Reservations are granted in
    request order: a link keeps the cycle at which it next becomes free
    and pushes later packets behind it, which models FIFO queueing
    contention without simulating individual flits.

    Occupancy windows are granted in non-decreasing order and never
    overlap, so the link keeps a compact merged-interval record
    (contiguous windows collapse into one) from which
    :meth:`busy_within` computes the exact occupancy inside any
    ``[0, t)`` prefix — including windows that straddle or lie beyond
    ``t``, which a bare busy-cycle counter would overcount.
    """

    __slots__ = ("source", "destination", "bytes_per_cycle", "next_free",
                 "busy_cycles", "packets", "_window_starts", "_window_ends",
                 "_window_cum")

    def __init__(self, source: int, destination: int, bytes_per_cycle: int):
        if bytes_per_cycle < 1:
            raise ValueError("link bandwidth must be at least 1 byte/cycle")
        self.source = source
        self.destination = destination
        self.bytes_per_cycle = bytes_per_cycle
        self.next_free = 0
        self.busy_cycles = 0
        self.packets = 0
        #: merged occupancy windows (sorted, disjoint) plus cumulative
        #: busy cycles up to each window's end.
        self._window_starts: list[int] = []
        self._window_ends: list[int] = []
        self._window_cum: list[int] = []

    def serialization_cycles(self, nbytes: int) -> int:
        """Cycles to push ``nbytes`` through this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        # Pure-integer ceiling division: float division plus math.ceil
        # would round differently for very large byte counts.
        duration = -(-nbytes // self.bytes_per_cycle)
        return duration if duration > 0 else 1

    def reserve(self, earliest: int, nbytes: int) -> tuple[int, int]:
        """Reserve the link for ``nbytes`` no earlier than ``earliest``.

        Returns ``(start, end)`` of the granted occupancy window.  This
        is the NoC's hottest call — every packet reserves every link on
        its path — so it stays branch-light: one integer division, one
        comparison against ``next_free``, and a constant-time extension
        of the merged occupancy record in the common back-to-back case.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        duration = -(-nbytes // self.bytes_per_cycle)
        if duration <= 0:
            duration = 1
        next_free = self.next_free
        start = earliest if earliest > next_free else next_free
        end = start + duration
        self.next_free = end
        self.busy_cycles += duration
        self.packets += 1
        ends = self._window_ends
        if ends and ends[-1] == start:
            # Back-to-back with the previous window: extend it.
            ends[-1] = end
            self._window_cum[-1] += duration
        else:
            cum = self._window_cum
            self._window_starts.append(start)
            ends.append(end)
            cum.append((cum[-1] if cum else 0) + duration)
        return start, end

    def busy_within(self, elapsed: int) -> int:
        """Exact occupied cycles inside the window ``[0, elapsed)``."""
        if elapsed <= 0:
            return 0
        # Windows whose end is <= elapsed count fully...
        index = bisect.bisect_right(self._window_ends, elapsed)
        busy = self._window_cum[index - 1] if index else 0
        # ...plus the in-window prefix of a straddling reservation.
        if (index < len(self._window_starts)
                and self._window_starts[index] < elapsed):
            busy += elapsed - self._window_starts[index]
        return busy

    def utilization(self, elapsed: int) -> float:
        """Exact fraction of ``[0, elapsed)`` this link was occupied.

        Only occupancy inside the elapsed window counts; reservations
        extending past (or granted beyond) ``elapsed`` contribute only
        their in-window prefix, so the result is exact and never needs
        clamping.
        """
        if elapsed <= 0:
            return 0.0
        return self.busy_within(elapsed) / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.source}->{self.destination} free@{self.next_free}>"
