"""Directed NoC links as serially-reserved resources."""

from __future__ import annotations

import math


class Link:
    """One directed channel between adjacent routers.

    A packet occupies the link for its serialisation time
    (``ceil(bytes / bytes_per_cycle)``).  Reservations are granted in
    request order: a link keeps the cycle at which it next becomes free
    and pushes later packets behind it, which models FIFO queueing
    contention without simulating individual flits.
    """

    __slots__ = ("source", "destination", "bytes_per_cycle", "next_free", "busy_cycles", "packets")

    def __init__(self, source: int, destination: int, bytes_per_cycle: int):
        if bytes_per_cycle < 1:
            raise ValueError("link bandwidth must be at least 1 byte/cycle")
        self.source = source
        self.destination = destination
        self.bytes_per_cycle = bytes_per_cycle
        self.next_free = 0
        self.busy_cycles = 0
        self.packets = 0

    def serialization_cycles(self, nbytes: int) -> int:
        """Cycles to push ``nbytes`` through this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return max(1, math.ceil(nbytes / self.bytes_per_cycle))

    def reserve(self, earliest: int, nbytes: int) -> tuple[int, int]:
        """Reserve the link for ``nbytes`` no earlier than ``earliest``.

        Returns ``(start, end)`` of the granted occupancy window.
        """
        duration = self.serialization_cycles(nbytes)
        start = max(earliest, self.next_free)
        end = start + duration
        self.next_free = end
        self.busy_cycles += duration
        self.packets += 1
        return start, end

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles this link was occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.source}->{self.destination} free@{self.next_free}>"
