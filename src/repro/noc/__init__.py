"""Packet-switched network-on-chip substrate.

The Tomahawk platform connects all processing elements and the DRAM
module over a NoC (paper Section 1.4).  This package models a 2D mesh
with dimension-ordered (XY) routing and per-link contention: every link
is a serial resource that packets reserve for their serialisation time,
which is a standard wormhole approximation that avoids per-flit events
while still producing queueing under load.
"""

from repro.noc.topology import MeshTopology
from repro.noc.routing import XYRouter, YXRouter
from repro.noc.link import Link
from repro.noc.packet import Packet
from repro.noc.network import Network

__all__ = ["MeshTopology", "XYRouter", "YXRouter", "Link", "Packet", "Network"]
