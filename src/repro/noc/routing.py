"""Dimension-ordered (XY) routing.

XY routing first corrects the horizontal coordinate, then the vertical
one.  It is minimal and — because the turn from Y back to X never
happens — provably deadlock-free on a mesh, which is why real NoCs
(including Tomahawk's) use it as the default.
"""

from __future__ import annotations

from repro.noc.topology import MeshTopology


class XYRouter:
    """Computes XY paths on a mesh."""

    def __init__(self, topology: MeshTopology):
        self.topology = topology
        # The topology is immutable, so (source, destination) -> links
        # is a pure function; cache it (route() dominates delivery-time
        # computation on large meshes otherwise).  Subclasses share the
        # cache machinery but not the cache — it keys off self.route.
        self._links_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def route(self, source: int, destination: int) -> list[int]:
        """The node sequence from ``source`` to ``destination`` inclusive."""
        topo = self.topology
        sx, sy = topo.coordinates(source)
        dx, dy = topo.coordinates(destination)
        path = [source]
        x, y = sx, sy
        while x != dx:
            x += 1 if dx > x else -1
            path.append(topo.node_at(x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append(topo.node_at(x, y))
        return path

    def hops(self, source: int, destination: int) -> int:
        """Number of links traversed (0 for self-sends)."""
        return self.topology.distance(source, destination)

    def links_on_path(self, source: int, destination: int) -> list[tuple[int, int]]:
        """The directed links an XY packet occupies, in order.

        The returned list is cached and shared — callers must treat it
        as read-only.
        """
        key = (source, destination)
        links = self._links_cache.get(key)
        if links is None:
            path = self.route(source, destination)
            links = list(zip(path, path[1:]))
            self._links_cache[key] = links
        return links


class YXRouter(XYRouter):
    """Dimension-ordered routing with the vertical dimension first.

    Equally minimal and deadlock-free; distributing traffic between XY
    and YX routers is a classic way to decorrelate hot links (used by
    the routing ablation to show the timing model responds to path
    choice).
    """

    def route(self, source: int, destination: int) -> list[int]:
        topo = self.topology
        sx, sy = topo.coordinates(source)
        dx, dy = topo.coordinates(destination)
        path = [source]
        x, y = sx, sy
        while y != dy:
            y += 1 if dy > y else -1
            path.append(topo.node_at(x, y))
        while x != dx:
            x += 1 if dx > x else -1
            path.append(topo.node_at(x, y))
        return path
