"""Lightweight execution tracing for debugging and experiment reports."""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class TraceRecord(typing.NamedTuple):
    time: int
    category: str
    text: str


class Tracer:
    """Collects timestamped records; disabled tracers cost one branch.

    ``capacity`` bounds the stored records with ring semantics: once
    full, each new record evicts the oldest and bumps
    :attr:`dropped_records` — long fault sweeps keep the newest history
    instead of growing without bound.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False,
                 capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.sim = sim
        self.enabled = enabled
        self.capacity = capacity
        self._records: collections.deque = collections.deque(maxlen=capacity)
        self.dropped_records = 0

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def log(self, category: str, text: str) -> None:
        """Record ``text`` under ``category`` at the current cycle."""
        if self.enabled:
            if (self.capacity is not None
                    and len(self._records) == self.capacity):
                self.dropped_records += 1
            self._records.append(TraceRecord(self.sim.now, category, text))

    def filter(self, category: str) -> list[TraceRecord]:
        """All retained records of one category."""
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        self._records.clear()
        self.dropped_records = 0

    def render(self) -> str:
        """Human-readable dump of the trace."""
        return "\n".join(
            f"[{r.time:>10}] {r.category:<12} {r.text}" for r in self._records
        )
