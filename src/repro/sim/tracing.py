"""Lightweight execution tracing for debugging and experiment reports."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class TraceRecord(typing.NamedTuple):
    time: int
    category: str
    text: str


class Tracer:
    """Collects timestamped records; disabled tracers cost one branch."""

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self.sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def log(self, category: str, text: str) -> None:
        """Record ``text`` under ``category`` at the current cycle."""
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, text))

    def filter(self, category: str) -> list[TraceRecord]:
        """All records of one category."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def render(self) -> str:
        """Human-readable dump of the trace."""
        return "\n".join(
            f"[{r.time:>10}] {r.category:<12} {r.text}" for r in self.records
        )
