"""Processes: generator-driven activities on the simulator.

A process wraps a generator.  The generator yields:

- an :class:`~repro.sim.events.Event` — block until it triggers; the
  event's value is sent back into the generator (its exception is thrown
  for failed events),
- another :class:`Process` — join it (block until done, receive result),
- an ``int`` — shorthand for ``sim.delay(n)`` with no ledger tag.

When the generator returns, the process's :attr:`done` event succeeds
with the return value; an uncaught exception fails :attr:`done`.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Process:
    """A running activity driven by a generator."""

    __slots__ = ("sim", "name", "generator", "done", "_waiting_on")

    def __init__(self, sim: "Simulator", generator, name: str = "process"):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self.name = name
        self.generator = generator
        self.done = Event(sim, f"{name}.done")
        self._waiting_on: Event | None = None
        sim.call_soon(self._start)

    # -- driving the generator ----------------------------------------------

    def _start(self, _=None) -> None:
        self._advance(self.generator.send, None)

    def _wake(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._advance(self.generator.send, event.value)
        else:
            self._advance(self.generator.throw, event.value)

    def _advance(self, resume, value) -> None:
        """Resume the generator (``resume`` is its ``send`` or ``throw``)
        with ``value`` and block on whatever it yields next."""
        try:
            target = resume(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as exc:
            self.done.fail(exc)
            return
        self._block_on(target)

    def _block_on(self, target) -> None:
        if type(target) is not Event:
            if isinstance(target, Process):
                target = target.done
            elif isinstance(target, int):
                target = self.sim.delay(target)
            elif not isinstance(target, Event):
                self.done.fail(
                    TypeError(
                        f"process {self.name!r} yielded {target!r}; expected "
                        "an Event, a Process, or an int delay"
                    )
                )
                return
        self._waiting_on = target
        target.add_callback(self._wake)

    # -- external control -----------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self.done.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current cycle.

        Only valid while the process is blocked; a process that is
        currently running cannot be interrupted (it is the caller).
        """
        if not self.alive:
            return
        waiting = self._waiting_on
        if waiting is None:
            raise RuntimeError(f"cannot interrupt running process {self.name!r}")
        waiting.discard_callback(self._wake)
        self._waiting_on = None
        self.sim.call_soon(
            lambda _: self._advance(self.generator.throw, Interrupt(cause))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"
