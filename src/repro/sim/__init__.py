"""Discrete-event simulation kernel.

Everything in this reproduction — the NoC, the DTUs, the M3 OS, and the
Linux baseline — runs on this small cycle-based discrete-event engine.

The engine models *time in cycles* (integers).  Software running "on a
core" is written as a Python generator that yields simulation primitives:

- ``yield sim.delay(n)``          advance the process by ``n`` cycles
- ``yield event``                 block until the :class:`Event` triggers
- ``yield process``               join another :class:`Process`
- ``yield from subroutine(...)``  ordinary generator composition

A :class:`TimeLedger` attached to the simulator attributes delay cycles
to categories (``app`` / ``os`` / ``xfer``), which is how the evaluation
harness regenerates the stacked-bar breakdowns of the paper's figures.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, Interrupt
from repro.sim.process import Process
from repro.sim.ledger import TimeLedger, Tag
from repro.sim.resources import Mailbox, Semaphore, Signal

__all__ = [
    "Simulator",
    "Event",
    "Interrupt",
    "Process",
    "TimeLedger",
    "Tag",
    "Mailbox",
    "Semaphore",
    "Signal",
]
