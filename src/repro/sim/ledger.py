"""Tagged cycle accounting.

The paper's figures break execution time into stacked categories
("App", "Xfers", "OS").  The :class:`TimeLedger` accumulates, per tag,
every cycle of delay that the simulation charges, so the evaluation
harness can reconstruct the same stacks.

The benchmark setups in the paper are deliberately serial (Section 5.1:
"at no point in time multiple PEs were doing useful work in parallel"),
so the sum of charged cycles approximates wall-clock time; for parallel
experiments (Figure 6) the harness uses wall-clock spans instead.
"""

from __future__ import annotations


class Tag:
    """Canonical ledger tags used throughout the reproduction."""

    APP = "app"  # application computation
    OS = "os"  # OS/library software path (syscall handling, libm3, VFS...)
    XFER = "xfer"  # data transfers (DTU/NoC, or Linux memcpy)
    IDLE = "idle"  # explicit waiting (not part of any stack)
    FAULT = "fault"  # injected fault delay (repro.faults; empty by default)


class TimeLedger:
    """Accumulates cycles per tag; supports scoped measurement windows."""

    def __init__(self):
        self._totals: dict[str, int] = {}
        #: timestamped annotations (cycle, tag, text) — used by the
        #: fault-injection layer so injected faults appear alongside the
        #: cycle accounting; empty (and free) in fault-less runs.
        self.marks: list[tuple] = []

    def charge(self, tag: str, cycles: int) -> None:
        """Attribute ``cycles`` to ``tag``."""
        if cycles < 0:
            raise ValueError(f"cannot charge negative cycles: {cycles}")
        if tag is None:
            return
        self._totals[tag] = self._totals.get(tag, 0) + cycles

    def mark(self, cycle: int, tag: str, text: str) -> None:
        """Record a timestamped annotation (no cycles charged)."""
        self.marks.append((cycle, tag, text))

    def total(self, tag: str) -> int:
        """Cycles charged to ``tag`` so far."""
        return self._totals.get(tag, 0)

    def snapshot(self) -> dict[str, int]:
        """A copy of all per-tag totals."""
        return dict(self._totals)

    def since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Per-tag difference between now and an earlier :meth:`snapshot`."""
        diff = {}
        for tag, total in self._totals.items():
            delta = total - snapshot.get(tag, 0)
            if delta:
                diff[tag] = delta
        return diff

    def reset(self) -> None:
        """Clear all totals and marks."""
        self._totals.clear()
        self.marks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}={c}" for t, c in sorted(self._totals.items()))
        return f"<TimeLedger {inner}>"
