"""Blocking resources built on events: mailboxes, semaphores, signals.

These are convenience synchronisation objects for simulated software.
They do not model hardware — the DTU has its own ringbuffer/credit
machinery — but OS services and the Linux baseline use them for
scheduler queues and producer/consumer hand-off.

Deadlock freedom: every blocking primitive here either offers a
``timeout`` (``Signal.wait``) or is only used in request/response pairs
where the waker is a simulator process that cannot be lost (Mailbox and
Semaphore waiters are woken in FIFO order by ``put``/``release``; the
kernel and Linux baselines never block on a mailbox whose producer is
not itself scheduled).  Fault-prone setups must use the timeout variants
— ``DTU.wait_message(timeout=...)``, ``Signal.wait(timeout=...)`` — so a
lost message can never stall a process forever.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class WaitTimeout(Exception):
    """A bounded ``Signal.wait`` expired before the signal fired."""


class Mailbox:
    """Unbounded FIFO of items with blocking receive."""

    __slots__ = ("sim", "name", "_items", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "mailbox"):
        self.sim = sim
        self.name = name
        self._items: collections.deque = collections.deque()
        self._waiters: collections.deque[Event] = collections.deque()

    def put(self, item: object) -> None:
        """Deposit an item, waking the oldest waiter if any.

        The wake-up is routed through ``sim.call_soon`` rather than
        triggering the waiter's event inside the producer's callback:
        the producer finishes its own callback before the consumer's
        event even becomes triggered, so a producer can never observe
        (or be re-entered through) half-woken consumer state.  FIFO
        hand-off order is preserved — ``call_soon`` is itself FIFO.
        """
        if self._waiters:
            self.sim.call_soon(self._waiters.popleft().succeed, item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that yields the next item (immediately if available)."""
        event = Event(self.sim, f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._waiters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Semaphore:
    """Counting semaphore with FIFO wake-up order."""

    __slots__ = ("sim", "name", "_tokens", "_waiters")

    def __init__(self, sim: "Simulator", tokens: int = 0, name: str = "sem"):
        if tokens < 0:
            raise ValueError("initial token count must be non-negative")
        self.sim = sim
        self.name = name
        self._tokens = tokens
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def tokens(self) -> int:
        return self._tokens

    def release(self, count: int = 1) -> None:
        """Add tokens, waking as many waiters as tokens allow.

        Wake-ups go through ``sim.call_soon`` (see :meth:`Mailbox.put`):
        the releaser's callback completes before any waiter resumes, and
        waiters resume in FIFO order.
        """
        if count < 0:
            raise ValueError("cannot release a negative count")
        self._tokens += count
        call_soon = self.sim.call_soon
        while self._tokens and self._waiters:
            self._tokens -= 1
            call_soon(self._waiters.popleft().succeed, None)

    def acquire(self) -> Event:
        """An event that triggers once a token has been taken."""
        event = Event(self.sim, f"{self.name}.acquire")
        if self._tokens:
            self._tokens -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class Signal:
    """A re-armable condition: waiters block until the next :meth:`fire`.

    Unlike an :class:`Event`, a signal can fire many times; each fire
    wakes everyone currently waiting.  Used to model "poll the DTU until
    a message arrives" without busy-looping the simulator.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "signal"):
        self.sim = sim
        self.name = name
        #: pending (event, timer-handle) pairs; the handle is None for
        #: unbounded waits.
        self._waiters: list[tuple[Event, list | None]] = []

    def wait(self, timeout: int | None = None) -> Event:
        """An event for the next firing.

        With ``timeout``, the event instead *fails* with
        :class:`WaitTimeout` after that many cycles if the signal has
        not fired — the waiter is deregistered, so abandoned waits do
        not accumulate.  When the signal fires first, the expiry timer
        is cancelled (:meth:`Simulator.cancel`), so satisfied waits
        leave no dead callbacks in the event queue.
        """
        event = Event(self.sim, f"{self.name}.wait")
        if timeout is None:
            self._waiters.append((event, None))
            return event
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")

        def expire(_):
            if not event.triggered:
                self._waiters.remove((event, timer))
                event.fail(WaitTimeout(
                    f"{self.name} did not fire within {timeout} cycles"
                ))

        timer = self.sim.schedule(timeout, expire)
        self._waiters.append((event, timer))
        return event

    def fire(self, value: object = None) -> None:
        """Wake all current waiters with ``value``."""
        waiters, self._waiters = self._waiters, []
        cancel = self.sim.cancel
        for event, timer in waiters:
            if timer is not None:
                cancel(timer)
            event.succeed(value)

    @property
    def waiting(self) -> int:
        return len(self._waiters)
