"""Blocking resources built on events: mailboxes, semaphores, signals.

These are convenience synchronisation objects for simulated software.
They do not model hardware — the DTU has its own ringbuffer/credit
machinery — but OS services and the Linux baseline use them for
scheduler queues and producer/consumer hand-off.

Deadlock freedom: every blocking primitive here either offers a
``timeout`` (``Signal.wait``) or is only used in request/response pairs
where the waker is a simulator process that cannot be lost (Mailbox and
Semaphore waiters are woken in FIFO order by ``put``/``release``; the
kernel and Linux baselines never block on a mailbox whose producer is
not itself scheduled).  Fault-prone setups must use the timeout variants
— ``DTU.wait_message(timeout=...)``, ``Signal.wait(timeout=...)`` — so a
lost message can never stall a process forever.
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class WaitTimeout(Exception):
    """A bounded ``Signal.wait`` expired before the signal fired."""


class Mailbox:
    """Unbounded FIFO of items with blocking receive."""

    def __init__(self, sim: "Simulator", name: str = "mailbox"):
        self.sim = sim
        self.name = name
        self._items: collections.deque = collections.deque()
        self._waiters: collections.deque[Event] = collections.deque()

    def put(self, item: object) -> None:
        """Deposit an item, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that yields the next item (immediately if available)."""
        event = Event(self.sim, f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._waiters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Semaphore:
    """Counting semaphore with FIFO wake-up order."""

    def __init__(self, sim: "Simulator", tokens: int = 0, name: str = "sem"):
        if tokens < 0:
            raise ValueError("initial token count must be non-negative")
        self.sim = sim
        self.name = name
        self._tokens = tokens
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def tokens(self) -> int:
        return self._tokens

    def release(self, count: int = 1) -> None:
        """Add tokens, waking as many waiters as tokens allow."""
        if count < 0:
            raise ValueError("cannot release a negative count")
        self._tokens += count
        while self._tokens and self._waiters:
            self._tokens -= 1
            self._waiters.popleft().succeed()

    def acquire(self) -> Event:
        """An event that triggers once a token has been taken."""
        event = Event(self.sim, f"{self.name}.acquire")
        if self._tokens:
            self._tokens -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event


class Signal:
    """A re-armable condition: waiters block until the next :meth:`fire`.

    Unlike an :class:`Event`, a signal can fire many times; each fire
    wakes everyone currently waiting.  Used to model "poll the DTU until
    a message arrives" without busy-looping the simulator.
    """

    def __init__(self, sim: "Simulator", name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []

    def wait(self, timeout: int | None = None) -> Event:
        """An event for the next firing.

        With ``timeout``, the event instead *fails* with
        :class:`WaitTimeout` after that many cycles if the signal has
        not fired — the waiter is deregistered, so abandoned waits do
        not accumulate.
        """
        event = Event(self.sim, f"{self.name}.wait")
        self._waiters.append(event)
        if timeout is not None:
            if timeout <= 0:
                raise ValueError(f"timeout must be positive, got {timeout}")

            def expire(_):
                if not event.triggered:
                    self._waiters.remove(event)
                    event.fail(WaitTimeout(
                        f"{self.name} did not fire within {timeout} cycles"
                    ))

            self.sim.schedule(timeout, expire)
        return event

    def fire(self, value: object = None) -> None:
        """Wake all current waiters with ``value``."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)

    @property
    def waiting(self) -> int:
        return len(self._waiters)
