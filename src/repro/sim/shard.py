"""Sharded simulation: partition the mesh, one event queue per shard.

Two layers, one seam (parti-gem5's shape, PAPERS.md):

- :class:`ShardPlan` — the partition itself: every NoC node is
  assigned to a shard, shards follow the kernel-domain boundaries, and
  the plan derives the **conservative quantum** — the minimum latency
  of any NoC link crossing a shard boundary, i.e. the soonest a send
  on one shard can possibly be observed by another.  No cross-shard
  event may take effect sooner, so shards separated by a quantum
  barrier can never miss each other's influence.

- :class:`ShardedSimulator` — a drop-in :class:`~repro.sim.Simulator`
  facade over one event queue per shard (``M3System(shards=n)``).
  Every entry is tagged with a *shared* ``(cycle, seq)`` key, and the
  facade always executes the globally-smallest key, so the execution
  order — and therefore every result byte — is identical to the
  monolithic engine at any shard count.  Cross-shard NoC deliveries go
  through the explicit injection seam (:meth:`ShardedSimulator.deliver`
  + :meth:`Simulator.schedule_at`) instead of the sender's own queue;
  this is the exact-order limit of barrier synchronisation (a barrier
  after every event) and the accounting point for boundary traffic.

- :func:`run_partitioned` — the relaxed, *parallel* mode for
  self-contained shard workloads: each shard is its own ``Simulator``
  (optionally in its own **worker process**), windows of at most one
  quantum run with no synchronisation, and cross-shard messages travel
  as serialisable ``(cycle, seq, channel, payload)`` records exchanged
  at the window barriers and drained in ``(cycle, source shard, seq)``
  order.  Results are byte-identical for any worker count; wall-clock
  scales with host cores (each worker holds its own GIL).

The full-system evals use the exact mode (determinism contract first);
``run_partitioned`` is the engine-level path that turns spare host
cores into simulated cycles — see docs/performance.md.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import typing

from repro.sim.engine import Simulator, _as_cycles
from repro.sim.ledger import TimeLedger

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.packet import Packet
    from repro.noc.topology import MeshTopology


class ShardPlan:
    """Node -> shard assignment plus the conservative quantum.

    ``node_to_shard`` covers every NoC node (PEs, DRAM, device nodes);
    shard ids are dense ``0..shard_count-1``.  ``quantum`` is the
    minimum latency of a boundary-crossing link: the legal lookahead
    for barrier-synchronised execution.
    """

    __slots__ = ("node_to_shard", "shard_count", "quantum")

    def __init__(self, node_to_shard, quantum: int):
        self.node_to_shard = list(node_to_shard)
        if not self.node_to_shard:
            raise ValueError("empty shard plan")
        present = set(self.node_to_shard)
        self.shard_count = max(present) + 1
        missing = set(range(self.shard_count)) - present
        if min(present) < 0 or missing:
            raise ValueError(
                f"shard ids must be dense 0..n-1, got {sorted(present)}"
            )
        if quantum < 1:
            raise ValueError(f"quantum must be at least one cycle: {quantum}")
        self.quantum = quantum

    @classmethod
    def from_domains(cls, domains, shards: int, topology: "MeshTopology",
                     hop_cycles: int) -> "ShardPlan":
        """Partition along kernel-domain boundaries.

        ``domains`` is the ordered list of kernel-domain node sets;
        they are grouped into ``shards`` contiguous groups (the same
        chunking rule the kernel partition itself uses).  Mesh nodes
        belonging to no domain — the DRAM node, device nodes wired up
        after boot, unused slots — are assigned to the shard of the
        nearest domain node (Manhattan distance, lowest node id on
        ties), so the whole mesh is covered deterministically.
        """
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if shards > len(domains):
            raise ValueError(
                f"{len(domains)} kernel domains cannot split into "
                f"{shards} shards (shards follow domain boundaries)"
            )
        node_to_shard = [-1] * topology.node_count
        share, extra = divmod(len(domains), shards)
        start = 0
        for shard in range(shards):
            size = share + (1 if shard < extra else 0)
            for domain in list(domains)[start:start + size]:
                for node in domain:
                    if node_to_shard[node] != -1:
                        raise ValueError(f"node {node} in two domains")
                    node_to_shard[node] = shard
            start += size
        assigned = [n for n, s in enumerate(node_to_shard) if s != -1]
        for node, shard in enumerate(node_to_shard):
            if shard == -1:
                nearest = min(
                    assigned,
                    key=lambda a: (topology.distance(node, a), a),
                )
                node_to_shard[node] = node_to_shard[nearest]
        # The conservative quantum: the cheapest boundary crossing.
        # Links are uniform-latency here, so this is ``hop_cycles``,
        # but the derivation stays per-link for future heterogeneity.
        boundary = [
            hop_cycles
            for a, b in topology.links()
            if node_to_shard[a] != node_to_shard[b]
        ]
        quantum = min(boundary) if boundary else max(1, hop_cycles)
        return cls(node_to_shard, quantum)

    def shard_of(self, node: int) -> int:
        return self.node_to_shard[node]

    def boundary_links(self, topology: "MeshTopology") -> list:
        """Directed topology links crossing a shard boundary."""
        return [
            (a, b)
            for a, b in topology.links()
            if self.node_to_shard[a] != self.node_to_shard[b]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardPlan {self.shard_count} shards over "
                f"{len(self.node_to_shard)} nodes, quantum={self.quantum}>")


class _TaggedBucket:
    """Deque stand-in for a shard member's ``_bucket``.

    ``Event._dispatch`` appends ``[callback, event]`` pairs straight to
    ``sim._bucket`` (the monolithic hot path); under sharding every
    entry needs a global ``(cycle, seq)`` tag, so appends are rewritten
    into tagged heap entries.  Always empty from the queue's point of
    view — ``pending_events`` counts the heap instead.
    """

    __slots__ = ("_member",)

    def __init__(self, member: "_ShardMember"):
        self._member = member

    def append(self, entry) -> None:
        member = self._member
        heapq.heappush(
            member._heap,
            [member.now, next(member._sequence), entry[0], entry[1]],
        )

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return False


class _ShardMember(Simulator):
    """One shard's event queue: heap-only, globally-sequenced entries.

    Members never run themselves — the :class:`ShardedSimulator` pops
    the globally-smallest ``(cycle, seq)`` entry across all members and
    keeps every member's clock in step, so components can hold a member
    (their node's shard) or the facade interchangeably.
    """

    __slots__ = ("member_id",)

    def __init__(self, member_id: int, sequence):
        super().__init__()
        self.member_id = member_id
        self._sequence = sequence  # shared across all members
        self._bucket = _TaggedBucket(self)

    def schedule(self, delay: int, callback, argument: object = None) -> list:
        if type(delay) is not int:
            delay = _as_cycles(delay, "delay")
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = [self.now + delay, next(self._sequence), callback, argument]
        heapq.heappush(self._heap, entry)
        return entry

    def call_soon(self, callback, argument: object = None) -> list:
        entry = [self.now, next(self._sequence), callback, argument]
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_at(self, when: int, callback, argument: object = None) -> list:
        if type(when) is not int:
            when = _as_cycles(when, "when")
        if when < self.now:
            raise ValueError(
                f"cannot schedule into the past (when={when}, now={self.now})"
            )
        entry = [when, next(self._sequence), callback, argument]
        heapq.heappush(self._heap, entry)
        return entry

    def delay(self, cycles: int, tag: str | None = None):
        if type(cycles) is not int:
            cycles = _as_cycles(cycles, "delay")
        if cycles < 0:
            raise ValueError(f"negative delay: {cycles}")
        if tag is not None:
            self.ledger.charge(tag, cycles)
        from repro.sim.events import Event

        done = Event(self, "delay")
        heapq.heappush(
            self._heap,
            [self.now + cycles, next(self._sequence), done.succeed, None],
        )
        return done

    def step(self):  # pragma: no cover - guard rail
        raise RuntimeError("shard members are driven by the ShardedSimulator")

    def run(self, until=None, until_event=None):  # pragma: no cover
        raise RuntimeError("shard members are driven by the ShardedSimulator")


class ShardedSimulator:
    """A :class:`Simulator`-compatible facade over per-shard queues.

    Exact mode: the merge loop always executes the globally-smallest
    ``(cycle, seq)`` entry, which reproduces the monolithic engine's
    execution order — and therefore its results, byte for byte — at any
    shard count.  Driver-level calls (``schedule``, ``event``,
    ``process``…) land on the control member (shard 0); hardware
    components are built against their own node's member via
    :meth:`member_for`.  Cross-shard NoC deliveries arrive through
    :meth:`deliver`, the explicit injection seam, and are counted.
    """

    def __init__(self, plan: ShardPlan):
        self.plan = plan
        sequence = itertools.count()
        self.members = [
            _ShardMember(member_id, sequence)
            for member_id in range(plan.shard_count)
        ]
        self.ledger = TimeLedger()
        for member in self.members:
            member.ledger = self.ledger
        self._control = self.members[0]
        self._bucket = _TaggedBucket(self._control)
        #: boundary-traffic accounting (the egress seam's view).
        self.cross_packets = 0
        self.cross_bytes = 0

    # -- clock and observability -------------------------------------------

    @property
    def now(self) -> int:
        return self._control.now

    @property
    def obs(self):
        return self._control.obs

    @obs.setter
    def obs(self, value) -> None:
        for member in self.members:
            member.obs = value

    def member_for(self, node: int) -> _ShardMember:
        """The member simulator owning ``node``'s shard."""
        return self.members[self.plan.node_to_shard[node]]

    # -- scheduling (driver-level calls land on the control member) --------

    def schedule(self, delay: int, callback, argument: object = None) -> list:
        return self._control.schedule(delay, callback, argument)

    def call_soon(self, callback, argument: object = None) -> list:
        return self._control.call_soon(callback, argument)

    def schedule_at(self, when: int, callback, argument: object = None) -> list:
        return self._control.schedule_at(when, callback, argument)

    def delay(self, cycles: int, tag: str | None = None):
        return self._control.delay(cycles, tag)

    def event(self, name: str = ""):
        return self._control.event(name)

    def process(self, generator, name: str = "process"):
        return self._control.process(generator, name)

    def cancel(self, handle: list) -> None:
        # Blanking is member-agnostic; the count lands on the control
        # member, and whichever member pops the blanked entry decrements
        # its own counter — the facade-level sum stays exact.
        if handle[-2] is not None:
            handle[-2] = None
            self._control._cancelled += 1

    # -- the cross-shard injection seam ------------------------------------

    def deliver(self, packet: "Packet", handler, completion: int) -> None:
        """Schedule a NoC delivery into the destination node's shard.

        ``Network.send`` routes every delivery through here instead of
        its own queue; a boundary-crossing packet is injected into the
        *peer* shard's queue at its completion cycle and counted.
        """
        node_to_shard = self.plan.node_to_shard
        if node_to_shard[packet.source] != node_to_shard[packet.destination]:
            self.cross_packets += 1
            self.cross_bytes += packet.size_bytes
        self.members[node_to_shard[packet.destination]].schedule_at(
            completion, handler, packet
        )

    # -- execution ----------------------------------------------------------

    def _advance_clocks(self, when: int) -> None:
        for member in self.members:
            member.now = when

    def _pick(self):
        """The member holding the globally-smallest live entry."""
        best = None
        best_key = None
        for member in self.members:
            heap = member._heap
            while heap and heap[0][2] is None:
                heapq.heappop(heap)
                member._cancelled -= 1
            if heap:
                head = heap[0]
                if best_key is None or (head[0], head[1]) < best_key:
                    best = member
                    best_key = (head[0], head[1])
        return best

    def step(self) -> bool:
        member = self._pick()
        if member is None:
            return False
        entry = heapq.heappop(member._heap)
        if entry[0] != self._control.now:
            self._advance_clocks(entry[0])
        callback = entry[2]
        entry[2] = None
        callback(entry[3])
        return True

    def run(self, until: int | None = None, until_event=None) -> None:
        """Merge-execute members in global ``(cycle, seq)`` order.

        Same contract as :meth:`Simulator.run`: ``until`` is inclusive
        and leaves the clock there; ``until_event`` stops right after
        the event triggers.
        """
        if until is not None and type(until) is not int:
            until = _as_cycles(until, "until")
        if until_event is not None and until_event.triggered:
            return
        control = self._control
        while True:
            member = self._pick()
            if member is None:
                break
            when = member._heap[0][0]
            if until is not None and when > until:
                self._advance_clocks(until)
                return
            entry = heapq.heappop(member._heap)
            if when != control.now:
                self._advance_clocks(when)
            callback = entry[2]
            entry[2] = None
            callback(entry[3])
            if until_event is not None and until_event.triggered:
                return
        if until is not None and control.now < until:
            self._advance_clocks(until)

    def run_process(self, generator, name: str = "main",
                    limit: int | None = None):
        proc = self.process(generator, name)
        self.run(until=limit, until_event=proc.done)
        if not proc.done.triggered:
            raise RuntimeError(
                f"process {name!r} did not finish "
                f"(t={self.now}, queue="
                f"{'empty' if not self.pending_events else 'pending'})"
            )
        if not proc.done.ok:
            raise proc.done.value
        return proc.done.value

    @property
    def pending_events(self) -> int:
        return sum(member.pending_events for member in self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShardedSimulator {self.plan.shard_count} shards "
                f"t={self.now} cross={self.cross_packets}>")


# -- quantum-barrier partitioned execution ------------------------------------


class ShardContext:
    """One shard of a partitioned run: a private simulator plus ports.

    Handed to each shard's build function by :func:`run_partitioned`.
    Cross-shard communication *must* go through :meth:`send` /
    :meth:`subscribe`: sends become serialisable ``(cycle, seq,
    channel, payload)`` records in the egress buffer, exchanged at the
    next quantum barrier and drained into the destination shard's queue
    in ``(cycle, source shard, seq)`` order.  Payloads must be
    picklable — with process workers they cross a pipe.
    """

    __slots__ = ("shard_id", "shard_count", "quantum", "sim",
                 "_handlers", "_egress", "_sequence")

    def __init__(self, shard_id: int, shard_count: int, quantum: int):
        self.shard_id = shard_id
        self.shard_count = shard_count
        self.quantum = quantum
        self.sim = Simulator()
        self._handlers: dict[str, typing.Callable] = {}
        self._egress: list[tuple] = []
        self._sequence = itertools.count()

    def subscribe(self, channel: str, handler) -> None:
        """Register ``handler(payload)`` for injections on ``channel``."""
        if channel in self._handlers:
            raise ValueError(f"channel {channel!r} already subscribed")
        self._handlers[channel] = handler

    def send(self, dest_shard: int, channel: str, payload,
             latency: int | None = None) -> int:
        """Egress ``payload`` to ``dest_shard``; returns the arrival cycle.

        ``latency`` defaults to the quantum and may not undercut it —
        that is the conservative contract that makes barrier exchange
        safe: nothing sent inside a window can be due before the
        window after it.
        """
        if latency is None:
            latency = self.quantum
        if latency < self.quantum:
            raise ValueError(
                f"cross-shard latency {latency} undercuts the quantum "
                f"{self.quantum}; barrier exchange would miss it"
            )
        if not 0 <= dest_shard < self.shard_count:
            raise ValueError(f"no shard {dest_shard}")
        if dest_shard == self.shard_id:
            raise ValueError("cross-shard send to own shard")
        cycle = self.sim.now + latency
        self._egress.append(
            (cycle, self.shard_id, next(self._sequence), dest_shard,
             channel, payload)
        )
        return cycle

    def _take_egress(self) -> list:
        records, self._egress = self._egress, []
        return records

    def _inject(self, records) -> None:
        """Drain barrier-exchanged records (already sorted) into the queue."""
        for cycle, _src, _seq, _dest, channel, payload in records:
            try:
                handler = self._handlers[channel]
            except KeyError:
                raise RuntimeError(
                    f"shard {self.shard_id} has no subscriber for "
                    f"channel {channel!r}"
                ) from None
            self.sim.schedule_at(cycle, handler, payload)


def _next_cycle(sim: Simulator) -> int | None:
    """The cycle of the next live event, or None when idle."""
    if sim._bucket:
        return sim.now
    heap = sim._heap
    while heap and heap[0][2] is None:
        heapq.heappop(heap)
        sim._cancelled -= 1
    return heap[0][0] if heap else None


def _sort_inbound(records) -> list:
    """Barrier-drain order: (cycle, source shard, seq) — deterministic
    regardless of which worker's buffer arrived first."""
    return sorted(records, key=lambda record: record[:3])


def _plan_window(next_cycles, pending, quantum) -> int | None:
    """The next window's *end* barrier, or None when everything is done.

    The window starts at the earliest upcoming work (queued event or
    in-flight record) and spans exactly one quantum: running any
    further would let a shard outrun influence the barrier has not
    delivered yet.
    """
    floors = [cycle for cycle in next_cycles if cycle is not None]
    floors.extend(record[0] for records in pending.values()
                  for record in records)
    if not floors:
        return None
    return min(floors) + quantum


def run_partitioned(builders, quantum: int, workers: int | None = None):
    """Run one simulator per shard under conservative quantum barriers.

    ``builders[i]`` is called with shard ``i``'s :class:`ShardContext`
    and returns a zero-argument *harvest* callable producing the
    shard's result (picklable under process workers).  Returns the list
    of harvests in shard order.

    ``workers`` — processes to fork: ``1`` runs every shard in this
    process (same barrier schedule, byte-identical results), ``None``
    forks one worker per shard.  Windows cover ``[start, start+quantum)``
    where ``start`` skips idle gaps; egress buffers are exchanged at
    each barrier and drained in ``(cycle, source shard, seq)`` order,
    so the outcome is a pure function of the builders and the quantum.
    """
    builders = list(builders)
    if quantum < 1:
        raise ValueError(f"quantum must be at least one cycle: {quantum}")
    if workers is None:
        workers = len(builders)
    if workers <= 1 or len(builders) <= 1:
        return _run_serial(builders, quantum)
    return _run_forked(builders, quantum)


def _run_serial(builders, quantum: int) -> list:
    contexts = [
        ShardContext(shard_id, len(builders), quantum)
        for shard_id in range(len(builders))
    ]
    harvests = [build(ctx) for build, ctx in zip(builders, contexts)]
    pending: dict[int, list] = {}
    while True:
        end = _plan_window(
            [_next_cycle(ctx.sim) for ctx in contexts], pending, quantum
        )
        if end is None:
            break
        for ctx in contexts:
            inbound = pending.pop(ctx.shard_id, None)
            if inbound:
                ctx._inject(_sort_inbound(inbound))
            ctx.sim.run(until=end - 1)
        for ctx in contexts:
            for record in ctx._take_egress():
                pending.setdefault(record[3], []).append(record)
    return [harvest() for harvest in harvests]


def _worker_main(build, shard_id: int, shard_count: int, quantum: int,
                 connection) -> None:  # pragma: no cover - child process
    context = ShardContext(shard_id, shard_count, quantum)
    try:
        harvest = build(context)
        connection.send(("ready", _next_cycle(context.sim)))
        while True:
            message = connection.recv()
            if message[0] == "stop":
                connection.send(("result", harvest()))
                return
            _kind, end, inbound = message
            if inbound:
                context._inject(inbound)
            context.sim.run(until=end - 1)
            connection.send(
                ("done", context._take_egress(), _next_cycle(context.sim))
            )
    except Exception as exc:  # surface the failure to the parent
        connection.send(("error", f"shard {shard_id}: {exc!r}"))
        raise


def _run_forked(builders, quantum: int) -> list:
    """The same barrier schedule as :func:`_run_serial`, with each shard
    in its own forked worker process (its own GIL)."""
    context = multiprocessing.get_context("fork")
    pipes, processes = [], []
    for shard_id, build in enumerate(builders):
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(build, shard_id, len(builders), quantum, child_end),
            daemon=True,
        )
        process.start()
        child_end.close()
        pipes.append(parent_end)
        processes.append(process)
    try:
        next_cycles: list = []
        for pipe in pipes:
            kind, value = pipe.recv()
            if kind == "error":
                raise RuntimeError(value)
            next_cycles.append(value)
        pending: dict[int, list] = {}
        while True:
            end = _plan_window(next_cycles, pending, quantum)
            if end is None:
                break
            for shard_id, pipe in enumerate(pipes):
                inbound = pending.pop(shard_id, None)
                pipe.send(
                    ("window", end,
                     _sort_inbound(inbound) if inbound else [])
                )
            for shard_id, pipe in enumerate(pipes):
                reply = pipe.recv()
                if reply[0] == "error":
                    raise RuntimeError(reply[1])
                _kind, egress, next_cycles[shard_id] = reply
                for record in egress:
                    pending.setdefault(record[3], []).append(record)
        results = []
        for pipe in pipes:
            pipe.send(("stop",))
            kind, value = pipe.recv()
            if kind == "error":
                raise RuntimeError(value)
            results.append(value)
        return results
    finally:
        for pipe in pipes:
            pipe.close()
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - cleanup path
                process.terminate()
