"""The simulator core: a cycle clock and a hybrid event queue.

The queue is split in two (the classic "calendar front bucket"
optimisation used by lightweight simulators):

- ``_bucket`` — a plain FIFO deque of callbacks due at the *current*
  cycle.  ``call_soon`` and zero-delay scheduling append here, so the
  long same-cycle chains produced by process wake-ups and event
  dispatch never touch the heap.
- ``_heap`` — a binary heap of ``[when, seq, callback, argument]``
  entries for *future* cycles.  When the clock advances to a new cycle,
  every heap entry due at that cycle is drained into the bucket in
  sequence order, so FIFO ordering among same-cycle callbacks is
  exactly what the old single-heap implementation produced.

Entries are mutable lists so they double as cancellation handles: see
:meth:`Simulator.cancel`.
"""

from __future__ import annotations

import heapq
import itertools
import operator

from collections import deque

from repro.sim.events import Event
from repro.sim.ledger import TimeLedger
from repro.sim.process import Process


def _as_cycles(value, what: str) -> int:
    """Coerce ``value`` to an integer cycle count.

    The clock is integral; silently accepting arbitrary floats would let
    platform-dependent rounding reorder events.  Integral floats (and
    anything supporting ``__index__``) are coerced, everything else is
    rejected.
    """
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise ValueError(
            f"{what} must be a whole number of cycles, got {value!r}"
        )
    try:
        return operator.index(value)
    except TypeError:
        raise TypeError(
            f"{what} must be an int cycle count, got {type(value).__name__}"
        ) from None


class Simulator:
    """Cycle-based discrete-event simulator.

    Time is an integer cycle count starting at zero.  Callbacks scheduled
    for the same cycle run in FIFO order of scheduling, which makes runs
    fully deterministic.
    """

    __slots__ = ("now", "_bucket", "_heap", "_sequence", "_cancelled",
                 "ledger", "_processes", "obs")

    def __init__(self):
        self.now: int = 0
        self._bucket: deque = deque()
        self._heap: list = []
        self._sequence = itertools.count()
        self._cancelled = 0
        self.ledger = TimeLedger()
        self._processes: list[Process] = []
        #: optional observability hub (see :mod:`repro.obs`); with None
        #: installed, instrumented components pay one branch per event.
        self.obs = None

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, callback, argument: object = None) -> list:
        """Run ``callback(argument)`` after ``delay`` cycles.

        Returns a handle accepted by :meth:`cancel`.
        """
        if type(delay) is not int:
            delay = _as_cycles(delay, "delay")
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if delay == 0:
            entry = [callback, argument]
            self._bucket.append(entry)
        else:
            entry = [self.now + delay, next(self._sequence), callback, argument]
            heapq.heappush(self._heap, entry)
        return entry

    def call_soon(self, callback, argument: object = None) -> list:
        """Run ``callback(argument)`` at the current cycle, after the
        currently-running callbacks.  Returns a :meth:`cancel` handle."""
        entry = [callback, argument]
        self._bucket.append(entry)
        return entry

    def schedule_at(self, when: int, callback, argument: object = None) -> list:
        """Run ``callback(argument)`` at absolute cycle ``when`` (>= now).

        The cross-shard injection primitive (:mod:`repro.sim.shard`):
        barrier drains re-schedule egressed events into the peer
        shard's queue at their original cycle.  Same-cycle injections
        keep FIFO order behind the currently queued callbacks.
        Returns a handle accepted by :meth:`cancel`.
        """
        if type(when) is not int:
            when = _as_cycles(when, "when")
        if when < self.now:
            raise ValueError(
                f"cannot schedule into the past (when={when}, now={self.now})"
            )
        if when == self.now:
            entry = [callback, argument]
            self._bucket.append(entry)
        else:
            entry = [when, next(self._sequence), callback, argument]
            heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, handle: list) -> None:
        """Cancel a callback scheduled with :meth:`schedule`/:meth:`call_soon`.

        O(1): the queue entry is blanked in place and dropped when it
        reaches the front, so cancelled timers (``Signal.wait``
        timeouts and the like) leave no dead callbacks behind.
        Cancelling an already-executed or already-cancelled handle is a
        no-op: execution blanks the entry too, so a late cancel (a
        retry timer disarmed by the reply it retransmitted for, say)
        cannot disturb the ``pending_events`` accounting.
        """
        # Both entry shapes keep the callback in the second-to-last slot;
        # executed entries are blanked at pop time, so the branch below
        # is only taken for entries still waiting in a queue.
        if handle[-2] is not None:
            handle[-2] = None
            self._cancelled += 1

    # -- primitives for processes ------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def delay(self, cycles: int, tag: str | None = None) -> Event:
        """An event that triggers ``cycles`` from now.

        If ``tag`` is given the cycles are charged to the ledger, which is
        how the evaluation reconstructs App/OS/Xfer breakdowns.
        """
        if type(cycles) is not int:
            cycles = _as_cycles(cycles, "delay")
        if cycles < 0:
            raise ValueError(f"negative delay: {cycles}")
        if tag is not None:
            self.ledger.charge(tag, cycles)
        done = Event(self, "delay")
        if cycles == 0:
            self._bucket.append([done.succeed, None])
        else:
            heapq.heappush(
                self._heap,
                [self.now + cycles, next(self._sequence), done.succeed, None],
            )
        return done

    def process(self, generator, name: str = "process") -> Process:
        """Start ``generator`` as a new simulation process."""
        proc = Process(self, generator, name)
        self._processes.append(proc)
        return proc

    # -- execution ----------------------------------------------------------

    def _advance(self) -> bool:
        """Move the clock to the next populated cycle, draining every heap
        entry due then into the bucket; False if the heap is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[2] is None:
                self._cancelled -= 1
                continue
            when = entry[0]
            self.now = when
            bucket = self._bucket
            # Entries move as-is so outstanding cancel handles stay
            # live; callbacks sit at [-2] in both entry shapes.
            bucket.append(entry)
            while heap and heap[0][0] == when:
                bucket.append(heapq.heappop(heap))
            return True
        return False

    def step(self) -> bool:
        """Execute the next queued callback; return False if queue empty."""
        bucket = self._bucket
        while True:
            if not bucket and not self._advance():
                return False
            entry = bucket.popleft()
            callback = entry[-2]
            if callback is None:
                self._cancelled -= 1
                continue
            # Blank the entry before running it: the handle is consumed,
            # so a cancel issued later (or from inside the callback
            # itself) is the promised no-op.
            entry[-2] = None
            callback(entry[-1])
            return True

    def run(self, until: int | None = None, until_event: Event | None = None) -> None:
        """Run until the queue drains, ``until`` cycles pass, or an event fires.

        ``until`` is an absolute cycle count; events scheduled exactly at
        ``until`` still fire.  When ``until_event`` is given, execution
        stops right after the event triggers.
        """
        bucket = self._bucket
        if until is None and until_event is None:
            # Fast drain loop: no bound checks on the hot path.
            while True:
                while bucket:
                    entry = bucket.popleft()
                    callback = entry[-2]
                    if callback is None:
                        self._cancelled -= 1
                    else:
                        entry[-2] = None
                        callback(entry[-1])
                if not self._advance():
                    return
        # Bounded loop: drain the bucket in bursts, checking the stop
        # conditions only where they can change — ``until`` gates heap
        # advancement, ``until_event`` can only trigger from inside a
        # callback.
        heap = self._heap
        if until_event is not None and until_event.triggered:
            return
        while True:
            if bucket:
                if until_event is None:
                    while bucket:
                        entry = bucket.popleft()
                        callback = entry[-2]
                        if callback is None:
                            self._cancelled -= 1
                        else:
                            entry[-2] = None
                            callback(entry[-1])
                else:
                    while bucket:
                        entry = bucket.popleft()
                        callback = entry[-2]
                        if callback is None:
                            self._cancelled -= 1
                            continue
                        entry[-2] = None
                        callback(entry[-1])
                        if until_event.triggered:
                            return
                continue
            while heap and heap[0][2] is None:
                heapq.heappop(heap)
                self._cancelled -= 1
            if not heap:
                break
            if until is not None and heap[0][0] > until:
                self.now = until
                return
            self._advance()
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, generator, name: str = "main", limit: int | None = None):
        """Start a process, run the simulation to its completion, and
        return its result (re-raising its failure, if any)."""
        proc = self.process(generator, name)
        self.run(until=limit, until_event=proc.done)
        if not proc.done.triggered:
            raise RuntimeError(
                f"process {name!r} did not finish "
                f"(t={self.now}, queue="
                f"{'empty' if not self.pending_events else 'pending'})"
            )
        if not proc.done.ok:
            raise proc.done.value
        return proc.done.value

    @property
    def pending_events(self) -> int:
        """Number of live queued callbacks (cancelled entries excluded)."""
        return len(self._bucket) + len(self._heap) - self._cancelled
