"""The simulator core: a cycle clock and an ordered event queue."""

from __future__ import annotations

import heapq
import itertools

from repro.sim.events import Event
from repro.sim.ledger import TimeLedger
from repro.sim.process import Process


class Simulator:
    """Cycle-based discrete-event simulator.

    Time is an integer cycle count starting at zero.  Callbacks scheduled
    for the same cycle run in FIFO order of scheduling, which makes runs
    fully deterministic.
    """

    def __init__(self):
        self.now: int = 0
        self._queue: list = []
        self._sequence = itertools.count()
        self.ledger = TimeLedger()
        self._processes: list[Process] = []
        #: optional observability hub (see :mod:`repro.obs`); with None
        #: installed, instrumented components pay one branch per event.
        self.obs = None

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, callback, argument: object = None) -> None:
        """Run ``callback(argument)`` after ``delay`` cycles."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, argument)
        )

    def call_soon(self, callback, argument: object = None) -> None:
        """Run ``callback(argument)`` at the current cycle, after the
        currently-running callbacks."""
        self.schedule(0, callback, argument)

    # -- primitives for processes ------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def delay(self, cycles: int, tag: str | None = None) -> Event:
        """An event that triggers ``cycles`` from now.

        If ``tag`` is given the cycles are charged to the ledger, which is
        how the evaluation reconstructs App/OS/Xfer breakdowns.
        """
        if cycles < 0:
            raise ValueError(f"negative delay: {cycles}")
        self.ledger.charge(tag, cycles)
        done = Event(self, f"delay({cycles})")
        self.schedule(cycles, done.succeed)
        return done

    def process(self, generator, name: str = "process") -> Process:
        """Start ``generator`` as a new simulation process."""
        proc = Process(self, generator, name)
        self._processes.append(proc)
        return proc

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next queued callback; return False if queue empty."""
        if not self._queue:
            return False
        when, _seq, callback, argument = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - guarded by schedule()
            raise RuntimeError("time went backwards")
        self.now = when
        callback(argument)
        return True

    def run(self, until: int | None = None, until_event: Event | None = None) -> None:
        """Run until the queue drains, ``until`` cycles pass, or an event fires.

        ``until`` is an absolute cycle count.  When ``until_event`` is given,
        execution stops right after the event triggers.
        """
        while self._queue:
            if until_event is not None and until_event.triggered:
                return
            when = self._queue[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, generator, name: str = "main", limit: int | None = None):
        """Start a process, run the simulation to its completion, and
        return its result (re-raising its failure, if any)."""
        proc = self.process(generator, name)
        self.run(until=limit, until_event=proc.done)
        if not proc.done.triggered:
            raise RuntimeError(
                f"process {name!r} did not finish "
                f"(t={self.now}, queue={'empty' if not self._queue else 'pending'})"
            )
        if not proc.done.ok:
            raise proc.done.value
        return proc.done.value

    @property
    def pending_events(self) -> int:
        """Number of queued callbacks (for tests and diagnostics)."""
        return len(self._queue)
