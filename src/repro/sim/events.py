"""Events: the synchronisation primitive of the simulation kernel.

An :class:`Event` starts *pending* and is triggered exactly once, either
successfully (with an optional value) or with an exception.  Processes
block on events by yielding them; callbacks registered on an event run
through the simulator's queue at the trigger time, which preserves FIFO
ordering among same-cycle activations.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Interrupt(Exception):
    """Thrown into a process that is interrupted while blocked."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time."""

    _PENDING = 0
    _SUCCEEDED = 1
    _FAILED = 2

    __slots__ = ("sim", "name", "_state", "_value", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._state = Event._PENDING
        self._value: object = None
        self._callbacks: list = []

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._state != Event._PENDING

    @property
    def ok(self) -> bool:
        """Whether the event has succeeded."""
        return self._state == Event._SUCCEEDED

    @property
    def value(self) -> object:
        """The value the event succeeded with (or its exception)."""
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self._state = Event._SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, thrown into waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = Event._FAILED
        self._value = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        # Inlined call_soon: waking waiters is the hottest dispatch path.
        bucket = self.sim._bucket
        for callback in callbacks:
            bucket.append([callback, self])

    # -- waiting ----------------------------------------------------------

    def add_callback(self, callback) -> None:
        """Register ``callback(event)``; runs via the queue if triggered."""
        if self._state == Event._PENDING:
            self._callbacks.append(callback)
        else:
            self.sim._bucket.append([callback, self])

    def discard_callback(self, callback) -> None:
        """Remove a pending callback registration, if present."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {0: "pending", 1: "ok", 2: "failed"}[self._state]
        return f"<Event {self.name!r} {state} at t={self.sim.now}>"


def first_of(sim: "Simulator", *events: Event) -> Event:
    """An event that succeeds when the first of ``events`` triggers.

    The combined event carries the winning event as its value.  Used by
    event-driven servers (the kernel) that wait on several message
    sources at once.
    """
    if not events:
        raise ValueError("first_of needs at least one event")
    combined = Event(sim, "first_of")

    def wake(event: Event) -> None:
        if not combined.triggered:
            combined.succeed(event)

    for event in events:
        event.add_callback(wake)
    return combined
