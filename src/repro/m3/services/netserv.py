"""netserv: a datagram network service.

The paper names "network stacks" alongside filesystems as the OS
services that applications provide over core-neutral protocols
(Sections 1, 4.5.1).  m3fs demonstrates the data-via-capabilities
pattern; netserv demonstrates the second pattern — a service that
multiplexes a *device* (a NIC pair on a wire) among client sessions:

- clients ``bind`` a port and exchange small datagrams via session
  messages (``send_to`` / ``recv``),
- the service moves frames through its DRAM buffer with real DTU
  transfers, commands the NIC by message, and takes RX interrupts as
  messages on the same receive gate it serves clients on — interrupts
  really are "integrated with the existing concepts" (Section 4.4.2).

Frame format on the wire: ``<HH`` src port, dst port, then the payload.
"""

from __future__ import annotations

import struct
import types
import typing

from repro import params
from repro.dtu.registers import MemoryPerm
from repro.hw.device import CMD_RECV_EP, DMA_MEM_EP, IRQ_SEND_EP, NetworkDevice, Wire
from repro.m3.kernel import syscalls
from repro.m3.kernel.capability import Capability, CapKind
from repro.m3.kernel.objects import RecvGateObject, SendGateObject
from repro.m3.lib.gate import BoundRecvGate, MemGate, RecvGate, SendGate

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.system import M3System

_HEADER = struct.Struct("<HH")

#: label that marks device interrupts on the service's receive gate
#: (0 is the kernel; session ids start at 1 and stay well below this).
IRQ_LABEL = 0xFFFF

#: the NIC's DMA window: the TX ring then the RX ring.  The NIC reads
#: TX frames by DMA *after* the command message, so every in-flight
#: frame needs its own slot; slots return to the free list when the
#: NIC's "txdone" interrupt arrives.
BUFFER_BYTES = 4096
TX_SLOTS = 8
TX_SLOT_BYTES = 256
RX_BASE = 2048

MAX_PAYLOAD = 200

#: default per-socket inbox depth.  Open-loop load means a slow client
#: can fall arbitrarily far behind its arrival stream; an unbounded
#: inbox then grows without limit.  Frames beyond the bound are dropped
#: and counted in ``frames_dropped``, like a real NIC ring overrun.
INBOX_DEPTH = 64


class _Socket:
    def __init__(self, session_id: int, inbox_depth: int = INBOX_DEPTH):
        self.session_id = session_id
        self.port: int | None = None
        self.inbox: list[tuple[int, bytes]] = []
        self.inbox_depth = inbox_depth


class NetServ:
    """The service: socket state plus the NIC driver loop."""

    def __init__(self, service_name: str = "net",
                 inbox_depth: int = INBOX_DEPTH):
        self.service_name = service_name
        self.inbox_depth = inbox_depth
        self.ready = None  # Event, attached before spawn
        #: Event, attached before spawn: succeeds once the system layer
        #: has wired the NIC and installed ``self.nic_cmd`` (replaces
        #: the old poll-every-500-cycles startup busy-wait).
        self.nic_attached = None
        self.env = None
        self.buffer: MemGate | None = None
        self.nic_cmd: SendGate | None = None
        self.vpe = None
        self.nic: NetworkDevice | None = None
        self.sockets: dict[int, _Socket] = {}
        self.ports: dict[int, _Socket] = {}
        self.frames_routed = 0
        self.frames_dropped = 0
        self._tx_free: list[int] = list(range(TX_SLOTS))

    def main(self, env):
        """Generator: runs as the netserv VPE."""
        self.env = env
        self.buffer = yield from MemGate.create(
            env, BUFFER_BYTES, MemoryPerm.RW.value
        )
        # NIC commands go out as *calls*: the NIC's reply refunds the
        # command gate's send credits.  Driving the NIC fire-and-forget
        # exhausts the gate after max_credits lifetime commands — the
        # NIC acks but never replies, so credits never come back.
        self._nic_reply = BoundRecvGate(env, env.EP_REPLY)
        rgate = yield from RecvGate.create(env, slot_size=512, slot_count=32)
        yield from env.syscall(
            syscalls.CREATE_SRV, self.service_name, rgate.selector
        )
        if self.ready is not None:
            self.ready.succeed(self)
        # the system layer wires the NIC and installs self.nic_cmd,
        # then fires nic_attached — an event handoff, not a busy-wait.
        if self.nic_cmd is None:
            if self.nic_attached is None:
                raise RuntimeError(
                    f"{self.service_name}: no NIC attached and no "
                    "nic_attached event to wait on (use start_network)"
                )
            yield self.nic_attached
        while True:
            slot, message = yield from rgate.receive()
            yield env.os_work(params.M3FS_SERVER_CYCLES)
            if message.label == IRQ_LABEL:
                rgate.ack(slot)
                yield from self._handle_irq(message.payload)
                continue
            operation, args = message.payload
            if message.label == 0:
                if operation == "open_session":
                    session_id, _vpe = args
                    self.sockets[session_id] = _Socket(
                        session_id, inbox_depth=self.inbox_depth
                    )
                    response = ("ok", ())
                else:
                    response = ("err", f"unknown kernel op {operation!r}")
            else:
                socket = self.sockets.get(message.label)
                if socket is None:
                    response = ("err", "no such session")
                else:
                    try:
                        handler = getattr(self, f"_op_{operation}")
                        result = yield from handler(socket, *args)
                        response = ("ok", result)
                    except (ValueError, AttributeError, TypeError) as exc:
                        response = ("err", str(exc))
            yield from rgate.reply(slot, response)

    # -- the driver side ------------------------------------------------------

    def _handle_irq(self, payload):
        """Generator: a NIC interrupt — route an RX frame or reclaim a
        TX slot."""
        _kind, name, detail = payload
        if not detail:
            return
        if detail[0] == "txdone":
            # The NIC finished its DMA read; the slot can be reused.
            self._tx_free.append(detail[1] // TX_SLOT_BYTES)
            return
        if detail[0] != "rx":
            return
        _tag, offset, length = detail
        if length < _HEADER.size:
            # A runt frame cannot carry a port header; drop it instead
            # of crashing the service on the unpack.
            self.frames_dropped += 1
            return
        frame = yield from self.buffer.read(offset, length)
        src_port, dst_port = _HEADER.unpack_from(frame)
        socket = self.ports.get(dst_port)
        if socket is None:
            self.frames_dropped += 1
            return
        if len(socket.inbox) >= socket.inbox_depth:
            # The client is not draining its inbox: drop like a ring
            # overrun instead of growing memory without bound.
            self.frames_dropped += 1
            return
        socket.inbox.append((src_port, bytes(frame[_HEADER.size :])))
        self.frames_routed += 1

    # -- session operations ------------------------------------------------------

    def _op_bind(self, socket: _Socket, port: int):
        if not (0 < port < 65536):
            raise ValueError(f"bad port {port}")
        if port in self.ports:
            raise ValueError(f"port {port} already bound")
        if socket.port is not None:
            del self.ports[socket.port]
        socket.port = port
        self.ports[port] = socket
        return ()
        yield  # pragma: no cover

    def _op_send_to(self, socket: _Socket, dst_port: int, payload: bytes):
        payload = bytes(payload)
        if len(payload) > MAX_PAYLOAD:
            raise ValueError(f"datagram of {len(payload)}B too large")
        if not self._tx_free:
            raise ValueError("tx ring full, retry later")
        slot = self._tx_free.pop(0)
        # The slot is only committed once the NIC owns the frame; any
        # failure between the pop and the command send must return it
        # or the ring shrinks by one slot per error, forever.
        committed = False
        try:
            offset = slot * TX_SLOT_BYTES
            frame = _HEADER.pack(socket.port or 0, dst_port) + payload
            yield from self.buffer.write(offset, frame)
            yield from self.nic_cmd.call(("tx", offset, len(frame)),
                                         self._nic_reply, 32)
            committed = True
        finally:
            if not committed:
                self._tx_free.insert(0, slot)
        return len(payload)

    def _op_recv(self, socket: _Socket):
        """Poll for the next datagram: (src_port, payload) or None."""
        if socket.inbox:
            return socket.inbox.pop(0)
        return None
        yield  # pragma: no cover

    def _op_close(self, socket: _Socket):
        """Tear the session down: unbind the port, drop the socket.

        Without this, a finished client's socket and bound port leak
        forever — the port can never be reused.  Further requests on
        the closed session fail with "no such session".
        """
        if socket.port is not None and self.ports.get(socket.port) is socket:
            del self.ports[socket.port]
        socket.port = None
        socket.inbox.clear()
        self.sockets.pop(socket.session_id, None)
        return ()
        yield  # pragma: no cover


class NetClient:
    """One application's session with a netserv instance.

    Mirrors M3fsClient's request shape: every operation is a session
    RPC; the service's ``("err", reason)`` replies surface as
    :class:`RuntimeError`.
    """

    def __init__(self, env, sgate: SendGate):
        self.env = env
        self.sgate = sgate
        self.reply_gate = BoundRecvGate(env, env.EP_REPLY)

    @classmethod
    def connect(cls, env, service: str = "net"):
        """Generator: open a session with a netserv instance."""
        _session_sel, sgate_sel = yield from env.syscall(
            syscalls.OPEN_SESSION, service
        )
        return cls(env, SendGate(env, sgate_sel))

    def request(self, operation: str, *args):
        """Generator: one session RPC; returns the result."""
        message = yield from self.sgate.call((operation, args),
                                             self.reply_gate)
        status, result = message.payload
        if status != "ok":
            raise RuntimeError(result)
        return result

    def bind(self, port: int):
        return (yield from self.request("bind", port))

    def send_to(self, dst_port: int, payload: bytes):
        return (yield from self.request("send_to", dst_port, payload))

    def recv(self):
        """Generator: poll once; (src_port, payload) or None."""
        return (yield from self.request("recv"))

    def recv_blocking(self, poll_cycles: int = 2_000):
        """Generator: poll until a datagram arrives."""
        while True:
            datagram = yield from self.request("recv")
            if datagram is not None:
                return datagram
            yield poll_cycles

    def close(self):
        return (yield from self.request("close"))


def start_network(system: "M3System", service_names=("net", "net2"),
                  wire_latency: int = 200):
    """Boot two NICs on a wire and a netserv instance for each.

    Device wiring (DMA windows, command channels, interrupt routes) is
    the kernel's boot-time job, exactly like a device tree; the
    services then drive their NICs with ordinary gates.
    Returns the two :class:`NetServ` instances.
    """
    wire = Wire(system.sim, latency_cycles=wire_latency)
    nics = []
    servers = []
    base_node = len(system.platform.pes)
    for index, name in enumerate(service_names):
        nic = NetworkDevice(
            system.sim, system.platform.network, base_node + index,
            name=f"nic{index}", rx_base=RX_BASE,
        )
        if getattr(system, "reliable", False):
            # Match the chip: an unreliable NIC DTU on a reliable
            # platform deadlocks under packet loss — a dropped command
            # reply or DMA response is never retransmitted, wedging the
            # driver (or the NIC's serve loop) forever.
            nic.dtu.enable_reliability()
        nics.append(nic)
        server = NetServ(service_name=name)
        server.ready = system.sim.event(f"{name}.ready")
        server.nic_attached = system.sim.event(f"{name}.nic-attached")
        vpe = system.spawn(server.main, name=name)
        system.sim.run(until_event=server.ready)
        server.vpe = vpe
        servers.append(server)
        if system.sim.obs is not None:
            system.sim.obs.label_node(nic.node, f"nic:{nic.name}")
            system.sim.obs.label_node(vpe.node, f"service:{name}")
    wire.connect(nics[0], nics[1])

    def wire_devices():
        from repro.dtu.registers import EndpointRegisters

        kernel = system.kernel
        for nic, server in zip(nics, servers):
            buffer_cap = server.vpe.captable.get(server.buffer.selector)
            region = buffer_cap.obj
            # DMA window onto the service's buffer
            yield from kernel.dtu.configure_remote(
                nic.node, "configure", DMA_MEM_EP,
                EndpointRegisters.memory_config(
                    region.node, region.address, region.size, MemoryPerm.RW,
                ),
            )
            # command channel: give the service a send gate to the NIC
            yield from kernel.dtu.configure_remote(
                nic.node, "configure", CMD_RECV_EP,
                EndpointRegisters.receive_config(0, slot_size=64,
                                                 slot_count=8),
            )
            nic_port = types.SimpleNamespace(node=nic.node)
            nic_rgate = RecvGateObject(slot_size=64, slot_count=8,
                                       owner=nic_port,
                                       ep_index=CMD_RECV_EP)
            command_gate = SendGateObject(target=nic_rgate, label=0,
                                          credits=8)
            selector = server.vpe.captable.insert(
                Capability(CapKind.SEND, command_gate)
            )
            # interrupt route: NIC -> the service's receive gate.  The
            # service *acks* interrupt messages (no reply), which never
            # refunds send credits — so the endpoint gets effectively
            # unlimited credits rather than going silent after a burst.
            service = kernel.services[server.service_name]
            yield from kernel.dtu.configure_remote(
                nic.node, "configure", IRQ_SEND_EP,
                EndpointRegisters.send_config(
                    target_node=service.rgate.node,
                    target_ep=service.rgate.ep_index,
                    label=IRQ_LABEL, credits=4096,
                    msg_size=service.rgate.slot_size,
                ),
            )
            nic.start()
            server.nic = nic
            server.nic_cmd = SendGate(server.env, selector)
            server.nic_attached.succeed(nic)

    system.sim.run_process(wire_devices(), "wire-network")
    return servers
