"""The superblock: filesystem geometry and usage counters."""

from __future__ import annotations

import dataclasses

from repro import params


@dataclasses.dataclass
class SuperBlock:
    """Filesystem-wide constants and counters."""

    block_size: int = params.M3FS_BLOCK_BYTES
    total_blocks: int = 16 * 1024  # 16 MiB with 1 KiB blocks
    total_inodes: int = 1024

    def __post_init__(self):
        if self.block_size < 64 or self.block_size & (self.block_size - 1):
            raise ValueError("block size must be a power of two >= 64")
        if self.total_blocks < 1 or self.total_inodes < 1:
            raise ValueError("filesystem must have blocks and inodes")

    @property
    def size_bytes(self) -> int:
        return self.block_size * self.total_blocks

    def block_offset(self, block: int) -> int:
        """Byte offset of ``block`` within the data region."""
        if not (0 <= block < self.total_blocks):
            raise ValueError(f"block {block} outside filesystem")
        return block * self.block_size
