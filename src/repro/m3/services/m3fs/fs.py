"""The m3fs core: paths, inodes, allocation, extents.

This is the service-side logic, independent of message handling.  All
placement decisions are in *region offsets* (byte offsets within the
DRAM region the service obtained from the kernel) — the service itself
never needs absolute addresses, matching the capability model.
"""

from __future__ import annotations

from repro import params
from repro.m3.services.m3fs.bitmap import Bitmap
from repro.m3.services.m3fs.extents import Extent, locate, total_bytes
from repro.m3.services.m3fs.inode import Inode
from repro.m3.services.m3fs.superblock import SuperBlock


class FsError(Exception):
    """Filesystem-level failure reported back to clients."""


class M3FS:
    """Filesystem state: superblock, bitmaps, inode table, directories."""

    ROOT_INO = 0

    def __init__(self, superblock: SuperBlock | None = None,
                 append_blocks: int = params.M3FS_APPEND_BLOCKS,
                 reserve_meta_blocks: int = 0):
        self.sb = superblock or SuperBlock()
        self.block_bitmap = Bitmap(self.sb.total_blocks)
        self.inode_bitmap = Bitmap(self.sb.total_inodes)
        self.inodes: dict[int, Inode] = {}
        #: "write operations extend files by a large number of blocks at
        #: once to minimize the fragmentation" (Section 4.5.8).
        self.append_blocks = append_blocks
        #: blocks at the front of the region reserved for the persisted
        #: metadata image (see :mod:`repro.m3.services.m3fs.image`).
        self.reserved_meta_blocks = reserve_meta_blocks
        if reserve_meta_blocks:
            start, got = self.block_bitmap.alloc_run(reserve_meta_blocks)
            assert (start, got) == (0, reserve_meta_blocks)
        root_ino = self.inode_bitmap.alloc()
        self.inodes[root_ino] = Inode(ino=root_ino, kind="dir")

    # -- path handling ------------------------------------------------------

    @staticmethod
    def split(path: str) -> list[str]:
        """Normalised path components ('/a//b/' -> ['a', 'b'])."""
        return [part for part in path.split("/") if part and part != "."]

    def resolve(self, path: str) -> Inode:
        """The inode at ``path``; raises FsError when missing."""
        inode = self.inodes[self.ROOT_INO]
        for part in self.split(path):
            if not inode.is_dir:
                raise FsError(f"{part!r} crossed a non-directory")
            try:
                inode = self.inodes[inode.entries[part]]
            except KeyError:
                raise FsError(f"no such file or directory: {path!r}") from None
        return inode

    def resolve_parent(self, path: str) -> tuple[Inode, str]:
        """The containing directory of ``path`` and the final name."""
        parts = self.split(path)
        if not parts:
            raise FsError("path resolves to the root directory")
        parent = self.inodes[self.ROOT_INO]
        for part in parts[:-1]:
            try:
                parent = self.inodes[parent.entries[part]]
            except KeyError:
                raise FsError(f"no such directory: {part!r}") from None
            if not parent.is_dir:
                raise FsError(f"{part!r} is not a directory")
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except FsError:
            return False

    # -- namespace operations ---------------------------------------------------

    def create(self, path: str) -> Inode:
        """Create an empty regular file."""
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise FsError(f"already exists: {path!r}")
        ino = self.inode_bitmap.alloc()
        inode = Inode(ino=ino, kind="file")
        self.inodes[ino] = inode
        parent.entries[name] = ino
        return inode

    def mkdir(self, path: str) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise FsError(f"already exists: {path!r}")
        ino = self.inode_bitmap.alloc()
        inode = Inode(ino=ino, kind="dir")
        self.inodes[ino] = inode
        parent.entries[name] = ino
        return inode

    def unlink(self, path: str) -> None:
        parent, name = self.resolve_parent(path)
        if name not in parent.entries:
            raise FsError(f"no such file: {path!r}")
        inode = self.inodes[parent.entries[name]]
        if inode.is_dir and inode.entries:
            raise FsError(f"directory not empty: {path!r}")
        del parent.entries[name]
        inode.links -= 1
        if inode.links == 0:
            self._free_inode(inode)

    def link(self, existing: str, new_path: str) -> None:
        inode = self.resolve(existing)
        if inode.is_dir:
            raise FsError("cannot hard-link directories")
        parent, name = self.resolve_parent(new_path)
        if name in parent.entries:
            raise FsError(f"already exists: {new_path!r}")
        parent.entries[name] = inode.ino
        inode.links += 1

    def rename(self, old_path: str, new_path: str) -> None:
        """Move/rename an entry; replaces an existing target file
        (classic rename(2) semantics)."""
        old_parent, old_name = self.resolve_parent(old_path)
        if old_name not in old_parent.entries:
            raise FsError(f"no such file: {old_path!r}")
        new_parent, new_name = self.resolve_parent(new_path)
        moving = self.inodes[old_parent.entries[old_name]]
        if new_name in new_parent.entries:
            target = self.inodes[new_parent.entries[new_name]]
            if target is moving:
                return
            if target.is_dir:
                raise FsError(f"target is a directory: {new_path!r}")
            if moving.is_dir:
                raise FsError("cannot replace a file with a directory")
            target.links -= 1
            if target.links == 0:
                self._free_inode(target)
        new_parent.entries[new_name] = moving.ino
        del old_parent.entries[old_name]

    def readdir(self, path: str) -> list[str]:
        inode = self.resolve(path)
        if not inode.is_dir:
            raise FsError(f"not a directory: {path!r}")
        return sorted(inode.entries)

    def stat(self, path: str) -> tuple:
        """(kind, size, links, extent_count) — what the STAT op reports."""
        inode = self.resolve(path)
        return (inode.kind, inode.size, inode.links, inode.extent_count)

    def _free_inode(self, inode: Inode) -> None:
        for extent in inode.extents:
            self.block_bitmap.free_run(extent.start_block, extent.block_count)
        inode.extents.clear()
        self.inode_bitmap.free_run(inode.ino, 1)
        del self.inodes[inode.ino]

    # -- data placement ------------------------------------------------------------

    def append_extent(self, inode: Inode, want_blocks: int | None = None) -> Extent:
        """Allocate a new extent at the end of ``inode``.

        Tries ``want_blocks`` (default: the configured append chunk) and
        accepts a shorter run under fragmentation — shorter runs are
        what fragmentation *is* from the client's perspective.
        """
        if inode.is_dir:
            raise FsError("directories have no data extents")
        want = want_blocks or self.append_blocks
        start, got = self.block_bitmap.alloc_run(want)
        extent = Extent(start, got)
        inode.extents.append(extent)
        return extent

    def truncate(self, inode: Inode, size: int) -> None:
        """Set the file size, freeing whole blocks past the end.

        "the close operation truncates it to the actually used space"
        (Section 4.5.8).
        """
        if size < 0:
            raise FsError(f"negative size: {size}")
        if size > total_bytes(inode.extents, self.sb.block_size):
            raise FsError("cannot truncate beyond allocated space")
        needed_blocks = -(-size // self.sb.block_size)
        kept = 0
        new_extents: list[Extent] = []
        for extent in inode.extents:
            if kept >= needed_blocks:
                self.block_bitmap.free_run(extent.start_block, extent.block_count)
                continue
            keep = min(extent.block_count, needed_blocks - kept)
            if keep < extent.block_count:
                self.block_bitmap.free_run(
                    extent.start_block + keep, extent.block_count - keep
                )
                new_extents.append(extent.shrink_to(keep))
            else:
                new_extents.append(extent)
            kept += keep
        inode.extents = new_extents
        inode.size = size

    def extent_region(self, extent: Extent) -> tuple[int, int]:
        """(region offset, byte length) of an extent — what gets delegated."""
        return (
            self.sb.block_offset(extent.start_block),
            extent.size_bytes(self.sb.block_size),
        )

    def locate(self, inode: Inode, offset: int) -> tuple[int, int]:
        """(extent index, offset inside it) for byte ``offset``."""
        return locate(inode.extents, offset, self.sb.block_size)

    @property
    def free_blocks(self) -> int:
        return self.block_bitmap.free
