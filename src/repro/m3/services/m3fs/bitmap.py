"""Allocation bitmaps (for inodes and blocks)."""

from __future__ import annotations


class Bitmap:
    """A bitmap of ``count`` allocatable units with contiguous-run support."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError("bitmap needs at least one bit")
        self.count = count
        self._bits = bytearray(count)  # one byte per bit: simple and fast enough
        self.used = 0

    def is_set(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits[index])

    def alloc(self) -> int:
        """Allocate one unit; returns its index."""
        start, _ = self.alloc_run(1, 1)
        return start

    def alloc_run(self, want: int, minimum: int = 1) -> tuple[int, int]:
        """First-fit a free run of up to ``want`` units.

        Returns ``(start, got)`` where ``minimum <= got <= want`` — m3fs
        appends in large chunks but accepts shorter runs when the free
        space is fragmented (which is what creates file fragmentation).
        Raises MemoryError when not even ``minimum`` is available.
        """
        if want < 1 or minimum < 1 or minimum > want:
            raise ValueError(f"bad run request want={want} minimum={minimum}")
        index = 0
        best: tuple[int, int] | None = None
        while index < self.count:
            if self._bits[index]:
                index += 1
                continue
            run_start = index
            while index < self.count and not self._bits[index] and \
                    index - run_start < want:
                index += 1
            run_length = index - run_start
            if run_length >= want:
                best = (run_start, want)
                break
            if run_length >= minimum and (best is None or run_length > best[1]):
                best = (run_start, run_length)
            # skip to the end of this free run
            while index < self.count and not self._bits[index]:
                index += 1
        if best is None:
            raise MemoryError(f"no free run of at least {minimum} units")
        start, got = best
        for i in range(start, start + got):
            self._bits[i] = 1
        self.used += got
        return start, got

    def free_run(self, start: int, count: int) -> None:
        """Release ``count`` units starting at ``start``."""
        self._check(start)
        if count < 1 or start + count > self.count:
            raise ValueError(f"bad free range [{start}, {start + count})")
        for i in range(start, start + count):
            if not self._bits[i]:
                raise ValueError(f"double free of unit {i}")
            self._bits[i] = 0
        self.used -= count

    @property
    def free(self) -> int:
        return self.count - self.used

    def _check(self, index: int) -> None:
        if not (0 <= index < self.count):
            raise ValueError(f"index {index} outside bitmap of {self.count}")
