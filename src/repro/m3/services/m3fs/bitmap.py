"""Allocation bitmaps (for inodes and blocks)."""

from __future__ import annotations


class Bitmap:
    """A bitmap of ``count`` allocatable units with contiguous-run support."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError("bitmap needs at least one bit")
        self.count = count
        self._bits = bytearray(count)  # one byte per bit: simple and fast enough
        self.used = 0

    def is_set(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits[index])

    def alloc(self) -> int:
        """Allocate one unit; returns its index."""
        start, _ = self.alloc_run(1, 1)
        return start

    def alloc_run(self, want: int, minimum: int = 1) -> tuple[int, int]:
        """First-fit a free run of up to ``want`` units.

        Returns ``(start, got)`` where ``minimum <= got <= want`` — m3fs
        appends in large chunks but accepts shorter runs when the free
        space is fragmented (which is what creates file fragmentation).
        Raises MemoryError when not even ``minimum`` is available.
        """
        if want < 1 or minimum < 1 or minimum > want:
            raise ValueError(f"bad run request want={want} minimum={minimum}")
        # First-fit via bytearray.find, which scans at memchr speed —
        # the byte-at-a-time Python loop dominated fs_preload on large
        # volumes.  Semantics are identical: runs are visited left to
        # right, the first run of >= want units wins outright, otherwise
        # the leftmost longest run of >= minimum units is taken.
        bits = self._bits
        count = self.count
        best: tuple[int, int] | None = None
        index = bits.find(0)
        while 0 <= index < count:
            run_end = bits.find(1, index)
            if run_end == -1:
                run_end = count
            run_length = run_end - index
            if run_length >= want:
                best = (index, want)
                break
            if run_length >= minimum and (best is None or run_length > best[1]):
                best = (index, run_length)
            index = bits.find(0, run_end)
        if best is None:
            raise MemoryError(f"no free run of at least {minimum} units")
        start, got = best
        bits[start : start + got] = b"\x01" * got
        self.used += got
        return start, got

    def free_run(self, start: int, count: int) -> None:
        """Release ``count`` units starting at ``start``."""
        self._check(start)
        if count < 1 or start + count > self.count:
            raise ValueError(f"bad free range [{start}, {start + count})")
        hole = self._bits.find(0, start, start + count)
        if hole != -1:
            raise ValueError(f"double free of unit {hole}")
        self._bits[start : start + count] = bytes(count)
        self.used -= count

    @property
    def free(self) -> int:
        return self.count - self.used

    def _check(self, index: int) -> None:
        if not (0 <= index < self.count):
            raise ValueError(f"index {index} outside bitmap of {self.count}")
