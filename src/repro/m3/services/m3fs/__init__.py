"""m3fs: the in-memory filesystem service.

"organized like classical UNIX filesystems, consisting of a superblock,
an inode and block bitmap, an inode table and directories with pointers
to the inodes.  The data of an inode is stored in a tree of tables
containing extents" (Section 4.5.8).  Meta-data operations go through
the service; data transfers go directly to memory via delegated memory
capabilities.
"""

from repro.m3.services.m3fs.bitmap import Bitmap
from repro.m3.services.m3fs.extents import Extent
from repro.m3.services.m3fs.inode import Inode
from repro.m3.services.m3fs.superblock import SuperBlock
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.server import M3fsServer

__all__ = ["Bitmap", "Extent", "FsError", "Inode", "M3FS", "M3fsServer", "SuperBlock"]
