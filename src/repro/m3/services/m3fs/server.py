"""The m3fs server: the message loop of the filesystem service.

"For opening files, closing files, meta-data operations like mkdir,
link etc., the service is contacted ... The actual data transfers are
done without involving m3fs, because the applications directly read or
write to the memory, where the file is stored" (Section 4.5.8).  The
server hands out *memory capabilities* for extents via the kernel's
service-delegation syscall.
"""

from __future__ import annotations

import dataclasses

from repro import params
from repro.dtu.registers import MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.lib.gate import MemGate, RecvGate
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.superblock import SuperBlock
from repro.obs.causal import header_context

#: maximum extents returned per get_locs reply (bounded by the reply
#: message slot size, as on real hardware).
LOCS_PER_REPLY = 8

#: service request/reply geometry.
FS_MSG_BYTES = 496
FS_RING_SLOTS = 64


@dataclasses.dataclass
class _OpenFile:
    inode: object
    flags: int
    #: extents already delegated to the client (index high-water mark).
    delegated_upto: int = 0


class _Session:
    """Per-client state: open files."""

    def __init__(self, session_id: int):
        self.id = session_id
        self.files: dict[int, _OpenFile] = {}
        self._next_fd = 0

    def install(self, handle: _OpenFile) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self.files[fd] = handle
        return fd

    def get(self, fd: int) -> _OpenFile:
        try:
            return self.files[fd]
        except KeyError:
            raise FsError(f"bad file descriptor {fd}") from None


class M3fsServer:
    """Service wrapper around :class:`M3FS`, driven as VPE software."""

    def __init__(self, superblock: SuperBlock | None = None,
                 append_blocks: int = params.M3FS_APPEND_BLOCKS,
                 service_name: str = "m3fs", persist: bool = False):
        from repro.m3.services.m3fs import image

        self.service_name = service_name
        #: when persistent, the front of the region holds the metadata
        #: image and the ``sync`` operation writes it out.
        self.persist = persist
        self.fs = M3FS(
            superblock,
            append_blocks=append_blocks,
            reserve_meta_blocks=image.META_BLOCKS if persist else 0,
        )
        self.ready = None  # an Event, attached by M3System before spawn
        self.env = None
        self.region: MemGate | None = None
        self.service_sel: int | None = None
        self.requests_served = 0
        self.vpe = None

    # -- service software --------------------------------------------------

    def main(self, env):
        """Generator: runs as the m3fs VPE."""
        self.env = env
        self.region = yield from MemGate.create(
            env, self.fs.sb.size_bytes, MemoryPerm.RW.value
        )
        rgate = yield from RecvGate.create(
            env, slot_size=FS_MSG_BYTES + 16, slot_count=FS_RING_SLOTS
        )
        self.service_sel = yield from env.syscall(
            syscalls.CREATE_SRV, self.service_name, rgate.selector
        )
        sessions: dict[int, _Session] = {}
        if self.ready is not None:
            self.ready.succeed(self)
        while True:
            slot, message = yield from rgate.receive()
            obs = env.sim.obs
            started = env.sim.now
            operation, args = message.payload
            # The service span adopts the request's trace context from
            # the message header, so everything done here — including
            # delegation syscalls back to the kernel — stays causally
            # linked to the client's request.
            span = -1
            if obs is not None:
                span = obs.begin(operation, "m3fs", env.pe.node,
                                 parent=header_context(message.header),
                                 service=self.service_name)
            yield env.os_work(params.M3FS_SERVER_CYCLES)
            self.requests_served += 1
            if message.label == 0:
                # The kernel<->service channel: session management.
                if operation == "open_session":
                    session_id, _client_vpe = args
                    sessions[session_id] = _Session(session_id)
                    response = ("ok", ())
                else:
                    response = ("err", f"unknown kernel op {operation!r}")
            else:
                session = sessions.get(message.label)
                if session is None:
                    response = ("err", "no such session")
                else:
                    try:
                        handler = getattr(self, f"_op_{operation}")
                        result = yield from handler(session, *args)
                        response = ("ok", result)
                    except (FsError, AttributeError, TypeError, MemoryError) as exc:
                        response = ("err", str(exc))
            yield from rgate.reply(slot, response)
            if obs is not None:
                obs.count(f"m3fs.{self.service_name}.requests")
                obs.observe("m3fs.request_cycles", env.sim.now - started)
                obs.end(span, status=response[0])

    # -- capability delegation ----------------------------------------------

    def _delegate_extent(self, session: _Session, extent, perm: MemoryPerm):
        """Generator: hand the client a memory capability for an extent;
        returns the selector in the client's table."""
        offset, length = self.fs.extent_region(extent)
        selector = yield from self.env.syscall(
            syscalls.SRV_DELEGATE,
            self.service_sel,
            session.id,
            self.region.selector,
            offset,
            length,
            perm.value,
        )
        return selector, length

    @staticmethod
    def _perm_for(flags: int) -> MemoryPerm:
        from repro.m3.lib.file import OpenFlags

        if flags & OpenFlags.W:
            return MemoryPerm.RW
        return MemoryPerm.READ

    # -- operations ---------------------------------------------------------------

    def _op_open(self, session: _Session, path: str, flags: int):
        from repro.m3.lib.file import OpenFlags

        if not (flags & (OpenFlags.R | OpenFlags.W)):
            raise FsError("open needs read or write mode")
        if not self.fs.exists(path):
            if not (flags & OpenFlags.CREATE):
                raise FsError(f"no such file: {path!r}")
            inode = self.fs.create(path)
        else:
            inode = self.fs.resolve(path)
        if inode.is_dir:
            raise FsError(f"is a directory: {path!r}")
        if flags & OpenFlags.TRUNC:
            self.fs.truncate(inode, 0)
        fd = session.install(_OpenFile(inode=inode, flags=flags))
        return (fd, inode.size)
        yield  # pragma: no cover

    def _op_get_locs(self, session: _Session, fd: int, extent_index: int,
                     count: int):
        handle = session.get(fd)
        inode = handle.inode
        count = min(count, LOCS_PER_REPLY)
        entries = []
        for index in range(extent_index, min(extent_index + count,
                                             len(inode.extents))):
            selector, length = yield from self._delegate_extent(
                session, inode.extents[index], self._perm_for(handle.flags)
            )
            entries.append((selector, length))
        more = extent_index + len(entries) < len(inode.extents)
        return (entries, more)

    def _op_append(self, session: _Session, fd: int, want_blocks):
        from repro.m3.lib.file import OpenFlags

        handle = session.get(fd)
        if not (handle.flags & OpenFlags.W):
            raise FsError("file not open for writing")
        yield self.env.os_work(params.M3FS_ALLOC_CYCLES)
        extent = self.fs.append_extent(handle.inode, want_blocks)
        selector, length = yield from self._delegate_extent(
            session, extent, MemoryPerm.RW
        )
        return (selector, length)

    def _op_close(self, session: _Session, fd: int, final_size: int):
        from repro.m3.lib.file import OpenFlags

        handle = session.get(fd)
        if handle.flags & OpenFlags.W:
            yield self.env.os_work(params.M3FS_ALLOC_CYCLES)
            self.fs.truncate(handle.inode, final_size)
        del session.files[fd]
        return ()

    def _op_stat(self, session: _Session, path: str):
        return self.fs.stat(path)
        yield  # pragma: no cover

    def _op_mkdir(self, session: _Session, path: str):
        self.fs.mkdir(path)
        return ()
        yield  # pragma: no cover

    def _op_unlink(self, session: _Session, path: str):
        self.fs.unlink(path)
        return ()
        yield  # pragma: no cover

    def _op_link(self, session: _Session, existing: str, new_path: str):
        self.fs.link(existing, new_path)
        return ()
        yield  # pragma: no cover

    def _op_rename(self, session: _Session, old_path: str, new_path: str):
        self.fs.rename(old_path, new_path)
        return ()
        yield  # pragma: no cover

    def _op_readdir(self, session: _Session, path: str):
        return tuple(self.fs.readdir(path))
        yield  # pragma: no cover

    def _op_fsync(self, session: _Session, fd: int):
        session.get(fd)  # validate; an in-memory fs has nothing to flush
        return ()
        yield  # pragma: no cover

    def _op_sync(self, session: _Session):
        """Write the metadata image into the region's reserved blocks
        (a real, timed DTU transfer) — the filesystem now survives a
        service restart from the DRAM contents alone."""
        import struct

        from repro.m3.services.m3fs import image

        if not self.persist:
            raise FsError("service was not started with persist=True")
        payload = image.serialize(self.fs)
        capacity = image.META_BLOCKS * self.fs.sb.block_size
        if 8 + len(payload) > capacity:
            raise FsError("metadata image exceeds the reserved blocks")
        yield self.env.os_work(params.M3FS_ALLOC_CYCLES)
        yield from self.region.write(
            0, struct.pack("<Q", len(payload)) + payload
        )
        return len(payload)
