"""Inodes: files and directories."""

from __future__ import annotations

import dataclasses

from repro.m3.services.m3fs.extents import Extent


@dataclasses.dataclass
class Inode:
    """One filesystem object.

    Directories keep their entries in ``entries`` (name -> inode
    number); files keep their data placement in ``extents``.
    """

    ino: int
    kind: str  # "file" | "dir"
    size: int = 0
    links: int = 1
    extents: list[Extent] = dataclasses.field(default_factory=list)
    entries: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ("file", "dir"):
            raise ValueError(f"unknown inode kind {self.kind!r}")

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def extent_count(self) -> int:
        return len(self.extents)
