"""Extents: contiguous block runs, the unit of data-capability delegation.

"an extent is a pair of a starting block number and a number of
blocks. ... the applications get access to the data in form of memory
capabilities, representing contiguous pieces of memory" (Section 4.5.8).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks."""

    start_block: int
    block_count: int

    def __post_init__(self):
        if self.start_block < 0 or self.block_count < 1:
            raise ValueError(
                f"invalid extent start={self.start_block} count={self.block_count}"
            )

    def size_bytes(self, block_size: int) -> int:
        return self.block_count * block_size

    def shrink_to(self, block_count: int) -> "Extent":
        """The leading portion of this extent (for truncation)."""
        if not (1 <= block_count <= self.block_count):
            raise ValueError(f"cannot shrink extent to {block_count} blocks")
        return Extent(self.start_block, block_count)


def locate(extents: list[Extent], offset: int, block_size: int):
    """Find the extent covering byte ``offset``.

    Returns ``(index, offset_within_extent)``; raises IndexError when
    the offset lies beyond the allocated extents.
    """
    if offset < 0:
        raise ValueError(f"negative offset: {offset}")
    position = 0
    for index, extent in enumerate(extents):
        size = extent.size_bytes(block_size)
        if offset < position + size:
            return index, offset - position
        position += size
    raise IndexError(f"offset {offset} beyond allocated {position} bytes")


def total_bytes(extents: list[Extent], block_size: int) -> int:
    """Allocated capacity across all extents."""
    return sum(extent.size_bytes(block_size) for extent in extents)
