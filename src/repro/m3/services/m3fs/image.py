"""The m3fs on-disk image format.

"the organization of the data has been chosen to be suitable for
persistent storage as well, so that we can support it later"
(Section 4.5.8) — this module supports it: the filesystem's metadata
(superblock, bitmaps, inode table with extent lists, directories)
serialises into the reserved metadata blocks at the front of the data
region, so a filesystem survives a service restart with the data blocks
untouched in place.

Layout (little-endian, 8-byte fields unless noted):

    magic "M3FSIMG\\0" | version | block_size | total_blocks |
    total_inodes | append_blocks | reserved_meta_blocks | inode_count
    per inode: ino | kind (1B) | links | size | extent_count |
               extents (start, count)* | entry_count |
               entries (name_len u16, name utf-8, child_ino)*

Bitmaps are not stored: they are reconstructed from the inode table
(extents mark blocks, inodes mark inode slots), which keeps the image
small and guarantees consistency.
"""

from __future__ import annotations

import struct

from repro.m3.services.m3fs.extents import Extent
from repro.m3.services.m3fs.fs import FsError, M3FS
from repro.m3.services.m3fs.inode import Inode
from repro.m3.services.m3fs.superblock import SuperBlock

MAGIC = b"M3FSIMG\x00"
VERSION = 1

#: blocks reserved at the front of the region for the metadata image.
META_BLOCKS = 64

_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")


def _pack_u64(out: bytearray, *values: int) -> None:
    for value in values:
        out += _U64.pack(value)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def u64(self) -> int:
        (value,) = _U64.unpack_from(self.data, self.offset)
        self.offset += 8
        return value

    def u16(self) -> int:
        (value,) = _U16.unpack_from(self.data, self.offset)
        self.offset += 2
        return value

    def take(self, count: int) -> bytes:
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk


def serialize(fs: M3FS) -> bytes:
    """The filesystem's metadata as one byte string."""
    out = bytearray()
    out += MAGIC
    _pack_u64(out, VERSION, fs.sb.block_size, fs.sb.total_blocks,
              fs.sb.total_inodes, fs.append_blocks,
              fs.reserved_meta_blocks, len(fs.inodes))
    for ino in sorted(fs.inodes):
        inode = fs.inodes[ino]
        _pack_u64(out, inode.ino)
        out += b"d" if inode.is_dir else b"f"
        _pack_u64(out, inode.links, inode.size, len(inode.extents))
        for extent in inode.extents:
            _pack_u64(out, extent.start_block, extent.block_count)
        entries = inode.entries if inode.is_dir else {}
        _pack_u64(out, len(entries))
        for name, child_ino in sorted(entries.items()):
            encoded = name.encode("utf-8")
            out += _U16.pack(len(encoded))
            out += encoded
            _pack_u64(out, child_ino)
    return bytes(out)


def deserialize(data: bytes) -> M3FS:
    """Rebuild a filesystem from :func:`serialize` output."""
    reader = _Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise FsError("not an m3fs image (bad magic)")
    version = reader.u64()
    if version != VERSION:
        raise FsError(f"unsupported m3fs image version {version}")
    block_size = reader.u64()
    total_blocks = reader.u64()
    total_inodes = reader.u64()
    append_blocks = reader.u64()
    reserved_meta_blocks = reader.u64()
    inode_count = reader.u64()
    fs = M3FS(
        SuperBlock(block_size=block_size, total_blocks=total_blocks,
                   total_inodes=total_inodes),
        append_blocks=append_blocks,
        reserve_meta_blocks=reserved_meta_blocks,
    )
    # Wipe the constructor's fresh root; the image carries inode 0.
    fs.inodes.clear()
    fs.inode_bitmap.free_run(M3FS.ROOT_INO, 1)
    for _ in range(inode_count):
        ino = reader.u64()
        kind = "dir" if reader.take(1) == b"d" else "file"
        links = reader.u64()
        size = reader.u64()
        extent_count = reader.u64()
        extents = [
            Extent(reader.u64(), reader.u64()) for _ in range(extent_count)
        ]
        entry_count = reader.u64()
        entries = {}
        for _ in range(entry_count):
            name_length = reader.u16()
            name = reader.take(name_length).decode("utf-8")
            entries[name] = reader.u64()
        inode = Inode(ino=ino, kind=kind, size=size, links=links,
                      extents=extents, entries=entries)
        fs.inodes[ino] = inode
        # reconstruct the bitmaps
        fs.inode_bitmap._bits[ino] = 1
        fs.inode_bitmap.used += 1
        for extent in extents:
            for block in range(extent.start_block,
                               extent.start_block + extent.block_count):
                if fs.block_bitmap._bits[block]:
                    raise FsError(
                        f"corrupt image: block {block} claimed twice"
                    )
                fs.block_bitmap._bits[block] = 1
            fs.block_bitmap.used += extent.block_count
    if M3FS.ROOT_INO not in fs.inodes:
        raise FsError("corrupt image: no root inode")
    return fs


def save_to_region(fs: M3FS, region_write) -> int:
    """Write the image into the region's reserved metadata blocks.

    ``region_write(offset, data)`` is any byte-level writer (the DRAM
    array in tests, a DTU memory gate in a live service).  Returns the
    image size.  Raises when the image outgrows the reserved blocks.
    """
    image = serialize(fs)
    capacity = META_BLOCKS * fs.sb.block_size
    if 8 + len(image) > capacity:
        raise FsError(
            f"metadata image of {len(image)}B exceeds the reserved "
            f"{capacity}B"
        )
    region_write(0, _U64.pack(len(image)) + image)
    return len(image)


def load_from_region(region_read, block_size: int) -> M3FS:
    """Rebuild a filesystem from a region's metadata blocks."""
    (length,) = _U64.unpack(region_read(0, 8))
    capacity = META_BLOCKS * block_size
    if not (0 < length <= capacity - 8):
        raise FsError(f"implausible metadata image length {length}")
    return deserialize(bytes(region_read(8, length)))
