"""kvserv: a replicated key-value/object service tier.

The paper's service model (Section 4.5.3) is name-based: a service
registers under a name, clients open sessions through the kernel.
m3fs demonstrates a filesystem behind that protocol; kvserv
demonstrates the *service tier* of a traffic-serving system — a small
object store whose instances are replicated across kernel domains and
load-balanced by the kernels' session router
(:meth:`repro.m3.system.M3System.register_service_route`):

- every replica is an ordinary service (``CREATE_SRV``) in its own
  kernel domain, holding an in-memory ``key -> bytes`` store,
- clients open sessions against the *logical* name (e.g. ``"kv"``);
  their kernel resolves it round-robin to a live replica — locally or
  over the inter-kernel ``srv_open`` path (docs/protocols.md),
- sessions are explicitly reclaimed: ``close`` drops the session
  state, mirroring netserv's close path.

Values travel inside request/reply messages (bounded by the message
slot), so kvserv models the small-object regime — the common case for
session stores, metadata caches, and serving-tier lookups.
"""

from __future__ import annotations

import typing

from repro import params
from repro.m3.kernel import syscalls
from repro.m3.lib.env import Env
from repro.m3.lib.gate import BoundRecvGate, RecvGate, SendGate
from repro.obs.causal import header_context

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.system import M3System

#: largest value that fits a request message next to key + framing.
MAX_VALUE_BYTES = 384


class KvError(Exception):
    """A kv request the service refused (bad key/value, closed session)."""


class _KvSession:
    """Per-client state: request accounting (the store is shared)."""

    __slots__ = ("id", "requests")

    def __init__(self, session_id: int):
        self.id = session_id
        self.requests = 0


class KvServ:
    """One replica: the store plus the service message loop."""

    def __init__(self, service_name: str = "kv",
                 op_cycles: int | None = None):
        self.service_name = service_name
        #: per-operation service cycles.  The default is the plain
        #: store cost; compute-heavy tiers (scoring, rendering — the
        #: elastic-scaling eval) raise it to model real per-request
        #: work on the replica's PE.
        self.op_cycles = (
            params.KV_SERVER_CYCLES if op_cycles is None else op_cycles
        )
        self.ready = None  # an Event, attached before spawn
        self.env = None
        self.vpe = None
        #: warm-boot staging (the autoscaler's clone path): with
        #: ``staged`` set, :meth:`main` announces itself on it and then
        #: parks on ``hold`` *before* creating its receive gate — so
        #: the clone can be cross-domain-migrated first and register
        #: its service with the kernel it will actually live under.
        self.staged = None
        self.hold = None
        #: the object store.  A plain dict: iteration order is
        #: insertion order, so reports stay deterministic.
        self.store: dict[str, bytes] = {}
        self.sessions: dict[int, _KvSession] = {}
        self.requests_served = 0
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.misses = 0
        self.bytes_stored = 0
        self.sessions_opened = 0
        self.sessions_closed = 0

    # -- service software ---------------------------------------------------

    def main(self, env):
        """Generator: runs as the kvserv VPE."""
        self.env = env
        if self.staged is not None:
            # Warm-boot staging: park before touching any kernel state
            # beyond the syscall channel.  The hold event survives a
            # live migration (env.pe/env.dtu are repointed under us).
            self.staged.succeed(self)
            yield self.hold
        rgate = yield from RecvGate.create(
            env, slot_size=params.KV_MSG_BYTES + 16,
            slot_count=params.KV_RING_SLOTS,
        )
        yield from env.syscall(
            syscalls.CREATE_SRV, self.service_name, rgate.selector
        )
        if self.ready is not None:
            self.ready.succeed(self)
        while True:
            slot, message = yield from rgate.receive()
            obs = env.sim.obs
            started = env.sim.now
            operation, args = message.payload
            # Adopt the request's trace context (like m3fs), so a
            # traced client request stays causally linked through the
            # replica's handling.
            span = -1
            if obs is not None:
                span = obs.begin(operation, "kv", env.pe.node,
                                 parent=header_context(message.header),
                                 service=self.service_name)
            yield env.os_work(self.op_cycles)
            self.requests_served += 1
            if message.label == 0:
                # kernel<->service channel: session management.
                if operation == "open_session":
                    session_id, _client_vpe = args
                    self.sessions[session_id] = _KvSession(session_id)
                    self.sessions_opened += 1
                    response = ("ok", ())
                else:
                    response = ("err", f"unknown kernel op {operation!r}")
            else:
                session = self.sessions.get(message.label)
                if session is None:
                    response = ("err", "no such session")
                else:
                    session.requests += 1
                    try:
                        handler = getattr(self, f"_op_{operation}")
                        result = yield from handler(session, *args)
                        response = ("ok", result)
                    except (KvError, AttributeError, TypeError) as exc:
                        response = ("err", str(exc))
            yield from rgate.reply(slot, response)
            if obs is not None:
                obs.count(f"kv.{self.service_name}.requests")
                obs.observe("kv.request_cycles", env.sim.now - started)
                obs.end(span, status=response[0])

    def _value_copy(self, nbytes: int):
        """Generator: the server-side copy of a value payload."""
        if nbytes:
            yield self.env.os_work(
                max(1, nbytes // params.KV_VALUE_BYTES_PER_CYCLE)
            )

    # -- session operations ---------------------------------------------------

    def _op_get(self, session: _KvSession, key: str):
        """The value bytes, or None when the key is absent."""
        self.gets += 1
        value = self.store.get(key)
        if value is None:
            self.misses += 1
            return None
        yield from self._value_copy(len(value))
        return value

    def _op_put(self, session: _KvSession, key: str, value: bytes):
        value = bytes(value)
        if not key:
            raise KvError("empty key")
        if len(value) > MAX_VALUE_BYTES:
            raise KvError(f"value of {len(value)}B too large")
        yield from self._value_copy(len(value))
        previous = self.store.get(key)
        if previous is not None:
            self.bytes_stored -= len(previous)
        self.store[key] = value
        self.bytes_stored += len(value)
        self.puts += 1
        return len(value)

    def _op_delete(self, session: _KvSession, key: str):
        self.deletes += 1
        previous = self.store.pop(key, None)
        if previous is None:
            self.misses += 1
            return False
        self.bytes_stored -= len(previous)
        return True
        yield  # pragma: no cover

    def _op_close(self, session: _KvSession):
        """Reclaim the session (same contract as netserv's close)."""
        self.sessions.pop(session.id, None)
        self.sessions_closed += 1
        return ()
        yield  # pragma: no cover


class KvClient:
    """One application's session with a kv replica (or logical tier)."""

    def __init__(self, env: Env, session_sel: int, sgate: SendGate):
        self.env = env
        self.session_sel = session_sel
        self.sgate = sgate
        self.reply_gate = BoundRecvGate(env, Env.EP_REPLY)

    @classmethod
    def connect(cls, env: Env, service: str = "kv"):
        """Generator: open a (possibly routed) session with the tier."""
        session_sel, sgate_sel = yield from env.syscall(
            syscalls.OPEN_SESSION, service
        )
        return cls(env, session_sel, SendGate(env, sgate_sel))

    def request(self, operation: str, *args):
        """Generator: one RPC to the replica; returns the result."""
        yield self.env.sim.delay(params.KV_CLIENT_RPC_CYCLES, tag="os")
        message = yield from self.sgate.call(
            (operation, args), self.reply_gate
        )
        status, result = message.payload
        if status != "ok":
            raise KvError(result)
        return result

    def get(self, key: str):
        return (yield from self.request("get", key))

    def put(self, key: str, value: bytes):
        return (yield from self.request("put", key, value))

    def delete(self, key: str):
        return (yield from self.request("delete", key))

    def close(self):
        return (yield from self.request("close"))


def start_kv_tier(system: "M3System", replicas: int | None = None,
                  name: str = "kv", domains: list | None = None,
                  policy: str = "rr", op_cycles: int | None = None):
    """Boot a replicated kv tier and install its session route.

    One replica per kernel domain by default (``replicas``/``domains``
    override the count and placement).  Replica ``i`` registers as
    ``{name}{i}`` in its domain; the logical ``name`` is then routed
    across the live replicas by every kernel — round-robin by default,
    least-loaded with ``policy="depth"``.  Returns the :class:`KvServ`
    instances in replica order.
    """
    if domains is None:
        count = replicas if replicas is not None else len(system.kernels)
        domains = [index % len(system.kernels) for index in range(count)]
    servers = []
    route = []
    for index, domain in enumerate(domains):
        server = KvServ(service_name=f"{name}{index}", op_cycles=op_cycles)
        server.ready = system.sim.event(f"{name}{index}.ready")
        vpe = system.spawn(server.main, name=f"{name}{index}", domain=domain)
        system.sim.run(until_event=server.ready)
        if not server.ready.triggered:
            raise RuntimeError(f"kv replica {name}{index} failed to start")
        server.vpe = vpe
        servers.append(server)
        route.append((server.service_name, domain))
        if system.sim.obs is not None:
            system.sim.obs.label_node(vpe.node, f"service:{name}{index}")
    system.register_service_route(name, route, policy=policy)
    obs = system.sim.obs
    if obs is not None and obs.telemetry is not None:
        # Per-replica queue depth as a telemetry series, sampled at
        # each epoch close from the owning kernel — the authoritative
        # copy of the signal the depth router and autoscaler act on.
        # Reading the live route each time keeps replicas the
        # autoscaler adds (or retires) in the series automatically.
        def depth_sampler():
            return tuple(
                (f"kv.{replica}.depth",
                 system.kernels[owner]._local_depth(replica))
                for replica, owner in
                system.kernels[0].service_routes.get(name, ())
            )

        obs.telemetry.add_sampler(depth_sampler)
    return servers
