"""The per-VPE runtime environment.

An :class:`Env` is what application code receives as its first
argument: access to the local PE and DTU, the syscall channel, the
endpoint multiplexer, and the VFS.  It is libm3's view of one VPE.
"""

from __future__ import annotations

import typing

from repro import params
from repro.m3.kernel import syscalls
from repro.m3.kernel.kernel import APP_REPLY_EP, APP_SYSCALL_EP, SYSCALL_MSG_BYTES, SyscallError
from repro.m3.lib.marshalling import wire_size
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.pe import ProcessingElement
    from repro.m3.system import M3System


class EpMux:
    """Endpoint multiplexer: more gates than endpoints.

    "since the DTU provides only a limited number of endpoints ... and
    applications might need more send gates or memory gates than
    endpoints are available, multiplexing is used to share the
    endpoints among these gates.  This is done by libm3, which checks
    before the usage of a gate whether the endpoint is appropriately
    configured" (Section 4.5.4).  Receive gates are pinned; send and
    memory gates are evicted in LRU order.
    """

    def __init__(self, env: "Env"):
        self.env = env
        first = Env.FIRST_FREE_EP
        total = len(env.pe.dtu.eps)
        #: ep index -> gate currently occupying it (None = free).
        self.slots: dict[int, object] = {ep: None for ep in range(first, total)}
        self._use_clock = 0
        self._last_use: dict[int, int] = {ep: 0 for ep in self.slots}
        self.activations = 0

    def touch(self, ep_index: int) -> None:
        self._use_clock += 1
        self._last_use[ep_index] = self._use_clock

    def invalidate_all(self) -> None:
        """Forget every binding (after the kernel context-switched this
        VPE off its PE and invalidated the endpoints)."""
        for ep_index, gate in self.slots.items():
            if gate is not None:
                gate.ep = None
            self.slots[ep_index] = None

    def acquire(self, gate):
        """Generator: make sure ``gate`` is bound to an endpoint."""
        if gate.ep is not None:
            self.touch(gate.ep)
            return gate.ep
        victim_ep = None
        for ep, occupant in self.slots.items():
            if occupant is None:
                victim_ep = ep
                break
        if victim_ep is None:
            # Evict the least-recently-used non-pinned gate.
            candidates = [
                ep for ep, occupant in self.slots.items()
                if occupant is not None and not occupant.pinned
            ]
            if not candidates:
                raise RuntimeError("all endpoints are pinned; cannot multiplex")
            victim_ep = min(candidates, key=lambda ep: self._last_use[ep])
            self.slots[victim_ep].ep = None
        yield from self.env.syscall(syscalls.ACTIVATE, victim_ep, gate.selector)
        self.slots[victim_ep] = gate
        gate.ep = victim_ep
        self.touch(victim_ep)
        self.activations += 1
        return victim_ep


class Env:
    """libm3's runtime state for one running VPE."""

    #: standard endpoint assignment (mirrors the kernel's constants).
    EP_SYSCALL = APP_SYSCALL_EP
    EP_REPLY = APP_REPLY_EP
    FIRST_FREE_EP = 2

    def __init__(self, system: "M3System", vpe_id: int,
                 pe: "ProcessingElement"):
        self.system = system
        self.vpe_id = vpe_id
        self.pe = pe
        self.sim = system.sim
        self.dtu = pe.dtu
        self.epmux = EpMux(self)
        self.syscall_count = 0
        #: Figure 6 methodology: replace DRAM data transfers with
        #: equal-time spinning (messages still go over the NoC).
        self.spin_io = False
        #: lazily created VFS (applications that never touch files pay
        #: nothing for it).
        self._vfs = None

    # -- syscalls -----------------------------------------------------------

    def syscall(self, opcode: str, *args):
        """Generator: perform a syscall and return its result.

        Sends the message through the DTU to the kernel PE and waits
        for the reply (Section 5.3); raises :class:`SyscallError` on an
        error reply.
        """
        self.syscall_count += 1
        obs = self.sim.obs
        started = self.sim.now
        # The client span is the root of the request's causal trace
        # (unless this syscall itself runs on behalf of another traced
        # request, e.g. from a service handler): the DTU stamps the
        # trace context into the message header, and everything the
        # kernel (and any service) does for this syscall hangs off it.
        span = -1
        if obs is not None:
            span = obs.begin(opcode, "syscall-client", self.pe.node,
                             vpe=self.vpe_id)
        payload = (opcode, args)
        try:
            yield self.sim.delay(params.M3_SYSCALL_CLIENT_CYCLES, tag=Tag.OS)
            self.dtu.send(
                self.EP_SYSCALL,
                payload,
                min(wire_size(payload), SYSCALL_MSG_BYTES),
                reply_ep=self.EP_REPLY,
            )
            slot, reply = yield from self._await_reply()
        except BaseException:
            if obs is not None:
                obs.end(span, outcome="interrupted")
            raise
        self.dtu.ack_message(self.EP_REPLY, slot)
        if obs is not None:
            # Client-observed syscall round trip: request marshalling,
            # both DTU transfers, and the kernel's handling.
            obs.observe("m3.syscall_rtt", self.sim.now - started)
            obs.end(span)
        status, result = reply.payload
        if status != "ok":
            raise SyscallError(result)
        return result

    def _await_reply(self):
        """Generator: wait for a reply, re-reading :attr:`dtu` on every
        wake-up.

        A context switch can *migrate* this VPE while it is parked in a
        syscall; the restore fires a spurious wake-up on the old DTU and
        this loop then continues on the new one.
        """
        while True:
            fetched = self.dtu.fetch_message(self.EP_REPLY)
            if fetched is not None:
                return fetched
            yield self.dtu.signal(self.EP_REPLY).wait()

    def exit(self, code: object = 0):
        """Generator: tell the kernel this VPE is done (no reply)."""
        yield self.sim.delay(params.M3_SYSCALL_CLIENT_CYCLES, tag=Tag.OS)
        yield self.dtu.send(
            self.EP_SYSCALL,
            (syscalls.EXIT, (code,)),
            SYSCALL_MSG_BYTES,
        )

    # -- timing helpers --------------------------------------------------------

    def compute(self, cycles: int):
        """Application computation (the figures' "App" stack)."""
        return self.sim.delay(cycles, tag=Tag.APP)

    def compute_op(self, operation: str, nbytes: int):
        """Computation priced by this PE's core type (e.g. ``fft``)."""
        return self.pe.compute_op(operation, nbytes)

    def os_work(self, cycles: int):
        """libm3/OS-path cycles (the figures' "OS" stack)."""
        return self.sim.delay(cycles, tag=Tag.OS)

    # -- memory helpers ----------------------------------------------------------

    def alloc_buffer(self, nbytes: int) -> int:
        """SPM space for an application buffer."""
        return self.pe.alloc_buffer(nbytes)

    def request_mem(self, size: int, perm_value: int):
        """Generator: obtain a DRAM region capability (selector)."""
        return (yield from self.syscall(syscalls.REQUEST_MEM, size, perm_value))

    # -- filesystem access ----------------------------------------------------------

    @property
    def vfs(self):
        """The mount table (created on first use)."""
        if self._vfs is None:
            from repro.m3.lib.vfs import VFS

            self._vfs = VFS(self)
        return self._vfs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Env vpe={self.vpe_id} pe={self.pe.node}>"
