"""Message (un)marshalling.

"Inspired by previous L4 marshalling frameworks, it overloads the C++
shift operators to marshal an object into the message or unmarshal it
again" (Section 4.5.6).  The Python equivalent overloads ``<<`` and
``>>`` on small stream objects; the simulation mostly cares about the
*wire size* a value set occupies, which drives transfer timing.
"""

from __future__ import annotations


def wire_size(value: object) -> int:
    """Bytes a value occupies in a message (8-byte aligned fields)."""
    if value is None:
        return 8
    if isinstance(value, bool):
        return 8
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 8 + _align8(len(value.encode("utf-8")))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return 8 + _align8(len(value))
    if isinstance(value, (tuple, list)):
        return 8 + sum(wire_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(wire_size(k) + wire_size(v) for k, v in value.items())
    if callable(value):
        # An entry point travels as a single address (the simulation
        # carries the Python callable where hardware carries a PC value).
        return 8
    raise TypeError(f"cannot marshal value of type {type(value).__name__}")


def _align8(n: int) -> int:
    return (n + 7) & ~7


class Ostream:
    """Marshalling stream: ``os << a << b`` collects values."""

    def __init__(self):
        self.values: list = []

    def __lshift__(self, value: object) -> "Ostream":
        wire_size(value)  # reject unmarshallable values eagerly
        self.values.append(value)
        return self

    @property
    def size(self) -> int:
        """Wire size of everything marshalled so far."""
        return sum(wire_size(v) for v in self.values)

    def payload(self) -> tuple:
        """The message payload (what travels in the simulated packet)."""
        return tuple(self.values)


class Istream:
    """Unmarshalling stream: ``is_ >> ref`` pops values in order."""

    def __init__(self, payload):
        self._values = list(payload)
        self._index = 0

    def pop(self) -> object:
        """The next value (explicit-call style)."""
        if self._index >= len(self._values):
            raise ValueError("unmarshalling past the end of the message")
        value = self._values[self._index]
        self._index += 1
        return value

    def __iter__(self):
        while self._index < len(self._values):
            yield self.pop()

    @property
    def remaining(self) -> int:
        return len(self._values) - self._index
