"""The pipe filesystem: pipes integrated into the VFS.

"Besides m3fs, it provides a pipe filesystem to integrate pipes into
the VFS, making it transparent for applications whether they access a
pipe or a file in m3fs" (Section 4.5.8).

A :class:`PipeFs` instance is mounted at a prefix (say ``/pipes``);
opening a path below it for writing yields the pipe's writer end,
opening it for reading yields the reader end.  The underlying pipe is
created lazily on first open.  The returned channel objects implement
the same ``read``/``write``/``close`` generator protocol as
:class:`~repro.m3.lib.file.File`, so code like cat+tr works unchanged
on either.
"""

from __future__ import annotations

import typing

from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe
from repro.m3.services.m3fs.fs import FsError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env


class _PipeEntry:
    def __init__(self):
        self.pipe: Pipe | None = None
        self.reader_taken = False
        self.writer_taken = False


class PipeChannel:
    """File-compatible wrapper around one pipe end."""

    def __init__(self, path: str, endpoint, writable: bool):
        self.path = path
        self._endpoint = endpoint
        self._writable = writable

    def read(self, count: int):
        if self._writable:
            raise FsError(f"pipe {self.path!r} opened write-only")
        return (yield from self._endpoint.read(count))

    def write(self, data: bytes):
        if not self._writable:
            raise FsError(f"pipe {self.path!r} opened read-only")
        return (yield from self._endpoint.write(data))

    def seek(self, offset: int, whence: int = 0):
        raise FsError("pipes are not seekable")
        yield  # pragma: no cover

    def close(self):
        if self._writable:
            # No draining: through the pipefs both ends may live in the
            # same VPE, which reads only after the writer closed.
            yield from self._endpoint.close(drain=False)
        return None
        yield  # pragma: no cover


class PipeFs:
    """A VFS-mountable namespace of named pipes.

    One VPE creates the PipeFs and both ends are used from VPEs that
    share the mount (typically parent and child; the parent passes the
    delegated pipe capabilities through entry arguments exactly as with
    anonymous pipes — see :meth:`delegate_reader` on the entry's pipe).
    """

    def __init__(self, env: "Env", ring_bytes: int = 64 * 1024,
                 slots: int = 16):
        self.env = env
        self.ring_bytes = ring_bytes
        self.slots = slots
        self._entries: dict[str, _PipeEntry] = {}

    def _entry(self, path: str):
        entry = self._entries.get(path)
        if entry is None:
            entry = _PipeEntry()
            self._entries[path] = entry
        if entry.pipe is None:
            entry.pipe = yield from Pipe.create(
                self.env, ring_bytes=self.ring_bytes, slots=self.slots
            )
        return entry

    # -- the filesystem-client protocol used by the VFS ---------------------

    def open(self, path: str, flags):
        """Generator: an end of the named pipe at ``path``."""
        flags = OpenFlags(int(flags))
        wants_write = bool(flags & OpenFlags.W)
        wants_read = bool(flags & OpenFlags.R)
        if wants_read == wants_write:
            raise FsError("a pipe end is opened either to read or to write")
        entry = yield from self._entry(path)
        if wants_write:
            if entry.writer_taken:
                raise FsError(f"pipe {path!r} already has a writer")
            entry.writer_taken = True
            writer = yield from entry.pipe.writer().open()
            return PipeChannel(path, writer, writable=True)
        if entry.reader_taken:
            raise FsError(f"pipe {path!r} already has a reader")
        entry.reader_taken = True
        reader = yield from entry.pipe.reader().open()
        return PipeChannel(path, reader, writable=False)

    def stat(self, path: str):
        entry = self._entries.get(path)
        if entry is None:
            raise FsError(f"no such pipe: {path!r}")
        return ("pipe", 0, 1, 0)
        yield  # pragma: no cover

    def readdir(self, path: str):
        if self._entries and path not in ("/", ""):
            raise FsError("pipefs has a flat namespace")
        return sorted(name.lstrip("/") for name in self._entries)
        yield  # pragma: no cover

    def unlink(self, path: str):
        if path not in self._entries:
            raise FsError(f"no such pipe: {path!r}")
        del self._entries[path]
        return None
        yield  # pragma: no cover

    def mkdir(self, path: str):
        raise FsError("pipefs does not support directories")
        yield  # pragma: no cover

    def link(self, existing: str, new_path: str):
        raise FsError("pipefs does not support links")
        yield  # pragma: no cover
