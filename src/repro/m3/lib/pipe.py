"""Pipes: a unidirectional data channel over a DRAM ringbuffer.

"On M3, a pipe is a unidirectional data channel between exactly one
writer and exactly one reader.  The data is thereby transferred over a
software-managed ringbuffer in the DRAM ... after writing new data to
the ringbuffer, the writer notifies the reader with a message, which
in turn will read the data from the ringbuffer, after it received the
message. ... after setting up the pipe, the kernel is not involved in
the communication" (Section 4.5.7).

Mechanics: the DRAM ring is divided into ``slots`` chunks.  The writer
RDMA-writes a chunk and sends a notification ``(offset, length)`` to
the reader's receive gate.  The reader consumes the data and *replies*
to the notification — the reply both refills the writer's send-gate
credits and signals that the slot's ring space is free, so the credit
system is exactly the flow control.  A zero-length notification is EOF.
"""

from __future__ import annotations

import typing

from repro import params
from repro.dtu.registers import MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.lib.gate import MemGate, RecvGate, SendGate
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env
    from repro.m3.lib.vpe import VPE

#: default geometry: 64 KiB ring in 16 slots of 4 KiB.
DEFAULT_RING_BYTES = 64 * 1024
DEFAULT_SLOTS = 16

#: notification message size (offset + length).
NOTIFY_BYTES = 32


class Pipe:
    """Pipe capabilities, created by one endpoint's VPE.

    The creator keeps one end and delegates the other end's
    capabilities to the peer VPE before starting it.
    """

    def __init__(self, env: "Env", mem_gate: MemGate, rgate_sel: int,
                 sgate_sel: int, ring_bytes: int, slots: int):
        self.env = env
        self.mem_gate = mem_gate
        self.rgate_sel = rgate_sel
        self.sgate_sel = sgate_sel
        self.ring_bytes = ring_bytes
        self.slots = slots

    @classmethod
    def create(cls, env: "Env", ring_bytes: int = DEFAULT_RING_BYTES,
               slots: int = DEFAULT_SLOTS):
        """Generator: allocate the DRAM ring and the notification gates."""
        if ring_bytes % slots:
            raise ValueError("ring size must divide evenly into slots")
        mem_gate = yield from MemGate.create(
            env, ring_bytes, MemoryPerm.RW.value
        )
        rgate_sel = yield from env.syscall(
            syscalls.CREATE_RGATE, NOTIFY_BYTES + 16, slots
        )
        sgate_sel = yield from env.syscall(
            syscalls.CREATE_SGATE, rgate_sel, 0, slots
        )
        return cls(env, mem_gate, rgate_sel, sgate_sel, ring_bytes, slots)

    @property
    def chunk_bytes(self) -> int:
        return self.ring_bytes // self.slots

    # -- local endpoints (for the creating VPE) ------------------------------

    def reader(self) -> "PipeReader":
        return PipeReader(
            self.env, self.mem_gate, self.rgate_sel, self.ring_bytes, self.slots
        )

    def writer(self) -> "PipeWriter":
        return PipeWriter(
            self.env, self.mem_gate, self.sgate_sel, self.ring_bytes, self.slots
        )

    # -- delegation to the peer VPE --------------------------------------------

    def delegate_reader(self, vpe: "VPE"):
        """Generator: grant the reader-end capabilities to ``vpe``;
        returns (mem_sel, rgate_sel, ring_bytes, slots) for its entry args."""
        mem_sel = yield from vpe.delegate(self.mem_gate.selector)
        rgate_sel = yield from vpe.delegate(self.rgate_sel)
        return (mem_sel, rgate_sel, self.ring_bytes, self.slots)

    def delegate_writer(self, vpe: "VPE"):
        """Generator: grant the writer-end capabilities to ``vpe``."""
        mem_sel = yield from vpe.delegate(self.mem_gate.selector)
        sgate_sel = yield from vpe.delegate(self.sgate_sel)
        return (mem_sel, sgate_sel, self.ring_bytes, self.slots)


class PipeReader:
    """The consuming end."""

    def __init__(self, env: "Env", mem, rgate_sel_or_gate, ring_bytes: int,
                 slots: int):
        self.env = env
        self.mem = mem if isinstance(mem, MemGate) else MemGate(env, mem, ring_bytes)
        if isinstance(rgate_sel_or_gate, RecvGate):
            self.rgate = rgate_sel_or_gate
        else:
            self.rgate = RecvGate(
                env, rgate_sel_or_gate, NOTIFY_BYTES + 16, slots
            )
        self.ring_bytes = ring_bytes
        self.slots = slots
        self._leftover = b""
        self._eof = False

    @classmethod
    def attach(cls, env: "Env", mem_sel: int, rgate_sel: int,
               ring_bytes: int, slots: int):
        """Generator: bind the delegated reader end (activates the gate,
        which also releases any sender blocked in a deferred activate)."""
        reader = cls(env, mem_sel, rgate_sel, ring_bytes, slots)
        yield from reader.rgate.activate()
        return reader

    def open(self):
        """Generator: activate the receive gate (creator-side variant)."""
        yield from self.rgate.activate()
        return self

    def read(self, count: int):
        """Generator: up to ``count`` bytes; empty bytes at EOF."""
        if self._leftover:
            data, self._leftover = (
                self._leftover[:count],
                self._leftover[count:],
            )
            return data
        if self._eof:
            return b""
        slot, message = yield from self.rgate.receive()
        yield self.env.sim.delay(params.M3_PIPE_NOTIFY_CYCLES, tag=Tag.OS)
        offset, length = message.payload
        if length == 0:
            self._eof = True
            yield from self.rgate.reply(slot, (), 8)
            return b""
        data = yield from self.mem.read(offset, length)
        # The reply returns the ring space and the sender's credit.
        yield from self.rgate.reply(slot, (), 8)
        if len(data) > count:
            self._leftover = data[count:]
            data = data[:count]
        return data


class PipeWriter:
    """The producing end."""

    def __init__(self, env: "Env", mem, sgate_sel_or_gate, ring_bytes: int,
                 slots: int):
        self.env = env
        self.mem = mem if isinstance(mem, MemGate) else MemGate(env, mem, ring_bytes)
        if isinstance(sgate_sel_or_gate, SendGate):
            self.sgate = sgate_sel_or_gate
        else:
            self.sgate = SendGate(env, sgate_sel_or_gate)
        self.ring_bytes = ring_bytes
        self.slots = slots
        self.chunk_bytes = ring_bytes // slots
        self._sequence = 0
        self._ack_gate: RecvGate | None = None
        self._outstanding = 0
        self._closed = False

    @classmethod
    def attach(cls, env: "Env", mem_sel: int, sgate_sel: int,
               ring_bytes: int, slots: int):
        """Generator: bind the delegated writer end."""
        writer = cls(env, mem_sel, sgate_sel, ring_bytes, slots)
        yield from writer._setup()
        return writer

    def open(self):
        """Generator: creator-side setup."""
        yield from self._setup()
        return self

    def _setup(self):
        # A dedicated gate for consumption acknowledgements, so they
        # never mix with syscall/service replies on the standard EP.
        self._ack_gate = yield from RecvGate.create(
            self.env, slot_size=32, slot_count=self.slots
        )

    def _drain_one(self):
        """Generator: absorb one pending ack (refills one credit)."""
        slot, _ack = yield from self._ack_gate.receive()
        self._ack_gate.ack(slot)
        self._outstanding -= 1

    def write(self, data: bytes):
        """Generator: push all of ``data`` through the pipe."""
        if self._closed:
            raise RuntimeError("pipe writer is closed")
        view = memoryview(bytes(data))
        sent = 0
        while sent < len(view):
            chunk = bytes(view[sent : sent + self.chunk_bytes])
            yield from self._send_chunk(chunk)
            sent += len(chunk)
        return sent

    def _send_chunk(self, chunk: bytes):
        # Block while the ring is full: every in-flight notification
        # covers one slot, so slot exhaustion == ring exhaustion.
        while self._outstanding >= self.slots:
            yield from self._drain_one()
        offset = (self._sequence % self.slots) * self.chunk_bytes
        self._sequence += 1
        yield self.env.sim.delay(params.M3_PIPE_NOTIFY_CYCLES, tag=Tag.OS)
        yield from self.mem.write(offset, chunk)
        yield from self.sgate.send(
            (offset, len(chunk)), NOTIFY_BYTES, reply_gate=self._ack_gate
        )
        self._outstanding += 1

    def close(self, drain: bool = True):
        """Generator: signal EOF; by default also wait until the reader
        consumed everything.

        ``drain=False`` skips the wait — needed when the same VPE holds
        both pipe ends (e.g. through the pipe filesystem) and will only
        start reading after the writer is done.
        """
        if self._closed:
            return
        while self._outstanding >= self.slots:
            yield from self._drain_one()
        yield from self.sgate.send((0, 0), NOTIFY_BYTES,
                                   reply_gate=self._ack_gate)
        self._outstanding += 1
        while drain and self._outstanding > 0:
            yield from self._drain_one()
        self._closed = True
