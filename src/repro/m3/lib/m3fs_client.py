"""Client side of the m3fs protocol: a session plus request helpers."""

from __future__ import annotations

import typing

from repro.m3.kernel import syscalls
from repro.m3.lib.env import Env
from repro.m3.lib.gate import BoundRecvGate, SendGate
from repro.m3.services.m3fs.fs import FsError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.file import File


class M3fsClient:
    """One application's session with the m3fs service."""

    def __init__(self, env: Env, session_sel: int, sgate: SendGate):
        self.env = env
        self.session_sel = session_sel
        self.sgate = sgate
        self.reply_gate = BoundRecvGate(env, Env.EP_REPLY)

    @classmethod
    def connect(cls, env: Env, service: str = "m3fs"):
        """Generator: open a session with the filesystem service."""
        session_sel, sgate_sel = yield from env.syscall(
            syscalls.OPEN_SESSION, service
        )
        return cls(env, session_sel, SendGate(env, sgate_sel))

    def request(self, operation: str, *args):
        """Generator: one RPC to the service; returns the result payload.

        The client-side share (marshalling, unmarshalling, descriptor
        bookkeeping) dominates the request cost; only the small
        server-side share serialises at the service (see
        :data:`repro.params.M3FS_CLIENT_RPC_CYCLES`).
        """
        from repro import params

        obs = self.env.sim.obs
        # Root (or child, when called under a traced span) of the
        # request's causal trace: the send gate's DTU message carries
        # the context to the service.
        span = -1
        if obs is not None:
            span = obs.begin(operation, "m3fs-client", self.env.pe.node,
                             vpe=self.env.vpe_id)
        try:
            yield self.env.sim.delay(params.M3FS_CLIENT_RPC_CYCLES, tag="os")
            message = yield from self.sgate.call(
                (operation, args), self.reply_gate
            )
        except BaseException:
            if obs is not None:
                obs.end(span, outcome="interrupted")
            raise
        if obs is not None:
            obs.end(span)
        status, result = message.payload
        if status != "ok":
            raise FsError(result)
        return result

    # -- file access -----------------------------------------------------------

    def open(self, path: str, flags: int):
        """Generator: open (possibly creating) a file; returns a File."""
        from repro.m3.lib.file import File

        fd, size = yield from self.request("open", path, int(flags))
        return File(self.env, self, fd, size, int(flags), path)

    # -- metadata operations ------------------------------------------------------

    def stat(self, path: str):
        """Generator: (kind, size, links, extent_count)."""
        return (yield from self.request("stat", path))

    def mkdir(self, path: str):
        yield from self.request("mkdir", path)

    def unlink(self, path: str):
        yield from self.request("unlink", path)

    def link(self, existing: str, new_path: str):
        yield from self.request("link", existing, new_path)

    def rename(self, old_path: str, new_path: str):
        yield from self.request("rename", old_path, new_path)

    def readdir(self, path: str):
        """Generator: sorted entry names of a directory."""
        return list((yield from self.request("readdir", path)))
