"""The virtual filesystem: mount points over filesystem clients.

"libm3 offers a virtual filesystem (VFS) that allows to mount
filesystems at specific paths.  Besides m3fs, it provides a pipe
filesystem to integrate pipes into the VFS" (Section 4.5.8).
"""

from __future__ import annotations

import typing

from repro.m3.services.m3fs.fs import FsError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env


class VFS:
    """Per-VPE mount table; lazily connects to m3fs at '/'."""

    def __init__(self, env: "Env"):
        self.env = env
        #: (prefix, filesystem client) pairs, longest prefix wins.
        self.mounts: list[tuple[str, object]] = []

    def mount(self, prefix: str, filesystem: object) -> None:
        """Attach a filesystem client at ``prefix``."""
        prefix = "/" + "/".join(p for p in prefix.split("/") if p)
        if any(existing == prefix for existing, _ in self.mounts):
            raise FsError(f"{prefix!r} is already a mount point")
        self.mounts.append((prefix, filesystem))
        self.mounts.sort(key=lambda entry: len(entry[0]), reverse=True)

    def unmount(self, prefix: str) -> None:
        before = len(self.mounts)
        self.mounts = [(p, fs) for p, fs in self.mounts if p != prefix]
        if len(self.mounts) == before:
            raise FsError(f"{prefix!r} is not mounted")

    def _resolve(self, path: str):
        """Generator: (filesystem client, path below the mount point)."""
        normalized = "/" + "/".join(p for p in path.split("/") if p)
        match = self._match(normalized)
        if match is None and not any(p == "/" for p, _fs in self.mounts):
            # Default root: the m3fs service (connected lazily, only
            # when an unmatched path actually needs it).
            from repro.m3.lib.m3fs_client import M3fsClient

            client = yield from M3fsClient.connect(self.env)
            self.mount("/", client)
            match = self._match(normalized)
        if match is None:
            raise FsError(f"no filesystem mounted for {path!r}")
        return match

    def _match(self, normalized: str):
        for prefix, filesystem in self.mounts:
            if normalized == prefix or normalized.startswith(
                prefix.rstrip("/") + "/"
            ):
                below = normalized[len(prefix.rstrip("/")):] or "/"
                return filesystem, below
        return None

    # -- operations ----------------------------------------------------------

    def open(self, path: str, flags):
        """Generator: open a file (File or pipe channel, transparently)."""
        filesystem, below = yield from self._resolve(path)
        return (yield from filesystem.open(below, flags))

    def stat(self, path: str):
        """Generator: (kind, size, links, extent_count)."""
        filesystem, below = yield from self._resolve(path)
        return (yield from filesystem.stat(below))

    def mkdir(self, path: str):
        filesystem, below = yield from self._resolve(path)
        yield from filesystem.mkdir(below)

    def unlink(self, path: str):
        filesystem, below = yield from self._resolve(path)
        yield from filesystem.unlink(below)

    def link(self, existing: str, new_path: str):
        filesystem, below = yield from self._resolve(existing)
        other, new_below = yield from self._resolve(new_path)
        if filesystem is not other:
            raise FsError("cannot hard-link across filesystems")
        yield from filesystem.link(below, new_below)

    def rename(self, old_path: str, new_path: str):
        filesystem, below = yield from self._resolve(old_path)
        other, new_below = yield from self._resolve(new_path)
        if filesystem is not other:
            raise FsError("cannot rename across filesystems")
        yield from filesystem.rename(below, new_below)

    def readdir(self, path: str):
        """Generator: sorted entry names."""
        filesystem, below = yield from self._resolve(path)
        return (yield from filesystem.readdir(below))
