"""libm3: the application library.

"The library libm3 provides abstractions for communicating with the
kernel or OS services, accessing files, using the DTU etc."
(Section 4.5.2).  Due to the small SPMs, it provides lightweight
abstractions rather than a POSIX-compliant environment.
"""

from repro.m3.lib.marshalling import wire_size, Istream, Ostream
from repro.m3.lib.env import Env
from repro.m3.lib.gate import Gate, MemGate, RecvGate, SendGate
from repro.m3.lib.vpe import VPE
from repro.m3.lib.file import File, OpenFlags
from repro.m3.lib.vfs import VFS
from repro.m3.lib.pipe import Pipe, PipeReader, PipeWriter

__all__ = [
    "Env",
    "File",
    "Gate",
    "Istream",
    "MemGate",
    "OpenFlags",
    "Ostream",
    "Pipe",
    "PipeReader",
    "PipeWriter",
    "RecvGate",
    "SendGate",
    "VFS",
    "VPE",
    "wire_size",
]
