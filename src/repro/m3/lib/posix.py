"""The POSIX emulation layer (Section 7).

"we plan to support POSIX-compliant applications. ... we will add a
POSIX emulation layer, similar to the already existing emulation layer
for the filesystem API, that was used to replay system call traces."

:class:`Posix` maps the classic int-fd API onto libm3: files through
the VFS, pipes through the DRAM-ringbuffer pipes, process control
through VPEs.  Everything stays a generator (simulated time), but the
*shape* of the code matches POSIX so traced applications port 1:1.
"""

from __future__ import annotations

import typing

from repro.m3.lib.file import OpenFlags
from repro.m3.lib.pipe import Pipe
from repro.m3.lib.vpe import VPE
from repro.m3.services.m3fs.fs import FsError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env

#: the classic flag names, numerically equal to OpenFlags.
O_RDONLY = int(OpenFlags.R)
O_WRONLY = int(OpenFlags.W)
O_RDWR = int(OpenFlags.RW)
O_CREAT = int(OpenFlags.CREATE)
O_TRUNC = int(OpenFlags.TRUNC)

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class StatResult(typing.NamedTuple):
    """A stat(2)-shaped record."""

    st_kind: str  # "file" | "dir" | "pipe"
    st_size: int
    st_nlink: int


class Posix:
    """Per-VPE POSIX personality: an fd table over libm3 objects."""

    def __init__(self, env: "Env"):
        self.env = env
        self._fds: dict[int, object] = {}
        self._next_fd = 3  # 0..2 reserved for the std streams

    # -- fd plumbing ---------------------------------------------------------

    def _install(self, channel: object) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = channel
        return fd

    def _get(self, fd: int):
        try:
            return self._fds[fd]
        except KeyError:
            raise FsError(f"EBADF: {fd}") from None

    # -- files ------------------------------------------------------------------

    def open(self, path: str, flags: int):
        """Generator: open(2); returns an int fd."""
        channel = yield from self.env.vfs.open(path, OpenFlags(flags))
        return self._install(channel)

    def read(self, fd: int, count: int):
        """Generator: read(2)."""
        return (yield from self._get(fd).read(count))

    def write(self, fd: int, data: bytes):
        """Generator: write(2)."""
        return (yield from self._get(fd).write(data))

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET):
        """Generator: lseek(2) (pipes raise, as in POSIX)."""
        return (yield from self._get(fd).seek(offset, whence))

    def close(self, fd: int):
        """Generator: close(2)."""
        channel = self._get(fd)
        del self._fds[fd]
        yield from channel.close()

    def dup(self, fd: int) -> int:
        """dup(2): a second fd for the same open object."""
        return self._install(self._get(fd))

    def stat(self, path: str):
        """Generator: stat(2)."""
        kind, size, links, _extents = yield from self.env.vfs.stat(path)
        return StatResult(kind, size, links)

    def mkdir(self, path: str):
        yield from self.env.vfs.mkdir(path)

    def unlink(self, path: str):
        yield from self.env.vfs.unlink(path)

    def link(self, existing: str, new_path: str):
        yield from self.env.vfs.link(existing, new_path)

    def listdir(self, path: str):
        """Generator: readdir(3)."""
        return (yield from self.env.vfs.readdir(path))

    # -- pipes -----------------------------------------------------------------------

    def pipe(self):
        """Generator: pipe(2); returns (read_fd, write_fd).

        Both ends start in this VPE; hand the write end to a child with
        :meth:`spawn`'s ``pass_fds``.
        """
        pipe_obj = yield from Pipe.create(self.env)
        reader = yield from pipe_obj.reader().open()
        read_fd = self._install(_PipeEnd(reader, writable=False))
        write_fd = self._install(_PipeEnd(pipe_obj.writer(), writable=True,
                                          pipe=pipe_obj))
        return read_fd, write_fd

    # -- processes -------------------------------------------------------------------

    def spawn(self, path: str, *args, pass_fds: tuple = ()):
        """Generator: posix_spawn(3)-ish — run the executable at
        ``path`` on a new VPE.

        ``pass_fds`` names *pipe write ends* whose capabilities are
        delegated to the child; the child receives
        ``(mem_sel, sgate_sel, ring, slots)`` tuples appended to its
        argument list (the libm3 idiom for inheriting a pipe).
        """
        vpe = yield from VPE.create(self.env, path.rsplit("/", 1)[-1])
        extra = []
        for fd in pass_fds:
            end = self._get(fd)
            if not isinstance(end, _PipeEnd) or not end.writable:
                raise FsError("only pipe write ends can be passed")
            handoff = yield from end.pipe.delegate_writer(vpe)
            end.delegated = True
            extra.append(tuple(handoff))
        yield from vpe.exec(path, *args, *extra)
        return vpe

    def waitpid(self, vpe: VPE):
        """Generator: waitpid(2)."""
        return (yield from vpe.wait())


class _PipeEnd:
    """File-shaped wrapper for one pipe end in the fd table."""

    def __init__(self, endpoint, writable: bool, pipe: Pipe | None = None):
        self.writable = writable
        self.pipe = pipe
        self._endpoint = endpoint
        self.delegated = False
        self._opened = endpoint is not None and not writable

    def _writer(self):
        if self._opened:
            return
        self._endpoint = yield from self._endpoint.open()
        self._opened = True

    def read(self, count: int):
        if self.writable:
            raise FsError("EBADF: write end")
        return (yield from self._endpoint.read(count))

    def write(self, data: bytes):
        if not self.writable:
            raise FsError("EBADF: read end")
        if self.delegated:
            raise FsError("EBADF: write end was passed to a child")
        yield from self._writer()
        return (yield from self._endpoint.write(data))

    def seek(self, offset: int, whence: int = 0):
        raise FsError("ESPIPE")
        yield  # pragma: no cover

    def close(self):
        if self.writable and not self.delegated:
            yield from self._writer()
            # no draining: with pipe(2) both ends may live in one VPE
            yield from self._endpoint.close(drain=False)
        return None
        yield  # pragma: no cover
