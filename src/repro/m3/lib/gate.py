"""Gates: libm3's communication and memory-access abstraction.

"M3 provides three different kinds of gates: receive gates to receive
messages, send gates to send messages to receive gates and memory
gates to access remote memory" (Section 4.5.4).  A gate holds a
capability selector; before use, libm3 binds it to a DTU endpoint
through the endpoint multiplexer (an ``activate`` syscall when the
binding is missing).
"""

from __future__ import annotations

import typing

from repro.m3.lib.marshalling import wire_size

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env


class Gate:
    """Base: a capability selector plus (maybe) a bound endpoint."""

    pinned = False

    def __init__(self, env: "Env", selector: int):
        self.env = env
        self.selector = selector
        self.ep: int | None = None

    def activate(self):
        """Generator: ensure an endpoint is configured for this gate."""
        return (yield from self.env.epmux.acquire(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = f"ep={self.ep}" if self.ep is not None else "unbound"
        return f"<{type(self).__name__} sel={self.selector} {bound}>"


class SendGate(Gate):
    """Permission to send messages to one receive gate."""

    def send(self, payload: object, length: int | None = None,
             reply_gate: "RecvGate | None" = None, reply_label: int = 0):
        """Generator: transmit ``payload``; returns once injected."""
        ep = yield from self.activate()
        reply_ep = None
        if reply_gate is not None:
            reply_ep = yield from reply_gate.activate()
        size = length if length is not None else wire_size(payload)
        return self.env.dtu.send(
            ep, payload, size, reply_ep=reply_ep, reply_label=reply_label
        )

    def call(self, payload: object, reply_gate: "RecvGate",
             length: int | None = None):
        """Generator: send and wait for the reply (the common RPC shape —
        "most abstractions of libm3 combine the send operation with
        waiting for the reply", Section 4.5.6)."""
        yield from self.send(payload, length, reply_gate=reply_gate)
        slot, message = yield from reply_gate.receive()
        reply_gate.ack(slot)
        return message


class RecvGate(Gate):
    """A message reception point bound to a receive endpoint.

    Receive gates are pinned to their endpoint: "they are more
    difficult to move" (Section 4.5.4 footnote), so the multiplexer
    never evicts them.
    """

    pinned = True

    def __init__(self, env: "Env", selector: int, slot_size: int,
                 slot_count: int):
        super().__init__(env, selector)
        self.slot_size = slot_size
        self.slot_count = slot_count

    @classmethod
    def create(cls, env: "Env", slot_size: int = 256, slot_count: int = 8):
        """Generator: create + activate a fresh receive gate."""
        from repro.m3.kernel import syscalls

        selector = yield from env.syscall(
            syscalls.CREATE_RGATE, slot_size, slot_count
        )
        gate = cls(env, selector, slot_size, slot_count)
        yield from gate.activate()
        return gate

    def receive(self):
        """Generator: block until a message arrives; returns (slot, msg)."""
        if self.ep is None:
            yield from self.activate()
        return (yield from self.env.dtu.wait_message(self.ep))

    def fetch(self):
        """Non-blocking poll; (slot, message) or None."""
        if self.ep is None:
            return None
        return self.env.dtu.fetch_message(self.ep)

    def reply(self, slot: int, payload: object, length: int | None = None):
        """Generator: reply to the message in ``slot`` (frees the slot)."""
        size = length if length is not None else wire_size(payload)
        yield self.env.dtu.reply(self.ep, slot, payload, size)

    def ack(self, slot: int) -> None:
        """Free a slot without replying."""
        self.env.dtu.ack_message(self.ep, slot)


class BoundRecvGate(RecvGate):
    """Wraps an endpoint the kernel configured directly (e.g. the
    standard reply endpoint every VPE gets at creation)."""

    def __init__(self, env: "Env", ep_index: int):
        registers = env.pe.dtu.ep(ep_index)
        super().__init__(env, selector=-1, slot_size=registers.slot_size,
                         slot_count=registers.slot_count)
        self.ep = ep_index

    def activate(self):
        return self.ep
        yield  # pragma: no cover - makes this a generator


class MemGate(Gate):
    """Access to a region of remote memory via a memory endpoint."""

    def __init__(self, env: "Env", selector: int, size: int | None = None):
        super().__init__(env, selector)
        #: region size, when known client-side (bounds are enforced by
        #: the DTU regardless).
        self.size = size

    @classmethod
    def create(cls, env: "Env", size: int, perm_value: int):
        """Generator: allocate a DRAM region and wrap its capability."""
        selector = yield from env.request_mem(size, perm_value)
        return cls(env, selector, size)

    def derive(self, offset: int, size: int, perm_value: int):
        """Generator: a sub-region gate (derive_mem syscall)."""
        from repro.m3.kernel import syscalls

        selector = yield from self.env.syscall(
            syscalls.DERIVE_MEM, self.selector, offset, size, perm_value
        )
        return MemGate(self.env, selector, size)

    def read(self, offset: int, length: int, into_addr: int | None = None):
        """Generator: RDMA-read bytes from the region.

        When the environment runs in ``spin_io`` mode (the Figure 6
        methodology: "we replaced the reading/writing from/to the DRAM
        with a spinning loop of the same time"), the transfer is
        replaced by an equal-duration spin and zero bytes are returned.
        """
        if getattr(self.env, "spin_io", False):
            yield self.env.sim.delay(_spin_cycles(length), tag="xfer")
            return bytes(length)
        ep = yield from self.activate()
        return (
            yield from self.env.dtu.read_memory(ep, offset, length, into_addr)
        )

    def write(self, offset: int, data: bytes, from_addr: int | None = None):
        """Generator: RDMA-write bytes into the region (see :meth:`read`
        for ``spin_io`` mode)."""
        if getattr(self.env, "spin_io", False):
            yield self.env.sim.delay(_spin_cycles(len(data)), tag="xfer")
            return len(data)
        ep = yield from self.activate()
        return (
            yield from self.env.dtu.write_memory(ep, offset, data, from_addr)
        )


def _spin_cycles(nbytes: int) -> int:
    """Duration a DRAM transfer of ``nbytes`` would have taken (used by
    the scalability experiment's spin substitution)."""
    from repro import params

    wire = max(1, nbytes) / params.DTU_BYTES_PER_CYCLE
    overhead = (
        2 * params.DTU_INJECT_CYCLES
        + 4 * params.NOC_HOP_CYCLES
        + params.DRAM_ACCESS_CYCLES
    )
    return int(wire + overhead)
