"""The VPE API: creating and controlling other virtual PEs.

Mirrors the paper's Section 4.5.5: a VPE is created via a system call
(optionally requesting a PE type, e.g. an accelerator), loaded either
by *cloning* the caller (``run``, like fork) or by loading an
executable from the filesystem (``exec``), and awaited with ``wait``.
"""

from __future__ import annotations

import typing

from repro import params
from repro.m3.kernel import syscalls
from repro.m3.lib.gate import MemGate
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env

#: Modelled size of "the code, static data, the used portion of the
#: heap and the stack" transferred by a clone (Section 4.5.5).  Half of
#: each 64 KiB SPM bank in use is a representative prototype image.
CLONE_IMAGE_BYTES = 32 * 1024


class VPE:
    """A handle on another VPE, owned by the creating application."""

    def __init__(self, env: "Env", selector: int, spm_gate: MemGate,
                 vpe_id: int, name: str):
        self.env = env
        self.selector = selector
        self.spm_gate = spm_gate
        self.vpe_id = vpe_id
        self.name = name

    @classmethod
    def create(cls, env: "Env", name: str, pe_type: str | None = None):
        """Generator: the create_vpe syscall.

        "the kernel creates a VPE kernel object and a VPE capability for
        the VPE that requested it.  Furthermore, the requesting VPE
        receives a memory gate for the memory that the VPE can access."
        """
        vpe_sel, spm_sel, vpe_id = yield from env.syscall(
            syscalls.CREATE_VPE, name, pe_type
        )
        spm_gate = MemGate(env, spm_sel, size=env.pe.spm_data.size)
        return cls(env, vpe_sel, spm_gate, vpe_id, name)

    # -- capability exchange -----------------------------------------------

    def delegate(self, selector: int):
        """Generator: grant one of the caller's capabilities to this VPE;
        returns the selector it gets in the target's table."""
        return (
            yield from self.env.syscall(syscalls.DELEGATE, self.selector, selector)
        )

    def delegate_gate(self, gate):
        """Generator: delegate the capability behind a gate object."""
        return (yield from self.delegate(gate.selector))

    # -- loading -----------------------------------------------------------------

    def run(self, entry, *args):
        """Generator: clone the caller onto this VPE and run ``entry``.

        "libm3 transfers the code, static data, the used portion of the
        heap and the stack to the corresponding locations of the memory
        denoted by the memory gate" — no virtual memory needed because
        the regions land at the same addresses (Section 4.5.5).
        ``entry`` is the Python stand-in for the lambda/function that
        starts executing on the target PE.
        """
        yield self.env.sim.delay(params.M3_VPE_RUN_SW_CYCLES, tag=Tag.OS)
        image = bytes(CLONE_IMAGE_BYTES)
        yield from self.spm_gate.write(0, image)
        yield from self.env.syscall(
            syscalls.VPE_START, self.selector, entry, args
        )

    def exec(self, path: str, *args):
        """Generator: load an executable from the filesystem onto this
        VPE and run it (Section 4.5.5's second loading operation).

        The file's *content bytes* are read through the normal file API
        (and therefore cost real transfer time); its basename selects
        the registered program to execute.
        """
        from repro.m3.lib.file import OpenFlags

        file = yield from self.env.vfs.open(path, OpenFlags.R)
        image = bytearray()
        while True:
            chunk = yield from file.read(4096)
            if not chunk:
                break
            image.extend(chunk)
        yield from file.close()
        yield from self.spm_gate.write(0, bytes(image))
        program = path.rsplit("/", 1)[-1]
        yield from self.env.syscall(
            syscalls.VPE_START, self.selector, ("program", program), args
        )

    # -- lifecycle ------------------------------------------------------------------

    def wait(self):
        """Generator: block until the VPE exits; returns its exit code."""
        return (yield from self.env.syscall(syscalls.VPE_WAIT, self.selector))

    def migrate(self, domain: int | None = None):
        """Generator: live-migrate this (running) VPE to a free PE.
        The target keeps executing across the move — its SPM image,
        endpoint registers, and unread messages travel with it.

        With ``domain=None`` the VPE moves within the kernel's own
        domain and the syscall returns the node it runs on afterwards.
        Naming a peer kernel ``domain`` migrates it across the domain
        boundary (the checkpoint rides the inter-kernel RPC) and the
        syscall returns ``(remote_id, node)``; the caller's capability
        then holds the VPE through a remote proxy."""
        if domain is None:
            return (
                yield from self.env.syscall(
                    syscalls.MIGRATE_VPE, self.selector
                )
            )
        return (
            yield from self.env.syscall(
                syscalls.MIGRATE_VPE, self.selector, domain
            )
        )

    def wait_yield(self):
        """Generator: like :meth:`wait`, but tells the kernel the wait
        may be long so the caller's PE can be context-switched to a
        queued VPE in the meantime (Section 3.3)."""
        return (
            yield from self.env.syscall(syscalls.VPE_WAIT_YIELD, self.selector)
        )

    def revoke(self):
        """Generator: revoke the VPE capability — the kernel resets the
        PE, making it available again (Section 4.5.5)."""
        yield from self.env.syscall(syscalls.REVOKE, self.selector)
