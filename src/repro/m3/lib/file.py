"""POSIX-like buffered files over m3fs memory capabilities.

"libm3 offers POSIX-like abstractions (open, read, write, seek, close)
to the application.  That is, the application uses a local buffer for
reading and writing, and libm3 will translate that into memory reads
or writes at the appropriate location and will, if necessary, request
further memory capabilities" (Section 4.5.8).
"""

from __future__ import annotations

import enum
import typing

from repro import params
from repro.m3.lib.gate import MemGate
from repro.m3.services.m3fs.fs import FsError
from repro.m3.services.m3fs.server import LOCS_PER_REPLY
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env
    from repro.m3.lib.m3fs_client import M3fsClient


class OpenFlags(enum.IntFlag):
    """File open modes."""

    R = 1
    W = 2
    CREATE = 4
    TRUNC = 8

    #: conventional combinations
    RW = R | W


class _CachedExtent(typing.NamedTuple):
    gate: MemGate
    start: int  # file offset where this extent begins
    length: int  # capacity in bytes


class File:
    """An open file: position, size, and the extent-capability cache."""

    def __init__(self, env: "Env", client: "M3fsClient", fd: int, size: int,
                 flags: int, path: str):
        self.env = env
        self.client = client
        self.fd = fd
        self.size = size
        self.flags = flags
        self.path = path
        self.position = 0
        self._extents: list[_CachedExtent] = []
        self._capacity = 0  # bytes covered by cached extents
        self._next_extent_index = 0
        #: False once the server reported no further extents; appends
        #: re-extend the cache directly, keeping indexes aligned.
        self._maybe_more = True
        self._closed = False
        self._dirty = False

    # -- extent management ------------------------------------------------------

    def _fetch_locations(self):
        """Generator: pull the next batch of extent capabilities.

        Returns True if new extents arrived.  "The application needs to
        ask m3fs for the locations of the file fragments that it wants
        to access first" (Section 4.5.8).
        """
        entries, more = yield from self.client.request(
            "get_locs", self.fd, self._next_extent_index, LOCS_PER_REPLY
        )
        for selector, length in entries:
            self._install_extent(selector, length)
        self._maybe_more = bool(more)
        return bool(entries)

    def _install_extent(self, selector: int, length: int) -> None:
        gate = MemGate(self.env, selector, size=length)
        self._extents.append(_CachedExtent(gate, self._capacity, length))
        self._capacity += length
        self._next_extent_index += 1

    def _append_extent(self, want_blocks=None):
        """Generator: grow the file's allocation by one extent."""
        selector, length = yield from self.client.request(
            "append", self.fd, want_blocks
        )
        self._install_extent(selector, length)

    def _extent_at(self, offset: int) -> _CachedExtent | None:
        """The cached extent containing file offset ``offset``."""
        for extent in reversed(self._extents):
            if extent.start <= offset < extent.start + extent.length:
                return extent
        return None

    def _ensure(self, offset: int, for_write: bool):
        """Generator: make sure ``offset`` is covered by a cached extent."""
        while offset >= self._capacity:
            got_new = False
            if self._maybe_more:
                got_new = yield from self._fetch_locations()
            if not got_new:
                if not for_write:
                    return None
                yield from self._append_extent()
        return self._extent_at(offset)

    # -- read / write ----------------------------------------------------------------

    def read(self, count: int):
        """Generator: up to ``count`` bytes from the current position
        (empty bytes at EOF)."""
        self._check_open()
        if not (self.flags & OpenFlags.R):
            raise FsError(f"{self.path!r} not open for reading")
        yield self.env.sim.delay(params.M3_FILE_DISPATCH_CYCLES, tag=Tag.OS)
        remaining = min(count, self.size - self.position)
        if remaining <= 0:
            return b""
        pieces = []
        while remaining > 0:
            extent = yield from self._ensure(self.position, for_write=False)
            if extent is None:
                break
            yield self.env.sim.delay(params.M3_FILE_LOCATE_CYCLES, tag=Tag.OS)
            offset_in_extent = self.position - extent.start
            chunk = min(remaining, extent.length - offset_in_extent)
            data = yield from extent.gate.read(offset_in_extent, chunk)
            pieces.append(data)
            self.position += chunk
            remaining -= chunk
        return b"".join(pieces)

    def write(self, data: bytes):
        """Generator: write ``data`` at the current position; returns the
        number of bytes written."""
        self._check_open()
        if not (self.flags & OpenFlags.W):
            raise FsError(f"{self.path!r} not open for writing")
        yield self.env.sim.delay(params.M3_FILE_DISPATCH_CYCLES, tag=Tag.OS)
        view = memoryview(bytes(data))
        written = 0
        while written < len(view):
            extent = yield from self._ensure(self.position, for_write=True)
            yield self.env.sim.delay(params.M3_FILE_LOCATE_CYCLES, tag=Tag.OS)
            offset_in_extent = self.position - extent.start
            chunk = min(len(view) - written,
                        extent.length - offset_in_extent)
            yield from extent.gate.write(
                offset_in_extent, bytes(view[written : written + chunk])
            )
            self.position += chunk
            written += chunk
            self.size = max(self.size, self.position)
        self._dirty = True
        return written

    def seek(self, offset: int, whence: int = 0):
        """Generator: move the file position (0=set, 1=cur, 2=end).

        "most seek operations can be done in libm3 by seeking within
        the already obtained memory capabilities" (Section 4.5.8);
        a seek beyond them only records the position — the capability
        request happens at the next access.
        """
        self._check_open()
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self.position + offset
        elif whence == 2:
            target = self.size + offset
        else:
            raise ValueError(f"bad whence: {whence}")
        if target < 0:
            raise FsError("seek before start of file")
        yield self.env.sim.delay(params.M3_SEEK_LOCAL_CYCLES, tag=Tag.OS)
        self.position = target
        return target

    def close(self):
        """Generator: commit the final size (truncating the
        over-allocated tail) and drop the descriptor."""
        if self._closed:
            return
        self._closed = True
        yield self.env.sim.delay(params.M3_FILE_DISPATCH_CYCLES, tag=Tag.OS)
        yield from self.client.request("close", self.fd, self.size)

    def _check_open(self) -> None:
        if self._closed:
            raise FsError(f"{self.path!r} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"pos={self.position}"
        return f"<File {self.path!r} size={self.size} {state}>"
