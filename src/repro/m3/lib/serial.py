"""Serial output: the paper's ``Serial::get() << "Sum: " << ...`` API.

Every VPE can stream characters to the platform's serial console; the
C++ shift-operator style is mirrored with ``<<``.  Output is collected
per system (with timestamps and the writing VPE), which the examples
and tests read back.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.lib.env import Env


class Serial:
    """A line-buffered serial stream for one VPE."""

    def __init__(self, env: "Env"):
        self.env = env
        self._line: list[str] = []

    def __lshift__(self, value: object) -> "Serial":
        """Append ``value``; a ``"\\n"`` (or trailing newline) flushes."""
        text = str(value)
        while "\n" in text:
            head, text = text.split("\n", 1)
            self._line.append(head)
            self._flush()
        if text:
            self._line.append(text)
        return self

    def _flush(self) -> None:
        line = "".join(self._line)
        self._line.clear()
        console = self.env.system.serial_log
        console.append((self.env.sim.now, self.env.vpe_id, line))

    def flush(self) -> None:
        """Force out a partial line."""
        if self._line:
            self._flush()


def get(env: "Env") -> Serial:
    """The VPE's serial stream (``Serial::get()``)."""
    if not hasattr(env, "_serial"):
        env._serial = Serial(env)
    return env._serial
