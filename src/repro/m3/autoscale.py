"""Autoscaler: closing the loop from load to placement.

The paper's elasticity claim (Section 1) is that a kernel which holds
*all* VPE state remotely — SPM image, DTU endpoint registers,
capabilities — can re-materialize compute anywhere.  PR 6 built the
mechanism (checkpoint/restore, live ``migrate_vpe``); cross-domain
migration extends it over the idempotent inter-kernel RPC.  This
module adds the *policy*: a kernel-side controller that watches the
session router's queue-depth telemetry each epoch and grows or shrinks
a replicated service tier.

Scale-up is **warm-booted**: the new replica is cloned from a
checkpoint of the busiest live replica (gem5-style snapshot boot — the
clone starts with the donor's store image instead of refilling from
cold), spawned next to the donor, then live **cross-domain migrated**
into the underloaded domain before it registers its service — so its
receive gate, session state, and capabilities are created under the
kernel it will actually live with.

Scale-down drains the newest replica: it is removed from every
kernel's route first (no new sessions arrive), the controller waits
for its in-flight work to finish, hands its store off to the
longest-lived survivor (a timed DTU transfer), and retires the VPE.

Everything runs in-sim and is deterministic: decisions depend only on
sampled simulator state, never on wall-clock or randomness.
"""

from __future__ import annotations

import typing

from repro import params
from repro.sim.events import first_of
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.services.kvserv import KvServ
    from repro.m3.system import M3System


class AutoScaler:
    """Epoch-driven controller for one routed service tier.

    ``servers`` are the initially-booted :class:`KvServ` replicas (in
    route order).  Every ``epoch`` cycles the controller samples each
    routed replica's queue depth (service inbox occupancy plus session
    negotiations in flight — the same signal the ``"depth"`` routing
    policy balances on) and acts:

    - **up**: any replica's depth at/above ``up_depth`` (and a domain
      without a replica has a free PE) → warm-boot a clone of the
      busiest replica into that domain.
    - **down**: the tier's *total* depth at/most ``down_total`` for
      ``calm_epochs`` consecutive epochs → drain and retire the newest
      replica, merging its store into the oldest survivor.

    ``min_replicas``/``max_replicas`` bound the tier;
    ``cooldown_epochs`` quiets the controller after each action so one
    burst cannot trigger a scale-up stampede.

    ``policy`` selects the scale-up trigger.  The default ``"depth"``
    keeps the original raw-queue-depth rule.  Opting into
    ``policy="slo"`` (with ``slo_monitor`` set to a
    :class:`~repro.obs.slo.SloMonitor`) scales up when the monitor
    fires a new page alert instead — the controller reacts to the
    *objective* burning, not to a probe; scale-down stays depth-based
    either way, so a quiet tier still shrinks.
    """

    def __init__(self, system: "M3System", servers, name: str = "kv",
                 epoch: int = params.AUTOSCALE_EPOCH_CYCLES,
                 up_depth: int = 8, down_total: int = 1,
                 calm_epochs: int = 3, cooldown_epochs: int = 2,
                 min_replicas: int | None = None,
                 max_replicas: int | None = None,
                 drain_patience: int = 6,
                 policy: str = "depth", slo_monitor=None):
        if policy not in ("depth", "slo"):
            raise ValueError(f"unknown autoscale policy {policy!r}")
        if policy == "slo" and slo_monitor is None:
            raise ValueError('policy="slo" needs an slo_monitor')
        self.policy = policy
        self.slo_monitor = slo_monitor
        self._alert_cursor = 0
        self.system = system
        self.sim = system.sim
        self.name = name
        #: live replicas by concrete service name.
        self.servers: dict[str, "KvServ"] = {
            server.service_name: server for server in servers
        }
        self.epoch = epoch
        self.up_depth = up_depth
        self.down_total = down_total
        self.calm_epochs = calm_epochs
        self.cooldown_epochs = cooldown_epochs
        self.min_replicas = (
            min_replicas if min_replicas is not None else len(servers)
        )
        self.max_replicas = (
            max_replicas if max_replicas is not None
            else len(system.kernels)
        )
        self.drain_patience = drain_patience
        #: next clone index; initial replicas are ``{name}0..{name}k``.
        self._next_index = len(servers)
        #: ``(cycle, action, replica, domain, detail)`` per action.
        self.events: list[tuple] = []
        #: retired replicas by name (their counters outlive the VPE).
        self.retired: dict[str, "KvServ"] = {}
        self.epochs = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self._calm = 0
        self._cooldown = 0
        self._stop_event = self.sim.event(f"autoscale.{name}.stop")
        self.process = None

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Start the epoch loop as a control-plane process."""
        if self.process is not None and self.process.alive:
            raise RuntimeError("autoscaler already running")
        self.process = self.sim.process(
            self._loop(), f"autoscale.{self.name}"
        )
        return self.process

    def stop(self) -> None:
        """Let the loop exit at its next wake-up, so a bare
        ``sim.run()`` can drain the event queue."""
        if not self._stop_event.triggered:
            self._stop_event.succeed(None)

    # -- telemetry -----------------------------------------------------

    def _route(self) -> tuple:
        """The current replica route ``((service_name, domain), ...)``."""
        return self.system.kernels[0].service_routes.get(self.name, ())

    def _depths(self) -> dict:
        """Queue depth per routed replica, sampled at the owning
        kernel (the authoritative copy of the gossiped telemetry)."""
        depths = {}
        for replica, owner in self._route():
            depths[replica] = self.system.kernels[owner]._local_depth(replica)
        return depths

    # -- the epoch loop ------------------------------------------------

    def _loop(self):
        while True:
            yield first_of(
                self.sim, self._stop_event, self.sim.delay(self.epoch)
            )
            if self._stop_event.triggered:
                return
            self.epochs += 1
            self.sim.ledger.charge(Tag.OS, params.AUTOSCALE_SAMPLE_CYCLES)
            depths = self._depths()
            if self._cooldown > 0:
                self._cooldown -= 1
                continue
            total = sum(depths.values())
            peak = max(depths.values(), default=0)
            if self.policy == "slo":
                self._alert_cursor, fires = self.slo_monitor.fired_since(
                    self._alert_cursor, severity="page"
                )
                grow = bool(fires)
                if grow:
                    self.events.append((
                        self.sim.now, "slo_page", self.slo_monitor.spec.name,
                        -1, f"burn {fires[-1][3]:.1f}/{fires[-1][4]:.1f}",
                    ))
            else:
                grow = peak >= self.up_depth
            if grow and len(depths) < self.max_replicas:
                grown = yield from self._scale_up(depths)
                if grown:
                    self._calm = 0
                    self._cooldown = self.cooldown_epochs
                continue
            if total <= self.down_total and len(depths) > self.min_replicas:
                self._calm += 1
                if self._calm >= self.calm_epochs:
                    yield from self._scale_down()
                    self._calm = 0
                    self._cooldown = self.cooldown_epochs
            else:
                self._calm = 0

    # -- scale up ------------------------------------------------------

    def _pick_target_domain(self) -> int | None:
        """The lowest-id kernel domain without a replica that has a
        free application PE."""
        occupied = {owner for _replica, owner in self._route()}
        for domain, kernel in enumerate(self.system.kernels):
            if domain in occupied:
                continue
            pe = kernel.platform.find_free_pe(nodes=kernel.domain)
            if pe is not None and pe.node != kernel.node:
                return domain
        return None

    def _scale_up(self, depths: dict):
        """Generator: warm-boot a clone of the busiest replica into an
        underloaded domain.  Returns whether the tier grew."""
        from repro.m3.kernel.kernel import SyscallError
        from repro.m3.services.kvserv import KvServ

        target_domain = self._pick_target_domain()
        if target_domain is None:
            return False
        route = self._route()
        # Busiest replica donates its state (deterministic tiebreak on
        # the name so equal depths cannot depend on dict order).
        source_name = max(sorted(depths), key=lambda r: depths[r])
        source = self.servers[source_name]
        source_domain = dict(route)[source_name]
        source_kernel = self.system.kernels[source_domain]
        # Warm boot (gem5-style): snapshot the donor — the timed
        # checkpoint transfer *is* the snapshot cost — and seed the
        # clone from its image instead of starting cold.
        yield from source_kernel.checkpoint_vpe(source.vpe)
        clone = KvServ(service_name=f"{self.name}{self._next_index}",
                       op_cycles=source.op_cycles)
        self._next_index += 1
        clone.store = dict(source.store)
        clone.bytes_stored = source.bytes_stored
        clone.ready = self.sim.event(f"{clone.service_name}.ready")
        clone.staged = self.sim.event(f"{clone.service_name}.staged")
        clone.hold = self.sim.event(f"{clone.service_name}.hold")
        detail = f"warm from {source_name}"
        try:
            # Spawn next to the donor, park it staged, then live
            # cross-domain migrate it — its service registration then
            # happens under the target kernel.
            vpe = yield from source_kernel.create_vpe(clone.service_name)
        except SyscallError:
            vpe = None
        target_kernel = self.system.kernels[target_domain]
        if vpe is not None:
            source_kernel.start_vpe(vpe, clone.main, ())
            yield clone.staged
            try:
                new_id, _node = yield from source_kernel.migrate_vpe_cross(
                    vpe, target_domain
                )
            except SyscallError:
                # No room after all (lost a race for the target PE):
                # release the staged clone and give up this epoch.
                occupant = vpe.pe.occupant
                if occupant is not None and occupant.alive:
                    occupant.interrupt("scale-up-aborted")
                source_kernel.vpe_exited(vpe, None)
                return False
            vpe = target_kernel.vpes[new_id]
        else:
            # The donor's domain is full: boot the clone directly in
            # the target domain (still warm — it keeps the seeded
            # store image).
            detail = f"warm from {source_name} (direct)"
            try:
                vpe = yield from target_kernel.create_vpe(clone.service_name)
            except SyscallError:
                return False
            target_kernel.start_vpe(vpe, clone.main, ())
            yield clone.staged
        clone.vpe = vpe
        clone.hold.succeed(None)
        yield clone.ready
        self.servers[clone.service_name] = clone
        self.system.register_service_route(
            self.name,
            route + ((clone.service_name, target_domain),),
            policy="depth",
        )
        self.scale_ups += 1
        self.events.append((
            self.sim.now, "scale_up", clone.service_name, target_domain,
            detail,
        ))
        if self.sim.obs is not None:
            self.sim.obs.count("autoscale.scale_ups")
            self.sim.obs.instant("scale_up", "autoscale", vpe.node,
                                 replica=clone.service_name,
                                 domain=target_domain)
        self.sim.ledger.mark(
            self.sim.now, Tag.OS,
            f"autoscale grows {self.name!r}: {clone.service_name} into "
            f"domain {target_domain} ({detail})",
        )
        return True

    # -- scale down ----------------------------------------------------

    def _scale_down(self):
        """Generator: drain and retire the newest replica, merging its
        store into the oldest survivor."""
        route = self._route()
        victim_name, victim_domain = route[-1]
        survivors = tuple(
            entry for entry in route if entry[0] != victim_name
        )
        victim = self.servers[victim_name]
        kernel = self.system.kernels[victim_domain]
        # Out of the route first: no kernel dispatches new sessions to
        # the victim while it drains.
        self.system.register_service_route(
            self.name, survivors, policy="depth"
        )
        drained = False
        for _ in range(self.drain_patience):
            if not victim.sessions and kernel._local_depth(victim_name) == 0:
                drained = True
                break
            yield self.sim.delay(self.epoch)
        if not drained:
            # Clients still hold sessions after the patience window:
            # retiring now would strand them.  Put the replica back and
            # let a later calm stretch retry the drain.
            self.system.register_service_route(
                self.name, route, policy="depth"
            )
            self.events.append((
                self.sim.now, "scale_down_aborted", victim_name,
                victim_domain, f"{len(victim.sessions)} sessions undrained",
            ))
            return
        # Hand the store off to the oldest survivor — the sessions'
        # state cross-domain-migrates even though the VPE retires (a
        # timed DTU transfer, like the checkpoint image).
        survivor = self.servers[survivors[0][0]]
        moved = 0
        for key, value in victim.store.items():
            if key not in survivor.store:
                survivor.store[key] = value
                survivor.bytes_stored += len(value)
                moved += len(value)
        yield self.sim.delay(
            max(1, victim.bytes_stored // params.DTU_BYTES_PER_CYCLE)
            + params.DRAM_ACCESS_CYCLES,
            tag=Tag.XFER,
        )
        vpe = victim.vpe
        occupant = vpe.pe.occupant
        if occupant is not None and occupant.alive:
            occupant.interrupt("scaled-down")
        kernel.vpe_exited(vpe, 0)
        kernel.services.pop(victim_name, None)
        del self.servers[victim_name]
        self.retired[victim_name] = victim
        self.scale_downs += 1
        self.events.append((
            self.sim.now, "scale_down", victim_name, victim_domain,
            f"{moved}B merged into {survivor.service_name}",
        ))
        if self.sim.obs is not None:
            self.sim.obs.count("autoscale.scale_downs")
            self.sim.obs.instant("scale_down", "autoscale", vpe.node,
                                 replica=victim_name, domain=victim_domain)
        self.sim.ledger.mark(
            self.sim.now, Tag.OS,
            f"autoscale shrinks {self.name!r}: retired {victim_name} "
            f"from domain {victim_domain}",
        )
