"""M3: the microkernel-based OS for heterogeneous manycores.

The OS consists of a kernel running on a dedicated PE
(:mod:`repro.m3.kernel`), OS services implemented as applications
(:mod:`repro.m3.services`), and the application library libm3
(:mod:`repro.m3.lib`) — mirroring the paper's Section 4.5.

:class:`repro.m3.system.M3System` boots the whole stack on a
:class:`~repro.hw.platform.Platform`.
"""

from repro.m3.system import M3System

__all__ = ["M3System"]
