"""M3System: boots the OS on a platform and hosts test/benchmark runs.

Responsibilities:

- construct the kernel on its dedicated PE and run its boot sequence
  (endpoint setup + downgrading all application DTUs),
- provide the kernel's software loader hook (the simulation stand-in
  for "the kernel writes the PE's boot registers via the DTU"),
- start OS services (m3fs) and initial applications,
- map program names to entry functions for ``exec``.
"""

from __future__ import annotations

import typing

from repro.hw.platform import Platform
from repro.m3.kernel.kernel import Kernel
from repro.m3.kernel.vpe import VpeObject
from repro.m3.lib.env import Env

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.services.m3fs.server import M3fsServer


class M3System:
    """The booted OS: kernel + services on a :class:`Platform`."""

    def __init__(self, platform: Platform | None = None, pe_count: int = 8,
                 kernel_node: int = 0, kernel_count: int = 1,
                 multiplexing: bool = False,
                 auto_rebalance: bool = False, reliable: bool = False,
                 observe: bool = False, shards: int = 1, **platform_kwargs):
        #: shard count of the sharded engine (1 = the classic single
        #: event queue).  Shards follow the kernel-domain boundaries, so
        #: ``shards`` may not exceed ``kernel_count``; results are
        #: byte-identical at every shard count (see docs/performance.md,
        #: "Parallel simulation").
        self.shards = shards
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if shards > 1:
            if platform is not None:
                raise ValueError(
                    "shards>1 requires M3System to build the platform "
                    "(pass pe_count/platform kwargs instead of a Platform)"
                )
            platform = Platform.build(
                pe_count,
                shard_plan=self._plan_shards(shards, pe_count, kernel_count,
                                             platform_kwargs),
                **platform_kwargs,
            )
        self.platform = platform or Platform.build(pe_count, **platform_kwargs)
        #: whether DTUs run with reliable delivery; device DTUs created
        #: after boot (e.g. NICs) consult this to match the chip.
        self.reliable = reliable
        if reliable:
            # Reliable (acked/retransmitted) DTU messaging — required
            # under an injected fault plan, cycle-identical paths when off.
            self.platform.enable_reliable_messaging()
        self.sim = self.platform.sim
        if observe:
            self.enable_observability()
        #: the booted kernels, one per domain.  ``kernel_count=1`` is the
        #: classic layout (one kernel owning the whole mesh) and stays
        #: cycle-identical to it; ``kernel_count>1`` partitions the PE
        #: mesh into contiguous domains, each with its own kernel, VPE
        #: table, service registry, and DRAM shard, cooperating over the
        #: inter-kernel protocol (see docs/protocols.md).
        self.kernels: list[Kernel] = []
        if kernel_count <= 1:
            self.kernel = Kernel(self.platform, node=kernel_node)
            self.kernels = [self.kernel]
        else:
            pe_nodes = [pe.node for pe in self.platform.pes]
            if len(pe_nodes) < 2 * kernel_count:
                raise ValueError(
                    f"{len(pe_nodes)} PEs cannot host {kernel_count} kernel "
                    "domains (each needs a kernel PE plus at least one "
                    "application PE)"
                )
            share, extra = divmod(len(pe_nodes), kernel_count)
            dram_share = self.platform.dram.memory.size // kernel_count
            start = 0
            for domain_id in range(kernel_count):
                size = share + (1 if domain_id < extra else 0)
                chunk = pe_nodes[start:start + size]
                start += size
                kernel = Kernel(
                    self.platform,
                    node=chunk[0],
                    kernel_id=domain_id,
                    domain=set(chunk),
                    dram_base=domain_id * dram_share,
                    dram_bytes=dram_share,
                )
                kernel.label = f"kernel{domain_id}"
                self.kernels.append(kernel)
            for kernel in self.kernels:
                kernel.set_peers(
                    {
                        other.kernel_id: other.node
                        for other in self.kernels if other is not kernel
                    },
                    peer_domains={
                        other.kernel_id: other.domain
                        for other in self.kernels if other is not kernel
                    },
                )
            self.kernel = self.kernels[0]
        for kernel in self.kernels:
            kernel.start_software = self._start_software
            kernel.multiplexing = multiplexing
            kernel.auto_rebalance = auto_rebalance
        #: program name -> entry generator function, for ``VPE.exec``.
        self.programs: dict[str, typing.Callable] = {}
        self.fs_server: "M3fsServer | None" = None
        #: all filesystem service instances by service name.
        self.fs_servers: dict[str, "M3fsServer"] = {}
        self._kernel_process = None
        self._kernel_processes: list = []
        #: (vpe, process) pairs for crash reporting.
        self._app_processes: list = []
        #: serial console: (cycle, vpe_id, line) records.
        self.serial_log: list = []

    @staticmethod
    def _plan_shards(shards: int, pe_count: int, kernel_count: int,
                     platform_kwargs: dict):
        """Derive the :class:`~repro.sim.shard.ShardPlan` for this layout.

        Mirrors the kernel partition below exactly — same PE node list,
        same contiguous divmod chunking — so shard boundaries coincide
        with kernel-domain boundaries and the only cross-shard NoC
        traffic is traffic that already crosses a domain (plus shared
        DRAM/device nodes, which the plan assigns to their nearest
        domain).
        """
        from repro import params
        from repro.noc.topology import MeshTopology
        from repro.sim.shard import ShardPlan

        total_pes = pe_count + sum(
            (platform_kwargs.get("accelerators") or {}).values()
        )
        pe_nodes = list(range(total_pes))
        if kernel_count <= 1:
            domains = [pe_nodes]
        else:
            share, extra = divmod(len(pe_nodes), kernel_count)
            domains, start = [], 0
            for domain_id in range(kernel_count):
                size = share + (1 if domain_id < extra else 0)
                domains.append(pe_nodes[start:start + size])
                start += size
        topology = MeshTopology(
            platform_kwargs.get("mesh_width", params.DEFAULT_MESH_WIDTH),
            platform_kwargs.get("mesh_height", params.DEFAULT_MESH_HEIGHT),
        )
        return ShardPlan.from_domains(
            domains, shards, topology,
            platform_kwargs.get("noc_hop_cycles", params.NOC_HOP_CYCLES),
        )

    def enable_observability(self, **kwargs):
        """Install a :class:`repro.obs.Observer` on the simulator.

        Until this is called the instrumented components pay a single
        branch per event and existing results stay bit-identical.
        Returns the observer (also available as ``self.sim.obs``).
        """
        from repro.obs import Observer

        return Observer.install(self.sim, **kwargs)

    @property
    def obs(self):
        """The installed observer, or None when observability is off."""
        return self.sim.obs

    def enable_telemetry(self, **kwargs):
        """Attach the streaming telemetry plane (requires an observer).

        Returns the :class:`repro.obs.Telemetry` hub; from here on the
        Observer's counters/gauges/histograms also fold into per-epoch
        series (see docs/observability.md, "Telemetry").
        """
        if self.sim.obs is None:
            raise RuntimeError(
                "enable observability before telemetry (observe=True "
                "or enable_observability())"
            )
        return self.sim.obs.enable_telemetry(**kwargs)

    def domain_map(self) -> dict[int, int]:
        """NoC node -> kernel-domain id, for failure attribution."""
        mapping: dict[int, int] = {}
        for kernel in self.kernels:
            if kernel.domain:
                for node in kernel.domain:
                    mapping[node] = kernel.kernel_id
            else:  # single-kernel layout: it owns the whole mesh
                for pe in self.platform.pes:
                    mapping[pe.node] = kernel.kernel_id
        return mapping

    def enable_flight_recorder(self, **kwargs):
        """Attach a flight recorder wired to this system's domain map
        (requires an observer).  Returns the recorder."""
        if self.sim.obs is None:
            raise RuntimeError(
                "enable observability before the flight recorder"
            )
        recorder = self.sim.obs.enable_flight_recorder(**kwargs)
        recorder.map_nodes(self.domain_map())
        return recorder

    # -- boot -----------------------------------------------------------------

    def boot(self, with_fs: bool = True, fs_kwargs: dict | None = None) -> "M3System":
        """Run the kernel boot sequence(s) and start services; returns self."""
        if self.sim.obs is not None:
            # Perfetto process labels: kernel domains and the DRAM node
            # (apps/services label their nodes as they start).
            for kernel in self.kernels:
                self.sim.obs.label_node(kernel.node, kernel.label)
            self.sim.obs.label_node(self.platform.dram_node, "DRAM")
        for kernel in self.kernels:
            self.sim.run_process(kernel.boot(), f"{kernel.label}.boot")
            self._kernel_processes.append(
                kernel.pe.run(self._run_kernel(kernel), kernel.label)
            )
        self._kernel_process = self._kernel_processes[0]
        if with_fs:
            self.start_m3fs(**(fs_kwargs or {}))
        return self

    def _run_kernel(self, kernel: Kernel):
        """Generator: the kernel main loop, tolerant of its own PE being
        killed by a fault plan — a murdered kernel stops quietly (its
        peers detect the death via heartbeats) instead of surfacing an
        Interrupt through :meth:`raise_crashes`."""
        from repro.sim.events import Interrupt

        try:
            yield from kernel.run()
        except Interrupt:
            return None

    def start_heartbeats(self, **kwargs) -> None:
        """Start the peer heartbeat ring on every kernel that has peers
        (no-op on single-kernel layouts).  Only meaningful when the
        system was built with ``reliable=True``; see
        docs/protocols.md, "Failure model & recovery"."""
        for kernel in self.kernels:
            if kernel.peers:
                kernel.start_heartbeat(**kwargs)

    def stop_heartbeats(self) -> None:
        for kernel in self.kernels:
            if kernel.peers:
                kernel.stop_heartbeat()

    def start_m3fs(self, name: str = "m3fs", domain: int | None = None,
                   **fs_kwargs) -> "M3fsServer":
        """Start an m3fs service instance and wait until it is registered.

        Multiple instances (the paper's Section 7 future work) are
        supported by giving each a distinct service name; clients pick
        theirs via ``M3fsClient.connect(env, service=name)``.  With a
        partitioned mesh, ``domain`` places the instance in a specific
        kernel domain.
        """
        from repro.m3.services.m3fs.server import M3fsServer

        server = M3fsServer(service_name=name, **fs_kwargs)
        server.ready = self.sim.event(f"{name}.ready")
        vpe = self.spawn(server.main, name=name, domain=domain)
        self.sim.run(until_event=server.ready)
        if not server.ready.triggered:
            raise RuntimeError(f"{name} failed to start")
        server.vpe = vpe
        self.fs_servers[name] = server
        if self.fs_server is None:
            self.fs_server = server
        if self.sim.obs is not None:
            self.sim.obs.label_node(vpe.node, f"service:{name}")
        return server

    def register_service_route(self, name: str, replicas,
                               policy: str = "rr") -> None:
        """Install a session route on every kernel domain.

        ``replicas`` is an ordered sequence of ``(service_name,
        domain_id)`` pairs.  Afterwards ``open_session(name)`` is
        load-balanced across the live replicas by each client's own
        kernel — round-robin by default, or least-loaded by queue
        depth with ``policy="depth"`` (fed by the depth piggyback on
        inter-kernel traffic).  Replicas in peer domains are reached
        over the inter-kernel ``srv_open`` path (whose owner cache is
        pre-seeded here, so the first remote open skips the probe
        walk).  Failover keeps routes correct automatically: dead
        domains are skipped and their cache entries purged.
        Re-registering an existing name replaces the replica set on
        every kernel — how the autoscaler grows and shrinks the tier.
        """
        replicas = tuple(replicas)
        for kernel in self.kernels:
            kernel.register_route(name, replicas, policy=policy)
            for replica, domain in replicas:
                if domain != kernel.kernel_id:
                    kernel._remote_services.setdefault(replica, domain)

    # -- software loading (the kernel's loader hook) -----------------------------

    def _start_software(self, vpe: VpeObject, entry, args: tuple) -> None:
        if isinstance(entry, tuple) and entry and entry[0] == "program":
            name = entry[1]
            try:
                entry = self.programs[name]
            except KeyError:
                raise RuntimeError(f"no program {name!r} registered") from None
        env = Env(self, vpe.id, vpe.pe)
        # Register the env with the *owning* kernel (spilled VPEs run in
        # a peer domain whose kernel drives their context switches).
        kernel = getattr(vpe, "kernel", None) or self.kernel
        kernel.envs[vpe.id] = env
        if self.sim.obs is not None:
            # Role label for exports; services refine it when they
            # finish registering (start_m3fs, start_network).
            self.sim.obs.label_node(vpe.pe.node, f"app:{vpe.name}")
        process = vpe.pe.run(self._wrap(env, entry, args), name=vpe.name)
        self._app_processes.append((vpe, process))

    def _wrap(self, env: Env, entry, args: tuple):
        from repro.sim.events import Interrupt

        def body():
            try:
                result = yield from entry(env, *args)
            except Interrupt:
                # The kernel reset this PE (VPE capability revoked) —
                # not a software crash.
                return None
            yield from env.exit(result)
            return result

        return body()

    def register_program(self, name: str, entry) -> None:
        """Make ``entry`` loadable via ``VPE.exec`` under ``name``."""
        self.programs[name] = entry

    # -- running applications ---------------------------------------------------------

    def spawn(self, entry, *args, name: str = "app",
              pe_type: str | None = None,
              domain: int | None = None) -> VpeObject:
        """Create a root VPE and start ``entry(env, *args)`` on it.

        Used for boot modules and benchmark top-level applications;
        applications themselves use :class:`repro.m3.lib.vpe.VPE`.
        With a partitioned mesh, ``domain`` selects which kernel domain
        hosts the VPE (default: the first).
        """
        kernel = self.kernel if domain is None else self.kernels[domain]

        def create():
            vpe = yield from kernel.create_vpe(name, pe_type)
            kernel.start_vpe(vpe, entry, args)
            return vpe

        return self.sim.run_process(create(), f"spawn.{name}")

    def wait(self, vpe: VpeObject):
        """Run the simulation until ``vpe`` exits; returns its exit code.

        Raises if the simulation goes idle without the VPE exiting
        (a deadlock in the simulated software).
        """
        from repro.m3.kernel.vpe import VpeState

        if vpe.state == VpeState.DEAD:
            # An already-dead VPE may have died *crashing*; surface that
            # instead of silently handing back a None exit code.
            self.raise_crashes()
            return vpe.exit_code
        exit_event = self.sim.event(f"{vpe.name}.exit")
        vpe.exit_events.append(exit_event)
        self.sim.run(until_event=exit_event)
        if vpe.state != VpeState.DEAD:
            self.raise_crashes()
            raise RuntimeError(
                f"simulation went idle but VPE {vpe.name!r} never exited "
                "(deadlock in simulated software)"
            )
        return vpe.exit_code

    def raise_crashes(self) -> None:
        """Re-raise the first uncaught exception of the kernel or any
        application VPE."""
        processes = [p for _v, p in self._app_processes]
        processes.extend(self._kernel_processes)
        for process in processes:
            done = process.done
            if done.triggered and not done.ok:
                raise done.value

    def run_app(self, entry, *args, name: str = "app",
                pe_type: str | None = None):
        """Spawn + wait in one call; returns the application's result."""
        return self.wait(self.spawn(entry, *args, name=name, pe_type=pe_type))

    # -- benchmark support ---------------------------------------------------

    def fs_preload(self, files: dict, extent_blocks: int | None = None,
                   server=None) -> None:
        """Populate an m3fs instance with ``files`` (path -> bytes)
        outside simulated time — the benchmarks run against an
        already-populated filesystem, exactly like the paper's setups.

        ``extent_blocks`` forces a specific extent granularity, which is
        how the Figure 4 fragmentation sweep controls blocks-per-extent.
        """
        server = server or self.fs_server
        if server is None:
            raise RuntimeError("m3fs is not running")
        fs = server.fs
        region_cap = server.vpe.captable.get(server.region.selector)
        base = region_cap.obj.address
        dram = self.platform.dram.memory
        for path, content in files.items():
            directory = ""
            for part in fs.split(path)[:-1]:
                directory = f"{directory}/{part}"
                if not fs.exists(directory):
                    fs.mkdir(directory)
            inode = fs.create(path)
            remaining = len(content)
            written = 0
            while remaining > 0:
                want = extent_blocks or fs.append_blocks
                extent = fs.append_extent(inode, want)
                offset, length = fs.extent_region(extent)
                chunk = content[written : written + length]
                dram.write(base + offset, chunk)
                written += len(chunk)
                remaining -= len(chunk)
            fs.truncate(inode, len(content))

    def fs_read_back(self, path: str, server=None) -> bytes:
        """Read a file's content directly out of the DRAM model (for
        verifying benchmark output without simulated cost)."""
        server = server or self.fs_server
        fs = server.fs
        region_cap = server.vpe.captable.get(server.region.selector)
        base = region_cap.obj.address
        dram = self.platform.dram.memory
        inode = fs.resolve(path)
        out = bytearray()
        remaining = inode.size
        for extent in inode.extents:
            offset, length = fs.extent_region(extent)
            take = min(length, remaining)
            out.extend(dram.read(base + offset, take))
            remaining -= take
        return bytes(out)
