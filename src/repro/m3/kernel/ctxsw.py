"""PE time-multiplexing: context switching VPEs on and off a PE.

The paper plans this as future work (Sections 3.3 and 7): "we plan to
support the multiplexing of a core among a group of threads ... not
context-switch periodically, but only if required.  ... For a
communication that involves longer wait times, we plan to inform the
kernel about a potentially reusable core, which can then perform a
context switch to another thread of execution ... the kernel needs to
switch back to the old thread before the interrupted communication can
be completed."

This module implements exactly that, voluntary-yield flavour:

- When :data:`Kernel.multiplexing` is on and ``create_vpe`` finds no
  free PE, the new VPE is *queued* on the least-loaded multiplexable PE
  and its loader memory capability points at a DRAM **staging area**
  instead of the SPM (the paper's own suggestion in Section 4.5.5).
- A resident VPE that expects a long wait performs the
  ``vpe_wait_yield`` syscall; the kernel parks the reply, saves the
  VPE's SPM to its staging area over the DTU (a real, timed transfer),
  invalidates its endpoints, and switches the next queued VPE in.
- When the awaited event occurs, the yielder is re-scheduled once its
  PE frees up: staging is copied back, the syscall channel endpoints
  are reconfigured, and only then does the parked reply arrive.

Timing: each direction moves the SPM image at DTU speed plus a fixed
kernel orchestration cost — the direct cost of a context switch that
dedicated-PE execution avoids (Section 3.4's trade-off, quantified by
``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import typing

from repro import params
from repro.dtu.registers import MemoryPerm
from repro.m3.kernel.objects import MemObject
from repro.m3.kernel.vpe import VpeObject, VpeState
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.kernel.kernel import Kernel

#: kernel software cost to orchestrate one switch direction.
SWITCH_KERNEL_CYCLES = 800


class ContextSwitcher:
    """Per-kernel state machine for PE multiplexing."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.sim = kernel.sim
        #: node -> VPEs queued to run there (not yet resident).
        self.queues: dict[int, list[VpeObject]] = {}
        #: node -> currently resident VPE (None while switching).
        self.resident: dict[int, VpeObject | None] = {}
        #: node -> a switch operation is in flight.
        self.switching: dict[int, bool] = {}
        #: node -> VPEs switched out (suspended) from that PE.
        self.suspended: dict[int, set] = {}
        self.switch_count = 0

    def _pe_has_pending_work(self, node: int) -> bool:
        return bool(
            self.queues.get(node)
            or self.suspended.get(node)
            or self.switching.get(node)
        )

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def place(self, name: str,
              preferred_node: int | None = None) -> VpeObject | None:
        """Queue a new VPE on a multiplexable PE.

        Only general-purpose cores can be multiplexed — "this will be
        restricted to the subset of the cores that support it, i.e.,
        some accelerators might be excluded" (Section 3.3).  PEs hosting
        registered services are excluded too (a service never yields),
        and the creator's own PE is preferred: parent and child
        typically alternate through wait_yield.
        """
        service_nodes = {
            service.owner.node for service in self.kernel.services.values()
        }
        candidates = [
            pe
            for pe in self.kernel.platform.pes
            if pe.node != self.kernel.node
            and pe.node not in service_nodes
            and pe.core.type.general_purpose
            and pe.node in self.resident
        ]
        if not candidates:
            return None
        preferred = [pe for pe in candidates if pe.node == preferred_node]
        if preferred:
            pe = preferred[0]
        else:
            pe = min(candidates, key=lambda p: len(self.queues[p.node]))
        vpe = VpeObject(name, pe, next(self.kernel._vpe_ids))
        vpe.resident = False
        self.kernel.vpes[vpe.id] = vpe
        self.queues[pe.node].append(vpe)
        # Loader capability: a DRAM staging area the size of the SPM
        # (Section 4.5.5: "If caches are available, it will be some
        # PE-external memory").
        vpe.staging_addr = self.kernel.memory.allocate(pe.spm_data.size)
        return vpe

    def adopt(self, vpe: VpeObject) -> None:
        """Register a normally-created (resident) VPE with the switcher."""
        if not vpe.pe.core.type.general_purpose:
            return
        self.resident[vpe.node] = vpe
        self.queues.setdefault(vpe.node, [])
        self.switching.setdefault(vpe.node, False)
        self.suspended.setdefault(vpe.node, set())

    def staging_object(self, vpe: VpeObject) -> MemObject:
        """The memory object behind a queued VPE's loader capability."""
        return MemObject(
            self.kernel.platform.dram_node,
            vpe.staging_addr,
            vpe.pe.spm_data.size,
            MemoryPerm.RW,
        )

    # ------------------------------------------------------------------
    # starting queued VPEs
    # ------------------------------------------------------------------

    def start_queued(self, vpe: VpeObject, entry, args: tuple) -> None:
        """Record the entry point; run it when the VPE gets the PE."""
        vpe.pending_entry = (entry, args)
        self._try_dispatch(vpe.node)

    def _try_dispatch(self, node: int) -> None:
        """If the PE is free, switch the next ready queued VPE in."""
        if self.switching.get(node) or self.resident.get(node) is not None:
            return
        queue = self.queues.get(node, [])
        for index, vpe in enumerate(queue):
            ready = vpe.pending_entry is not None or vpe.saved
            if ready:
                queue.pop(index)
                self.switching[node] = True
                self.sim.process(self._switch_in(vpe), f"ctxsw.in.{vpe.name}")
                return

    # ------------------------------------------------------------------
    # the switch operations (run as kernel background activities: the
    # DTUs move the data; the kernel only orchestrates)
    # ------------------------------------------------------------------

    def _transfer_cycles(self, vpe: VpeObject) -> int:
        image = vpe.pe.spm_data.size
        return image // params.DTU_BYTES_PER_CYCLE + params.DRAM_ACCESS_CYCLES

    def _switch_out(self, vpe: VpeObject):
        """Generator: save a yielded VPE's state and free its PE."""
        node = vpe.node
        self.switch_count += 1
        obs = self.sim.obs
        span = None
        if obs is not None:
            obs.count("kernel.ctx_switches")
            span = obs.begin("switch_out", "ctxsw", node, vpe=vpe.id)
        yield self.sim.delay(SWITCH_KERNEL_CYCLES, tag=Tag.OS)
        # Save the SPM image to the staging area (real bytes, real time).
        if vpe.staging_addr is None:
            vpe.staging_addr = self.kernel.memory.allocate(vpe.pe.spm_data.size)
        vpe.saved_alloc_mark = vpe.pe._alloc_next
        image = vpe.pe.spm_data.read(0, vpe.pe.spm_data.size)
        yield self.sim.delay(self._transfer_cycles(vpe), tag=Tag.XFER)
        self.kernel.platform.dram.memory.write(vpe.staging_addr, image)
        # Tear down the endpoints; messages in flight to this VPE drop,
        # exactly the hazard the paper's "switch back before the
        # interrupted communication completes" rule avoids.
        for ep_index in range(len(vpe.pe.dtu.eps)):
            yield from self.kernel.dtu.configure_remote(
                node, "invalidate", ep_index
            )
        # Retire the capability->endpoint binding records: nothing of
        # this VPE is configured in hardware any more.
        stale = [k for k in self.kernel._ep_bindings if k[0] == vpe.id]
        for key in stale:
            cap = self.kernel._ep_bindings.pop(key)
            cap.bound_eps.discard(key)
        vpe.resident = False
        vpe.saved = True
        self.resident[node] = None
        self.suspended.setdefault(node, set()).add(vpe)
        # The PE stays claimed: a suspended VPE will come back to it.
        vpe.pe.reserved = True
        env = self.kernel.envs.get(vpe.id)
        if env is not None:
            env.epmux.invalidate_all()
        if span is not None:
            obs.end(span)
        self.switching[node] = False
        self._try_dispatch(node)

    def _switch_in(self, vpe: VpeObject):
        """Generator: make a queued/saved VPE resident and (re)start it."""
        node = vpe.node
        self.switch_count += 1
        obs = self.sim.obs
        span = None
        if obs is not None:
            obs.count("kernel.ctx_switches")
            span = obs.begin("switch_in", "ctxsw", node, vpe=vpe.id)
        yield self.sim.delay(SWITCH_KERNEL_CYCLES, tag=Tag.OS)
        if vpe.staging_addr is not None:
            image = self.kernel.platform.dram.memory.read(
                vpe.staging_addr, vpe.pe.spm_data.size
            )
            yield self.sim.delay(self._transfer_cycles(vpe), tag=Tag.XFER)
            vpe.pe.spm_data.write(0, image)
        # Re-wire the standard syscall channel.
        yield from self.kernel.wire_syscall_channel(vpe)
        vpe.resident = True
        vpe.saved = False
        self.resident[node] = vpe
        if span is not None:
            obs.end(span)
        self.switching[node] = False
        self.suspended.setdefault(node, set()).discard(vpe)
        if vpe.pending_entry is not None:
            entry, args = vpe.pending_entry
            vpe.pending_entry = None
            vpe.state = VpeState.RUNNING
            vpe.pe.release()
            self.kernel.start_software(vpe, entry, args)
        else:
            # A restored VPE: its software "moves with it" — rebind the
            # environment to the (possibly different, after migration)
            # PE, restore the SPM allocator mark, and keep the PE
            # claimed while the suspended process resumes.
            env = self.kernel.envs.get(vpe.id)
            old_dtu = env.dtu if env is not None else None
            if env is not None:
                env.pe = vpe.pe
                env.dtu = vpe.pe.dtu
            vpe.pe._alloc_next = vpe.saved_alloc_mark
            vpe.pe.reserved = True
            if vpe.parked_reply is not None:
                slot_payload = vpe.parked_reply
                vpe.parked_reply = None
                self.kernel._reply(vpe, *slot_payload)
            if old_dtu is not None and old_dtu is not vpe.pe.dtu:
                # Spurious wake-up: software blocked on the old DTU's
                # reply endpoint re-polls and re-arms on the new one.
                from repro.m3.kernel.kernel import APP_REPLY_EP

                signal = old_dtu._signals.get(APP_REPLY_EP)
                if signal is not None:
                    signal.fire()

    # ------------------------------------------------------------------
    # the voluntary yield (vpe_wait_yield syscall)
    # ------------------------------------------------------------------

    def wait_yield(self, vpe: VpeObject, slot: int, child: VpeObject):
        """Generator: park the wait reply; reuse the PE if someone is
        queued for it."""
        if child.state == VpeState.DEAD:
            return child.exit_code  # immediate reply, no switch
        child.yield_waiters = getattr(child, "yield_waiters", [])
        child.yield_waiters.append((vpe, slot))
        node = vpe.node
        if self.queues.get(node) and not self.switching.get(node):
            has_ready = any(
                w.pending_entry is not None or w.saved
                for w in self.queues[node]
            )
            if has_ready:
                self.switching[node] = True
                self.sim.process(
                    self._switch_out(vpe), f"ctxsw.out.{vpe.name}"
                )
        from repro.m3.kernel.kernel import NO_REPLY

        return NO_REPLY
        yield  # pragma: no cover

    def child_exited(self, child: VpeObject) -> None:
        """Complete parked wait_yield replies (restoring yielders)."""
        waiters = getattr(child, "yield_waiters", [])
        child.yield_waiters = []
        for vpe, slot in waiters:
            if vpe.state == VpeState.DEAD:
                continue
            if vpe.resident:
                self.kernel._reply(vpe, slot, ("ok", child.exit_code))
            else:
                # The kernel "switch[es] back to the old thread before
                # the interrupted communication can be completed".
                vpe.parked_reply = (slot, ("ok", child.exit_code))
                self.queues[vpe.node].append(vpe)
                self._try_dispatch(vpe.node)

    def vpe_gone(self, vpe: VpeObject) -> None:
        """A resident VPE exited: free the PE for queued VPEs."""
        node = vpe.node
        if self.resident.get(node) is vpe:
            self.resident[node] = None
        self.suspended.setdefault(node, set()).discard(vpe)
        if vpe.staging_addr is not None:
            self.kernel.memory.free(vpe.staging_addr, vpe.pe.spm_data.size)
            vpe.staging_addr = None
        if self._pe_has_pending_work(node):
            # The exit released the PE; claim it back for the VPEs that
            # are queued or suspended here.
            vpe.pe.reserved = True
        self._try_dispatch(node)
        if self.kernel.auto_rebalance:
            self.rebalance()

    # ------------------------------------------------------------------
    # migration — "the migration of VPEs ... requires the same
    # mechanism" as context switching (Section 3.3)
    # ------------------------------------------------------------------

    def migrate(self, vpe: VpeObject, target_pe) -> None:
        """Move a non-resident (queued or suspended) VPE to another PE.

        The saved image lives in DRAM, so the restore transfer works
        toward any PE; the syscall channel is rewired at switch-in.
        """
        if vpe.resident and vpe.state == VpeState.RUNNING:
            raise ValueError(
                f"VPE {vpe.name!r} is running; only suspended/queued "
                "VPEs can migrate"
            )
        if not target_pe.core.type.general_purpose:
            raise ValueError("migration target must be a general-purpose PE")
        old_node = vpe.node
        queue = self.queues.get(old_node, [])
        was_queued = vpe in queue
        if was_queued:
            queue.remove(vpe)
        self.suspended.setdefault(old_node, set()).discard(vpe)
        if not self._pe_has_pending_work(old_node) and \
                self.resident.get(old_node) is None:
            vpe.pe.reserved = False
        vpe.pe = target_pe
        self.adopt_node(target_pe)
        if target_pe.busy is False:
            target_pe.reserved = True
        self.queues[target_pe.node].append(vpe)
        self._try_dispatch(target_pe.node)

    def adopt_node(self, pe) -> None:
        """Ensure switcher bookkeeping exists for a PE."""
        self.resident.setdefault(pe.node, None)
        self.queues.setdefault(pe.node, [])
        self.switching.setdefault(pe.node, False)
        self.suspended.setdefault(pe.node, set())

    def rebalance(self) -> None:
        """Load balancing (Section 1.3): move a waiting VPE from a
        crowded PE to a free one."""
        free = self.kernel.platform.find_free_pe()
        if free is None or free.node == self.kernel.node:
            return
        for node, queue in self.queues.items():
            for vpe in list(queue):
                ready = vpe.pending_entry is not None or vpe.saved
                contended = (
                    self.resident.get(node) is not None
                    or self.switching.get(node)
                )
                if ready and contended:
                    self.migrate(vpe, free)
                    return
