"""The M3 kernel: capability management, VPEs, and syscall dispatch.

"Despite the differences between the kernel in M3 and a traditional
kernel, they share their main responsibility: making the final decision
of whether an operation is allowed or not" (Section 3).  The kernel
runs on its own PE and talks to applications exclusively through DTU
messages.
"""

from repro.m3.kernel.capability import Capability, CapKind, CapTable
from repro.m3.kernel.objects import (
    MemObject,
    RecvGateObject,
    SendGateObject,
    ServiceObject,
    SessionObject,
)
from repro.m3.kernel.vpe import VpeObject, VpeState
from repro.m3.kernel.memmgr import MemoryManager, OutOfMemory
from repro.m3.kernel.kernel import Kernel, SyscallError

__all__ = [
    "Capability",
    "CapKind",
    "CapTable",
    "Kernel",
    "MemObject",
    "MemoryManager",
    "OutOfMemory",
    "RecvGateObject",
    "SendGateObject",
    "ServiceObject",
    "SessionObject",
    "SyscallError",
    "VpeObject",
    "VpeState",
]
