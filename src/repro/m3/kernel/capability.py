"""Capabilities, capability tables, and the derivation tree.

The kernel "maintains a table of capabilities per VPE, similar to the
file descriptor table in UNIX systems", and "to revoke a capability
recursively, i.e., including all grants, the kernel maintains a tree
that records all delegation/obtain operations, similar to the mapping
database found in some L4 microkernels" (Section 4.5.3).
"""

from __future__ import annotations

import enum
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.kernel.vpe import VpeObject


class CapKind(enum.Enum):
    """What kind of kernel object a capability refers to."""

    VPE = "vpe"
    MEM = "mem"
    SEND = "send"
    RECV = "recv"
    SERVICE = "service"
    SESSION = "session"


class Capability:
    """A (kernel object, permissions) pair held in one VPE's table."""

    __slots__ = (
        "kind", "obj", "table", "selector", "parent", "children",
        "bound_eps", "foreign"
    )

    def __init__(self, kind: CapKind, obj: object):
        self.kind = kind
        self.obj = obj
        self.table: "CapTable | None" = None
        self.selector: int | None = None
        #: derivation-tree links for recursive revoke.
        self.parent: "Capability | None" = None
        self.children: list["Capability"] = []
        #: (vpe_id, ep_index) pairs this capability is activated on; the
        #: kernel invalidates these endpoints when the cap is revoked.
        self.bound_eps: set = set()
        #: the referenced object is owned by a *peer kernel domain*
        #: (delegated over the inter-kernel protocol); revoking it must
        #: not free resources into this kernel's allocators.
        self.foreign = False

    def derive(self, obj: object | None = None,
               kind: "CapKind | None" = None) -> "Capability":
        """Create a child capability (for delegate/obtain).

        ``obj`` defaults to the same kernel object; derive_mem-style
        operations pass a restricted one.  ``kind`` lets a derivation
        change the capability kind (e.g. a service capability derived
        from the receive gate it registers).
        """
        child = Capability(kind or self.kind, obj if obj is not None else self.obj)
        child.parent = self
        self.children.append(child)
        return child

    def subtree(self) -> list["Capability"]:
        """This capability and all transitively derived ones."""
        result = [self]
        stack = list(self.children)
        while stack:
            cap = stack.pop()
            result.append(cap)
            stack.extend(cap.children)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"sel={self.selector}" if self.table is not None else "detached"
        return f"<Capability {self.kind.value} {where}>"


class CapTable:
    """Per-VPE selector → capability mapping."""

    def __init__(self, vpe: "VpeObject | None" = None):
        self.vpe = vpe
        self._caps: dict[int, Capability] = {}
        self._next_selector = 0

    def insert(self, cap: Capability, selector: int | None = None) -> int:
        """Install ``cap``; returns the chosen selector."""
        if cap.table is not None:
            raise ValueError("capability already installed in a table")
        if selector is None:
            selector = self._next_selector
        if selector in self._caps:
            raise ValueError(f"selector {selector} already in use")
        self._next_selector = max(self._next_selector, selector + 1)
        cap.table = self
        cap.selector = selector
        self._caps[selector] = cap
        return selector

    def get(self, selector: int, kind: CapKind | None = None) -> Capability:
        """Look up a capability, optionally checking its kind."""
        cap = self._caps.get(selector)
        if cap is None:
            raise KeyError(f"no capability at selector {selector}")
        if kind is not None and cap.kind != kind:
            raise KeyError(
                f"capability at selector {selector} is {cap.kind.value}, "
                f"expected {kind.value}"
            )
        return cap

    def remove(self, cap: Capability) -> None:
        """Drop a capability from this table (revocation plumbing)."""
        if cap.table is not self:
            raise ValueError("capability not in this table")
        del self._caps[cap.selector]
        cap.table = None
        cap.selector = None

    def caps(self) -> list[Capability]:
        """A snapshot of the installed capabilities (revoke-safe copy)."""
        return list(self._caps.values())

    def __len__(self) -> int:
        return len(self._caps)

    def __contains__(self, selector: int) -> bool:
        return selector in self._caps


def revoke(cap: Capability, include_self: bool = True) -> list[Capability]:
    """Recursively revoke ``cap``: remove the derivation subtree from all
    tables.  Returns the removed capabilities so the kernel can tear
    down endpoint configurations behind them.
    """
    removed = []
    victims = cap.subtree() if include_self else [
        c for child in cap.children for c in child.subtree()
    ]
    for victim in victims:
        if victim.table is not None:
            victim.table.remove(victim)
        removed.append(victim)
    # Detach from the tree so parents no longer reference revoked caps.
    if include_self and cap.parent is not None:
        cap.parent.children.remove(cap)
        cap.parent = None
    if not include_self:
        for child in cap.children:
            child.parent = None
        cap.children.clear()
    return removed
