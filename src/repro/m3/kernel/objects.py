"""Kernel objects: what capabilities refer to.

"A capability is thereby a pair consisting of a kernel object and
permissions for this object" (Section 4.5.3).  These classes are the
kernel-side state; applications only ever hold selectors.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.dtu.registers import MemoryPerm

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.m3.kernel.vpe import VpeObject, VpeState


@dataclasses.dataclass
class MemObject:
    """A region of (usually DRAM) memory reachable via a memory endpoint."""

    node: int
    address: int
    size: int
    perm: MemoryPerm

    def slice(self, offset: int, size: int, perm: MemoryPerm) -> "MemObject":
        """A sub-region with possibly reduced permissions (derive_mem)."""
        if offset < 0 or size <= 0 or offset + size > self.size:
            raise ValueError(
                f"slice [{offset}, {offset + size}) outside region of {self.size}B"
            )
        if perm & ~self.perm:
            raise ValueError("cannot widen permissions when deriving memory")
        return MemObject(self.node, self.address + offset, size, perm)


@dataclasses.dataclass
class RecvGateObject:
    """A receive endpoint somewhere in the system.

    A receive gate is *movable while inactive* — "they can only be
    moved to different endpoints or PEs after invalidating all
    connected send gates and ensuring that no transfer is in progress"
    (Section 4.5.4) — so ``owner`` is fixed at activation, not creation.
    """

    slot_size: int
    slot_count: int
    owner: "VpeObject | None" = None
    #: which endpoint of the owner's DTU the gate is activated on.
    ep_index: int | None = None
    #: deferred send-gate activations waiting for this gate to become
    #: ready (the kernel "defer[s] the reply to the system call until
    #: the receiver is ready to receive messages", Section 4.5.4).
    pending_activations: list = dataclasses.field(default_factory=list)

    @property
    def active(self) -> bool:
        return self.ep_index is not None

    @property
    def node(self) -> int:
        if self.owner is None:
            raise RuntimeError("receive gate is not activated yet")
        return self.owner.node


@dataclasses.dataclass
class SendGateObject:
    """Permission to send to a receive gate, with a fixed label."""

    target: RecvGateObject
    label: int
    credits: int


@dataclasses.dataclass
class ServiceObject:
    """A registered OS service reachable through its receive gate."""

    name: str
    rgate: RecvGateObject
    owner: "VpeObject"
    #: session id -> client VPE, for service-initiated delegation.
    sessions: dict = dataclasses.field(default_factory=dict)
    _session_ids: itertools.count = dataclasses.field(
        default_factory=lambda: itertools.count(1)
    )

    def next_session_id(self) -> int:
        return next(self._session_ids)


@dataclasses.dataclass
class SessionObject:
    """A client's session with a service (identified by its label)."""

    service: ServiceObject
    label: int
    client: "VpeObject | None" = None


# -- inter-kernel proxies ------------------------------------------------------
#
# With the PE mesh partitioned into kernel domains, each kernel only
# holds real objects for its own domain; cross-domain references are
# carried by the proxies below, exchanged over the inter-kernel
# protocol (see docs/protocols.md).


@dataclasses.dataclass
class RemoteVpeObject:
    """A VPE owned by a peer kernel, held through a VPE capability.

    ``remote_id`` is the VPE id *in the owning kernel's namespace*;
    state/exit_code are cached from inter-kernel replies and may lag
    the authoritative copy.
    """

    remote_id: int
    kernel_id: int
    name: str
    node: int
    state: "VpeState" = None  # type: ignore[assignment]
    exit_code: object = None

    def __post_init__(self):
        if self.state is None:
            from repro.m3.kernel.vpe import VpeState

            self.state = VpeState.INIT


@dataclasses.dataclass
class RemoteGateStub:
    """Stand-in target for a send gate whose receive gate lives in a
    peer kernel domain: just enough addressing for the kernel to build
    the send endpoint configuration.  Always ``active`` — the owning
    kernel only exports a service gate after it is activated."""

    node: int
    ep_index: int
    slot_size: int

    @property
    def active(self) -> bool:
        return True


@dataclasses.dataclass
class RemoteServiceRef:
    """What a cross-domain session's ``service`` field points at."""

    name: str
    kernel_id: int


@dataclasses.dataclass
class RemoteClientRef:
    """The owning service's record of a client in a peer domain; memory
    delegations to such a session are forwarded to ``kernel_id``."""

    kernel_id: int
    vpe_id: int
