"""The M3 kernel: boot, NoC-level isolation, and syscall dispatch.

The kernel runs on a dedicated PE and never shares it with
applications.  Its power comes solely from its privileged DTU: it
downgrades all application DTUs at boot and afterwards remotely
configures their endpoints (Section 3).
"""

from __future__ import annotations

import collections
import itertools
import typing

from repro import params
from repro.dtu.dtu import DtuError, MissingCredits
from repro.dtu.message import HEADER_BYTES
from repro.dtu.registers import EndpointKind, EndpointRegisters, MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.kernel.capability import Capability, CapKind, revoke
from repro.m3.kernel.memmgr import MemoryManager
from repro.m3.kernel.objects import (
    MemObject,
    RecvGateObject,
    RemoteClientRef,
    RemoteGateStub,
    RemoteServiceRef,
    RemoteVpeObject,
    SendGateObject,
    ServiceObject,
    SessionObject,
)
from repro.m3.kernel.vpe import VpeObject, VpeState
from repro.obs.causal import header_context
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.platform import Platform


class SyscallError(Exception):
    """A syscall was denied or failed; carried back in the reply."""


class _NoReply:
    """Sentinel: the handler acknowledged the slot itself or deferred."""


NO_REPLY = _NoReply()

#: kernel endpoint assignment.
KERNEL_SYSCALL_EP = 0  # receive endpoint for all syscalls
KERNEL_REPLY_EP = 1  # receive endpoint for replies to kernel-sent messages
KERNEL_FIRST_SRV_EP = 2  # send endpoints to services (single-kernel layout)
#: multi-kernel layout only: requests from peer kernels arrive here and
#: peer send endpoints follow; service endpoints then start after the
#: last peer.  A single kernel keeps the layout above unchanged.
KERNEL_IK_EP = 2
KERNEL_FIRST_PEER_EP = 3

#: application endpoint assignment (mirrored by libm3's Env).
APP_SYSCALL_EP = 0  # send endpoint to the kernel
APP_REPLY_EP = 1  # receive endpoint for syscall and service replies

#: syscall channel geometry.
SYSCALL_MSG_BYTES = 64
SYSCALL_RING_SLOTS = 64
#: reply ring slots are large enough for service replies too (services
#: answer clients through the same standard reply endpoint).
REPLY_SLOT_BYTES = 512
REPLY_RING_SLOTS = 8
#: the kernel's own reply ring must absorb a burst of session
#: negotiations (up to one per parked open_session).
KERNEL_REPLY_RING_SLOTS = 64
#: inter-kernel channel geometry: requests carry service lookups and
#: capability descriptors, so the slots match the reply ring's size.
IK_SLOT_BYTES = 512
IK_RING_SLOTS = 64
IK_MSG_BYTES = 256
#: per-peer in-flight request limit; with at most 3 peers the receive
#: ring (64 slots) can absorb every peer's burst at once.
IK_SEND_CREDITS = 16


class Kernel:
    """Kernel state plus the dispatch loop running on the kernel PE."""

    def __init__(self, platform: "Platform", node: int = 0,
                 dram_reserve: int = 0, kernel_id: int = 0,
                 domain=None, dram_base: int | None = None,
                 dram_bytes: int | None = None):
        self.platform = platform
        self.sim = platform.sim
        self.node = node
        self.pe = platform.pe(node)
        self.dtu = self.pe.dtu
        #: this kernel's id and the set of PE nodes it owns (``None``
        #: means the whole mesh — the classic single-kernel layout).
        self.kernel_id = kernel_id
        self.domain = set(domain) if domain is not None else None
        #: process-name stem (the system layer renames partitioned
        #: kernels to ``kernel<d>``).
        self.label = "kernel"
        #: VPE id -> kernel object.
        self.vpes: dict[int, VpeObject] = {}
        #: registered services by name.
        self.services: dict[str, ServiceObject] = {}
        #: session router: logical service name -> ordered replica list
        #: of ``(concrete service name, owning kernel id)``.  An
        #: ``open_session`` naming a routed service is load-balanced
        #: round-robin across the live replicas (dead domains skipped),
        #: riding the ordinary local/inter-kernel ``srv_open`` paths.
        self.service_routes: dict[str, tuple] = {}
        self._route_cursor: dict[str, int] = {}
        #: requests dispatched per replica by this kernel's router.
        self.route_counts: dict[str, int] = {}
        #: per-route balancing policy: ``"rr"`` (default) or ``"depth"``
        #: (least-loaded by queue depth, round-robin tiebreak).
        self._route_policy: dict[str, str] = {}
        #: replica name -> ``(stamp cycle, depth)`` learned from the
        #: depth piggyback on inter-kernel traffic (newest stamp wins).
        self.replica_depths: dict[str, tuple] = {}
        #: attach depth riders to outgoing inter-kernel requests.  Off
        #: until some route asks for ``policy="depth"``: with every
        #: route on round-robin the wire payloads stay byte-identical
        #: to the pre-elastic protocol.
        self._gossip_depths = False
        #: DRAM allocator (`dram_reserve` bytes at the bottom stay free
        #: for platform-level uses); a partitioned kernel manages only
        #: its own shard ``[dram_base, dram_base + dram_bytes)``.
        if dram_base is None:
            dram_base = dram_reserve
            dram_bytes = platform.dram.memory.size - dram_reserve
        self.memory = MemoryManager(dram_base, dram_bytes)
        #: peer kernel id -> send-EP index on this kernel's DTU.
        self.peers: dict[int, int] = {}
        self._peer_nodes: dict[int, int] = {}
        #: parked inter-kernel requests: negotiation id -> completion
        #: callback run with the peer's reply payload.
        self._ik_pending: dict[int, typing.Callable] = {}
        #: service name -> owning peer kernel id (remote-lookup cache).
        self._remote_services: dict[str, int] = {}
        self.ik_requests_sent = 0
        self.ik_requests_served = 0
        #: reliable inter-kernel RPC client state (reliable DTUs only):
        #: negotiation id -> retry bookkeeping (attempts, timer handle).
        self._ik_outstanding: dict[int, dict] = {}
        #: server-side idempotency: (sender kernel, negotiation) of
        #: requests still executing/parked -> their ring slot, plus a
        #: bounded cache of already-sent replies for re-answering
        #: duplicates without re-executing the operation.
        self._ik_inflight: dict[tuple, int] = {}
        self._ik_replied: collections.OrderedDict = collections.OrderedDict()
        self.ik_retries = 0
        self.ik_timeouts = 0
        self.ik_duplicates = 0
        #: fault-path-only record of ``(cycle, negotiation, attempt)``
        #: per client-side retransmit, for determinism checks.
        self.ik_retry_log: list[tuple] = []
        #: peer kernel ids declared dead (failover done or underway).
        self.dead_peers: set[int] = set()
        #: peer kernel id -> the set of nodes its domain owns, so
        #: failover knows what to quarantine (see :meth:`set_peers`).
        self._peer_domains: dict[int, set] = {}
        #: heartbeat ring state (see :meth:`start_heartbeat`).
        self._heartbeat = None
        self._heartbeat_stop = False
        self._heartbeat_misses: dict[int, int] = {}
        self.heartbeats_sent = 0
        #: ``(peer, detected_at, completed_at, reason)`` per failover.
        self.failover_log: list[tuple] = []
        #: peer kernel id -> the SLO alert that preceded the death
        #: verdict — ``(alert_cycle, slo name, severity)`` — when an
        #: SLO monitor was watching (see repro.obs.slo); absent peers
        #: had no alert standing.
        self.failover_alerts: dict[int, tuple] = {}
        #: send-EP index on the kernel DTU per service name.
        self._service_eps: dict[str, int] = {}
        self._next_service_ep = KERNEL_FIRST_SRV_EP
        self.syscall_count = 0
        #: (vpe_id, ep_index) -> capability currently configured there,
        #: so revocation can invalidate the hardware behind a grant.
        self._ep_bindings: dict[tuple, Capability] = {}
        #: parked open_session negotiations keyed by negotiation id.
        self._pending_sessions: dict[int, tuple] = {}
        self._negotiation_ids = itertools.count(1)
        #: per-kernel VPE ids, so runs are reproducible regardless of
        #: what else the hosting Python process simulated before.
        self._vpe_ids = itertools.count(1)
        self._booted = False
        #: callback used by the M3 system layer to start software on a
        #: PE (models the kernel writing the boot registers via the DTU).
        self.start_software = None
        #: PE time-multiplexing (Sections 3.3/7); off by default, like
        #: the paper's prototype.
        self.multiplexing = False
        #: move waiting VPEs to PEs that free up (Section 1.3's load
        #: balancing); only meaningful with multiplexing on.
        self.auto_rebalance = False
        from repro.m3.kernel.ctxsw import ContextSwitcher

        self.ctxsw = ContextSwitcher(self)
        #: vpe id -> libm3 Env, populated by the system layer (used by
        #: the context switcher to flush client-side endpoint bindings).
        self.envs: dict[int, object] = {}
        #: watchdog state (see :meth:`start_watchdog`).
        self._watchdog = None
        self._watchdog_stop = False
        self._watchdog_recovery = "kill"
        self.probes_sent = 0
        self.recoveries = 0
        self.migrations = 0
        #: cross-domain migration bookkeeping: local VPE id -> (new
        #: owner kernel id, id over there) for VPEs this kernel pushed
        #: out.  Stale inter-kernel requests naming the old id are
        #: forwarded to the new owner (the proxy swaps direction).
        self._migrated_out: dict[int, tuple] = {}
        self.migrations_out = 0
        self.migrations_in = 0

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def set_peers(self, peer_nodes: dict,
                  peer_domains: dict | None = None) -> None:
        """Declare the other kernels (id -> node) before :meth:`boot`.

        Assigns one send endpoint per peer (after the inter-kernel
        receive endpoint) and moves the first service endpoint behind
        them.  Never called for a single-kernel system, whose endpoint
        layout is unchanged.  ``peer_domains`` (id -> node set) tells
        failover which PEs to quarantine when a peer dies.
        """
        self._peer_nodes = dict(peer_nodes)
        self._peer_domains = {
            peer: set(nodes) for peer, nodes in (peer_domains or {}).items()
        }
        self.peers = {}
        ep_index = KERNEL_FIRST_PEER_EP
        for peer_id in sorted(self._peer_nodes):
            self.peers[peer_id] = ep_index
            ep_index += 1
        if ep_index > len(self.dtu.eps):
            raise ValueError(
                f"{len(self._peer_nodes)} peer kernels do not fit "
                f"{len(self.dtu.eps)} DTU endpoints"
            )
        self._next_service_ep = ep_index

    def _live_peers(self) -> list[int]:
        """Peer kernel ids not declared dead, in id order."""
        return [peer for peer in sorted(self.peers)
                if peer not in self.dead_peers]

    def boot(self):
        """Generator: take control of the chip.

        Configures the kernel's own endpoints, then downgrades every
        other DTU — "during boot, the DTUs of the application PEs are
        downgraded by the kernel to become unprivileged" (Section 3).
        """
        self.dtu.configure_local(
            "configure",
            KERNEL_SYSCALL_EP,
            EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
                slot_count=SYSCALL_RING_SLOTS,
            ),
        )
        self.dtu.configure_local(
            "configure",
            KERNEL_REPLY_EP,
            EndpointRegisters.receive_config(
                buffer_addr=4096,
                slot_size=REPLY_SLOT_BYTES,
                slot_count=KERNEL_REPLY_RING_SLOTS,
            ),
        )
        if self._peer_nodes:
            self.dtu.configure_local(
                "configure",
                KERNEL_IK_EP,
                EndpointRegisters.receive_config(
                    buffer_addr=8192,
                    slot_size=IK_SLOT_BYTES,
                    slot_count=IK_RING_SLOTS,
                ),
            )
            for peer_id, ep_index in self.peers.items():
                self.dtu.configure_local(
                    "configure",
                    ep_index,
                    EndpointRegisters.send_config(
                        target_node=self._peer_nodes[peer_id],
                        target_ep=KERNEL_IK_EP,
                        label=self.kernel_id,
                        credits=IK_SEND_CREDITS,
                        msg_size=IK_SLOT_BYTES,
                    ),
                )
        for pe in self.platform.pes:
            if pe.node == self.node:
                continue
            if self.domain is not None and pe.node not in self.domain:
                continue  # a peer kernel downgrades its own domain
            yield from self.dtu.configure_remote(pe.node, "downgrade")
        self._booted = True

    # ------------------------------------------------------------------
    # VPE management (also used directly for boot-time root VPEs)
    # ------------------------------------------------------------------

    def create_vpe(self, name: str, pe_type: str | None = None,
                   creator: VpeObject | None = None):
        """Generator: allocate a PE, create the VPE, wire its syscall
        channel.  Returns the :class:`VpeObject`.

        With :attr:`multiplexing` enabled and no free PE, the VPE is
        queued on a time-shared PE instead (general-purpose cores only);
        the creator's PE is the preferred victim.
        """
        pe = self.platform.find_free_pe(pe_type, nodes=self.domain)
        if pe is None or pe.node == self.node:
            if self.multiplexing and pe_type in (None, "xtensa"):
                preferred = creator.node if creator is not None else None
                vpe = self._create_multiplexed(name, preferred)
                if vpe is not None:
                    return vpe
            raise SyscallError(
                f"no free PE of type {pe_type or 'any'} for VPE {name!r}"
            )
        vpe = VpeObject(name, pe, next(self._vpe_ids))
        vpe.kernel = self
        self.vpes[vpe.id] = vpe
        # Reserve the PE immediately so concurrent creates cannot race.
        pe.reserve()
        yield from self.wire_syscall_channel(vpe)
        # Self capability and a memory capability for the PE's SPM, used
        # by the parent for application loading (Section 4.5.5).
        vpe.captable.insert(Capability(CapKind.VPE, vpe))
        spm_cap = Capability(
            CapKind.MEM,
            MemObject(pe.node, 0, pe.spm_data.size, MemoryPerm.RW),
        )
        vpe.captable.insert(spm_cap)
        self.ctxsw.adopt(vpe)
        return vpe

    def _create_multiplexed(self, name: str,
                            preferred_node: int | None = None
                            ) -> VpeObject | None:
        """Queue a VPE on a time-shared PE (no endpoint wiring yet —
        that happens at switch-in)."""
        vpe = self.ctxsw.place(name, preferred_node)
        if vpe is None:
            return None
        vpe.kernel = self
        vpe.captable.insert(Capability(CapKind.VPE, vpe))
        # The loader capability targets the DRAM staging area, not the
        # (occupied) SPM.
        vpe.captable.insert(
            Capability(CapKind.MEM, self.ctxsw.staging_object(vpe))
        )
        return vpe

    def wire_syscall_channel(self, vpe: VpeObject):
        """Generator: configure the standard endpoints of a VPE's DTU
        (reply ringbuffer + send gate to the kernel)."""
        yield from self.dtu.configure_remote(
            vpe.node,
            "configure",
            APP_REPLY_EP,
            EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=REPLY_SLOT_BYTES,
                slot_count=REPLY_RING_SLOTS,
            ),
        )
        # The label is the VPE id, chosen by the kernel and unforgeable
        # by the application.
        yield from self.dtu.configure_remote(
            vpe.node,
            "configure",
            APP_SYSCALL_EP,
            EndpointRegisters.send_config(
                target_node=self.node,
                target_ep=KERNEL_SYSCALL_EP,
                label=vpe.id,
                credits=2,
                msg_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
            ),
        )

    def start_vpe(self, vpe: VpeObject, entry, args: tuple) -> None:
        """Start software on the VPE's PE (the M3 system layer provides
        the actual loader hook)."""
        if vpe.state == VpeState.DEAD:
            raise SyscallError(f"VPE {vpe.name!r} is dead")
        if self.start_software is None:
            raise RuntimeError("kernel has no software loader attached")
        # Recorded so recover-by-migrate can restart the software on a
        # new PE after salvaging the SPM image off a dead node.
        vpe.last_entry = (entry, args)
        if not vpe.resident:
            # A queued multiplexed VPE runs when it gets the PE.
            self.ctxsw.start_queued(vpe, entry, args)
            return
        vpe.state = VpeState.RUNNING
        self.start_software(vpe, entry, args)

    def vpe_exited(self, vpe: VpeObject, exit_code: object) -> None:
        """Mark a VPE dead, free its PE, and wake all waiters."""
        vpe.state = VpeState.DEAD
        vpe.exit_code = exit_code
        vpe.pe.release()
        for waiter_vpe, slot in vpe.waiters:
            self._reply(waiter_vpe, slot, ("ok", exit_code))
        vpe.waiters.clear()
        for ik_slot in vpe.remote_waiters:
            self._ik_reply(ik_slot, ("ok", exit_code))
        vpe.remote_waiters.clear()
        for event in vpe.exit_events:
            event.succeed(exit_code)
        vpe.exit_events.clear()
        self.ctxsw.vpe_gone(vpe)
        self.ctxsw.child_exited(vpe)

    # ------------------------------------------------------------------
    # Watchdog: failure detection and recovery
    # ------------------------------------------------------------------

    def start_watchdog(self, period: int = params.KERNEL_WATCHDOG_PERIOD,
                       probe_timeout: int =
                       params.KERNEL_PROBE_TIMEOUT_CYCLES,
                       recovery: str = "kill"):
        """Start the liveness watchdog on the kernel PE.

        Every ``period`` cycles the kernel probes the DTU of each
        running, resident VPE (the DTU answers in hardware with the
        core's halted bit, so a dead core cannot suppress the answer).
        A probe that reports "halted" — or that gets no answer within
        ``probe_timeout`` cycles, i.e. the whole node is unreachable —
        triggers recovery: ``recovery="kill"`` tears the VPE down
        (:meth:`recover_vpe`); ``recovery="migrate"`` first tries to
        salvage the SPM image off the dead node and restart the VPE on
        a free PE (:meth:`_recover_by_migrate`), falling back to kill.
        """
        if recovery not in ("kill", "migrate"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        if self._watchdog is not None and self._watchdog.alive:
            raise RuntimeError("watchdog already running")
        self._watchdog_stop = False
        self._watchdog_recovery = recovery
        self._watchdog = self.sim.process(
            self._watchdog_loop(period, probe_timeout), "kernel.watchdog"
        )
        return self._watchdog

    def stop_watchdog(self) -> None:
        """Let the watchdog loop exit at its next wake-up (so a bare
        ``sim.run()`` can drain the event queue)."""
        self._watchdog_stop = True

    def _watchdog_loop(self, period: int, probe_timeout: int):
        while True:
            yield self.sim.delay(period)
            if self._watchdog_stop or self.pe.failed:
                # The stop flag, or this kernel's own PE died (the
                # watchdog runs as a bare process, so it would otherwise
                # keep probing on behalf of a dead kernel).
                return
            for vpe in list(self.vpes.values()):
                if (vpe.state != VpeState.RUNNING or not vpe.resident
                        or vpe.failed or vpe.node == self.node):
                    continue
                yield self.sim.delay(params.KERNEL_PROBE_CYCLES, tag=Tag.OS)
                alive = yield from self._probe_vpe(vpe, probe_timeout)
                if not alive:
                    if self._watchdog_recovery == "migrate":
                        migrated = yield from self._recover_by_migrate(vpe)
                        if migrated:
                            continue
                    yield from self.recover_vpe(vpe, "watchdog probe failed")

    def _probe_vpe(self, vpe: VpeObject, timeout: int):
        """Generator: probe one VPE's node; returns whether it is alive.

        The probe races against ``timeout`` so an unreachable node
        (partitioned NoC, wedged DTU) is detected too, not only a
        cleanly-reported halted core.
        """
        from repro.sim.events import first_of

        self.probes_sent += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.probes_sent")
            self.sim.obs.instant("probe", "watchdog", vpe.node, vpe=vpe.id)
        probe = self.sim.process(
            self.dtu.configure_remote(vpe.node, "probe"),
            f"kernel.probe.vpe{vpe.id}",
        )
        yield first_of(self.sim, probe.done, self.sim.delay(timeout))
        return probe.done.triggered and probe.done.ok \
            and probe.done.value == "alive"

    def recover_vpe(self, vpe: VpeObject, reason: str):
        """Generator: tear a failed VPE out of the system.

        The PE's core is gone but its DTU still obeys privileged
        configuration packets, so the kernel (1) wipes the dead node's
        endpoints — NoC-level fencing that stops half-dead software
        state from being reachable, (2) quarantines the PE from
        allocation, (3) fails all VPE_WAIT callers with an error reply
        instead of leaving them blocked forever, and (4) revokes every
        capability the VPE held, which invalidates the endpoints other
        VPEs had configured from its grants.
        """
        self.recoveries += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.recoveries")
            self.sim.obs.instant("recover", "watchdog", vpe.node,
                                 vpe=vpe.id, reason=reason)
            if self.sim.obs.flight is not None:
                self.sim.obs.flight.dump(
                    f"kernel{self.kernel_id}: watchdog recovers VPE "
                    f"#{vpe.id} ({vpe.name}): {reason}",
                    domain=self.kernel_id,
                )
        vpe.failed = True
        self.sim.ledger.mark(
            self.sim.now, Tag.FAULT,
            f"kernel recovers VPE #{vpe.id} ({vpe.name}): {reason}",
        )
        try:
            yield from self.dtu.configure_remote(vpe.node, "wipe")
        except DtuError:
            pass  # node unreachable: fenced by the NoC instead
        vpe.pe.failed = True  # quarantine: find_free_pe skips it
        occupant = vpe.pe.occupant
        if occupant is not None and occupant.alive:
            try:
                occupant.interrupt("pe-failed")
            except RuntimeError:
                pass  # not blocked; it is dead hardware either way
        error = ("err", f"VPE {vpe.name!r} failed: {reason}")
        for waiter_vpe, slot in vpe.waiters + vpe.yield_waiters:
            self._reply(waiter_vpe, slot, error)
        vpe.waiters.clear()
        vpe.yield_waiters.clear()
        for ik_slot in vpe.remote_waiters:
            self._ik_reply(ik_slot, error)
        vpe.remote_waiters.clear()
        # DEAD before revoking, so _teardown's VPE branch does not try
        # to "exit" the corpse a second time.
        self.vpe_exited(vpe, ("failed", reason))
        for cap in vpe.captable.caps():
            if cap.table is None:
                continue  # removed with an earlier cap's subtree
            for victim in revoke(cap):
                yield from self._teardown(victim)

    def _revoke_foreign_for_node(self, node: int) -> None:
        """Spawn a kernel task revoking every foreign memory capability
        that points at ``node``.

        Used when a remote domain reports (or failover infers) that the
        node's owner died: the regions belong to a peer domain, so the
        foreign flag already guarantees teardown never frees them into
        this kernel's allocator — all that is left is cutting the local
        endpoints configured from those grants.
        """

        def sweep():
            for vpe_id in sorted(self.vpes):
                vpe = self.vpes[vpe_id]
                for cap in vpe.captable.caps():
                    if (cap.table is None or not cap.foreign
                            or cap.kind != CapKind.MEM
                            or cap.obj.node != node):
                        continue
                    for victim in revoke(cap):
                        yield from self._teardown(victim)

        self.sim.process(sweep(), f"{self.label}.revoke-foreign.n{node}")

    # ------------------------------------------------------------------
    # VPE checkpoint / restore / migration
    # ------------------------------------------------------------------

    def checkpoint_vpe(self, vpe: VpeObject):
        """Generator: snapshot a resident VPE's PE-local state.

        Captures the data-SPM image (a timed, size-dependent transfer),
        the DTU endpoint registers, the SPM allocator mark, and a
        capability summary into a :class:`VpeCheckpoint`.  Works against
        a node whose *core* is dead — the DTU answers reads in hardware
        — which is what recover-by-migrate relies on.
        """
        import dataclasses

        from repro.m3.kernel.checkpoint import VpeCheckpoint

        if not vpe.resident:
            raise SyscallError(f"VPE {vpe.name!r} is not resident")
        pe = vpe.pe
        yield self.sim.delay(params.VPE_CHECKPOINT_KERNEL_CYCLES, tag=Tag.OS)
        yield self.sim.delay(
            pe.spm_data.size // params.DTU_BYTES_PER_CYCLE
            + params.DRAM_ACCESS_CYCLES,
            tag=Tag.XFER,
        )
        checkpoint = VpeCheckpoint(
            vpe_id=vpe.id,
            name=vpe.name,
            node=pe.node,
            spm_image=bytes(pe.spm_data.read(0, pe.spm_data.size)),
            alloc_mark=pe._alloc_next,
            eps=tuple(
                (index, dataclasses.replace(ep))
                for index, ep in enumerate(pe.dtu.eps)
                if ep.kind != EndpointKind.INVALID
            ),
            caps=tuple(
                (cap.selector, cap.kind.value)
                for cap in vpe.captable.caps()
                if cap.table is not None
            ),
            taken_at=self.sim.now,
        )
        vpe.last_checkpoint = checkpoint
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.checkpoints")
            self.sim.obs.instant("checkpoint", "migrate", pe.node,
                                 vpe=vpe.id, bytes=checkpoint.spm_bytes)
        return checkpoint

    def restore_vpe(self, checkpoint, target_pe, vpe: VpeObject):
        """Generator: re-materialize a checkpointed, *live* VPE on
        ``target_pe`` (live migration).

        The SPM image and endpoint registers are restored at the same
        indices (client-side gate bindings cache endpoint indices, so
        they stay valid), receive ringbuffers move over with their
        unread messages, and the old DTU forwards in-flight messages
        and replies to the new node for a redirect window before the
        kernel wipes it.  Safe for VPEs that are computing or parked in
        a syscall-reply wait; software blocked in a hand-rolled receive
        loop on the old DTU object is not migratable (see
        docs/protocols.md).
        """
        import dataclasses

        old_pe = vpe.pe
        old_dtu = old_pe.dtu
        old_node = old_pe.node
        if not target_pe.busy:
            target_pe.reserve()
        yield self.sim.delay(params.VPE_CHECKPOINT_KERNEL_CYCLES, tag=Tag.OS)
        yield self.sim.delay(
            target_pe.spm_data.size // params.DTU_BYTES_PER_CYCLE
            + params.DRAM_ACCESS_CYCLES,
            tag=Tag.XFER,
        )
        target_pe.spm_data.write(0, checkpoint.spm_image)
        target_pe._alloc_next = checkpoint.alloc_mark
        if not old_pe.failed:
            # Final sync pass (classic pre-copy migration): the VPE kept
            # running during the bulk copy above, so the authoritative
            # SPM image, allocator mark, and endpoint registers are
            # re-read at hand-off time.  The bulk transfer already paid
            # the size-dependent cost; the dirty delta is not modelled.
            target_pe.spm_data.write(
                0, bytes(old_pe.spm_data.read(0, old_pe.spm_data.size))
            )
            target_pe._alloc_next = old_pe._alloc_next
            eps = tuple(
                (index, dataclasses.replace(ep))
                for index, ep in enumerate(old_dtu.eps)
                if ep.kind != EndpointKind.INVALID
            )
        else:
            eps = checkpoint.eps
        for index, registers in eps:
            yield from self.dtu.configure_remote(
                target_pe.node, "configure", index,
                dataclasses.replace(registers),
            )
            if registers.kind == EndpointKind.RECEIVE:
                # Hardware state handoff: the ringbuffer moves with its
                # unread messages and its duplicate-suppression window.
                moved = old_dtu._ringbufs.pop(index, None)
                if moved is not None:
                    target_pe.dtu._ringbufs[index] = moved
        # The software process itself just keeps running; only the PE
        # binding moves.  The old PE stays reserved until the redirect
        # window closes, so nobody is placed onto its half-dead state.
        occupant = old_pe.occupant
        old_pe.occupant = None
        old_pe.reserved = True
        if occupant is not None and occupant.alive:
            target_pe.occupant = occupant
            target_pe.reserved = False
        vpe.pe = target_pe
        vpe.migrations += 1
        self.migrations += 1
        if self.ctxsw.resident.get(old_node) is vpe:
            self.ctxsw.resident[old_node] = None
            self.ctxsw.adopt_node(target_pe)
            self.ctxsw.resident[target_pe.node] = vpe
        env = self.envs.get(vpe.id)
        if env is not None:
            env.pe = target_pe
            env.dtu = target_pe.dtu
        # Spurious wakeups: anything blocked on an old-DTU signal must
        # re-check against the new DTU (the reply wait re-reads env.dtu).
        for signal in old_dtu._signals.values():
            signal.fire()
        old_dtu.redirect_to = target_pe.node
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.migrations")
            self.sim.obs.instant("migrate", "migrate", old_node,
                                 vpe=vpe.id, target=target_pe.node)
        self.sim.ledger.mark(
            self.sim.now, Tag.OS,
            f"{self.label} migrates VPE #{vpe.id} ({vpe.name}) "
            f"{old_node} -> {target_pe.node}",
        )

        def close_window():
            yield self.sim.delay(params.DTU_REDIRECT_WINDOW_CYCLES)
            old_dtu.redirect_to = None
            try:
                yield from self.dtu.configure_remote(old_node, "wipe")
            except DtuError:
                pass  # unreachable: fenced by the NoC instead
            if not old_pe.failed:
                old_pe.release()

        self.sim.process(
            close_window(), f"{self.label}.migrate-window.v{vpe.id}"
        )

    def _recover_by_migrate(self, vpe: VpeObject):
        """Generator: recover a failed VPE by moving it to a free PE.

        The core died but the node's DTU still serves reads, so the
        kernel checkpoints the SPM image off the dead node, quarantines
        the node, and restarts the VPE's recorded entry on a free PE —
        checkpoint-aware programs find their previous progress in the
        restored SPM image.  Returns False (the caller falls back to
        kill-style recovery) when there is no free PE or no recorded
        entry.
        """
        if vpe.last_entry is None:
            return False
        target = self.platform.find_free_pe(nodes=self.domain)
        if target is None or target.node == self.node:
            return False
        target.reserve()
        checkpoint = yield from self.checkpoint_vpe(vpe)
        old_pe = vpe.pe
        try:
            yield from self.dtu.configure_remote(old_pe.node, "wipe")
        except DtuError:
            pass  # node unreachable: fenced by the NoC instead
        occupant = old_pe.occupant
        if occupant is not None and occupant.alive:
            try:
                occupant.interrupt("pe-failed")
            except RuntimeError:
                pass
        old_pe.release()
        old_pe.failed = True  # quarantine: find_free_pe skips it
        if self.ctxsw.resident.get(old_pe.node) is vpe:
            self.ctxsw.resident[old_pe.node] = None
        self.migrations += 1
        vpe.migrations += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.migrations")
            self.sim.obs.instant("migrate", "watchdog", old_pe.node,
                                 vpe=vpe.id, target=target.node)
        self.sim.ledger.mark(
            self.sim.now, Tag.FAULT,
            f"{self.label} migrates VPE #{vpe.id} ({vpe.name}) off dead "
            f"node {old_pe.node} to node {target.node}",
        )
        vpe.pe = target
        # Restore the image, then restart the entry: the bump allocator
        # starts from zero again, so the re-run allocates the same
        # buffer addresses and finds its progress in the restored SPM.
        yield self.sim.delay(
            target.spm_data.size // params.DTU_BYTES_PER_CYCLE
            + params.DRAM_ACCESS_CYCLES,
            tag=Tag.XFER,
        )
        target.spm_data.write(0, checkpoint.spm_image)
        yield from self.wire_syscall_channel(vpe)
        if self.ctxsw.resident.get(target.node) is None:
            self.ctxsw.adopt_node(target)
            self.ctxsw.resident[target.node] = vpe
        entry, args = vpe.last_entry
        vpe.state = VpeState.RUNNING
        self.start_software(vpe, entry, args)
        return True

    def _sys_migrate_vpe(self, vpe, slot, vpe_sel, target_domain=None):
        """Live-migrate a running, resident child VPE (checkpoint +
        restore + DTU redirect window); returns the node it now runs
        on.  With ``target_domain`` naming a peer kernel, the
        checkpoint instead serializes over the idempotent inter-kernel
        RPC (``ik_migrate_in``) and the child re-materializes in that
        domain, leaving a :class:`RemoteVpeObject` proxy behind."""
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):
            raise SyscallError("cannot live-migrate a remote VPE")
        if not child.resident or child.state != VpeState.RUNNING:
            raise SyscallError(
                f"VPE {child.name!r} is not resident and running; use "
                "vpe_migrate for suspended or queued VPEs"
            )
        if target_domain is not None and target_domain != self.kernel_id:
            self._migrate_out(
                target_domain, child,
                (yield from self._migration_descriptor(child)),
                lambda payload: self._reply(vpe, slot, payload),
            )
            return NO_REPLY
        target = self.platform.find_free_pe(nodes=self.domain)
        if target is None or target.node == self.node:
            raise SyscallError("no free PE to migrate to")
        target.reserve()
        completed = False
        try:
            checkpoint = yield from self.checkpoint_vpe(child)
            if not child.resident or child.state != VpeState.RUNNING:
                raise SyscallError(
                    f"VPE {child.name!r} died during checkpoint"
                )
            yield from self.restore_vpe(checkpoint, target, child)
            completed = True
        finally:
            # A mid-migration failure (fault plan killing the source,
            # the child exiting under the checkpoint) must not strand
            # the target PE reserved forever.  Once restore_vpe ran,
            # the target is the child's live PE — leave it alone.
            if not completed and target.reserved and target.occupant is None:
                target.release()
        return target.node

    # -- cross-domain live migration (elastic scaling) -------------------

    def _migration_descriptor(self, child: VpeObject):
        """Generator: checkpoint ``child`` and wrap the snapshot in a
        :class:`MigrationDescriptor` ready to ride ``ik_migrate_in``."""
        from repro.m3.kernel.checkpoint import MigrationDescriptor

        checkpoint = yield from self.checkpoint_vpe(child)
        return MigrationDescriptor.capture(
            child, checkpoint, self.envs.get(child.id)
        )

    def _migrate_out(self, peer: int, child: VpeObject, descriptor,
                     completion) -> None:
        """Ship a descriptor to ``peer`` over the idempotent RPC;
        ``completion`` runs with ``("ok", (new_id, new_node))`` or an
        error payload after source-side bookkeeping finished."""
        if peer not in self.peers:
            self.sim.call_soon(lambda _: completion(
                ("err", f"no peer kernel domain {peer}")
            ))
            return
        self._ik_request(
            peer, "migrate_in", (descriptor,),
            lambda payload: completion(
                self._complete_migrate_out(child, peer, payload)
            ),
        )

    def _complete_migrate_out(self, child: VpeObject, peer: int, payload):
        """Source-side hand-off once the target kernel answered an
        ``ik_migrate_in``: drop ownership, leave a proxy pointing the
        other way, and forward parked waits to the new owner."""
        if payload[0] != "ok":
            return payload
        new_id, new_node = payload[1]
        old_id = child.id
        self.vpes.pop(old_id, None)
        self.envs.pop(old_id, None)
        if self.ctxsw.resident.get(child.node) is child:
            self.ctxsw.resident[child.node] = None
        self._migrated_out[old_id] = (peer, new_id)
        self.migrations_out += 1
        proxy = RemoteVpeObject(remote_id=new_id, kernel_id=peer,
                                name=child.name, node=new_node)
        proxy.state = VpeState.RUNNING
        # Every local VPE capability naming the child now names the
        # proxy: the relationship swapped direction — the VPE used to
        # be ours, now we hold it remotely.
        for owner_id in sorted(self.vpes):
            for cap in self.vpes[owner_id].captable.caps():
                if (cap.table is not None and cap.kind == CapKind.VPE
                        and cap.obj is child):
                    cap.obj = proxy
        # Parked local waits follow the VPE as cross-domain waits; the
        # proxy's cached state tracks the forwarded verdict exactly
        # like _sys_vpe_wait's remote branch.
        for waiter_vpe, wait_slot in child.waiters:
            self._forward_wait(
                peer, new_id, proxy,
                lambda p, w=waiter_vpe, s=wait_slot: self._reply(w, s, p),
            )
        child.waiters = []
        # Waits parked here on behalf of third domains are re-parked at
        # the new owner; the eventual verdict passes straight through.
        for ik_slot in child.remote_waiters:
            self._ik_request(
                peer, "vpe_wait", (new_id,),
                lambda p, s=ik_slot: self._ik_reply(s, p),
                no_timeout=True,
            )
        child.remote_waiters = []
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.migrations_out")
            self.sim.obs.instant("migrate_out", "migrate", child.node,
                                 vpe=old_id, peer=peer, target=new_node)
        self.sim.ledger.mark(
            self.sim.now, Tag.OS,
            f"{self.label} migrates VPE #{old_id} ({child.name}) out to "
            f"kernel {peer} node {new_node}",
        )
        return ("ok", (new_id, new_node))

    def _forward_wait(self, peer: int, remote_id: int, proxy, reply) -> None:
        """Re-issue a parked VPE_WAIT against the VPE's new owner,
        keeping the proxy's cached state in sync with the verdict."""

        def completion(payload):
            proxy.state = VpeState.DEAD
            if payload[0] == "ok":
                proxy.exit_code = payload[1]
            else:
                proxy.exit_code = ("failed", payload[1])
                self._revoke_foreign_for_node(proxy.node)
            reply(payload)

        self._ik_request(peer, "vpe_wait", (remote_id,), completion,
                         no_timeout=True)

    def migrate_vpe_cross(self, child: VpeObject, peer: int):
        """Generator (control-plane processes only — never the kernel
        loop): live-migrate ``child`` into peer domain ``peer`` and
        return ``(new_id, new_node)``.  The autoscaler and tests drive
        cross-domain migration through this entry point."""
        if peer == self.kernel_id or peer not in self.peers:
            raise SyscallError(f"no peer kernel domain {peer}")
        if isinstance(child, RemoteVpeObject):
            raise SyscallError("cannot live-migrate a remote VPE")
        if not child.resident or child.state != VpeState.RUNNING:
            raise SyscallError(
                f"VPE {child.name!r} is not resident and running"
            )
        descriptor = yield from self._migration_descriptor(child)
        done = self.sim.event(f"{self.label}.migrate-out.v{child.id}")
        self._migrate_out(peer, child, descriptor,
                          lambda payload: done.succeed(payload))
        payload = yield done
        if payload[0] != "ok":
            raise SyscallError(payload[1])
        return payload[1]

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def run(self):
        """Generator: the kernel main loop (runs forever on the kernel PE).

        The loop is strictly event-driven and never blocks on a single
        peer: it serves syscall messages *and* service replies (session
        negotiations, Section 4.5.3), so a service doing a syscall while
        the kernel negotiates with it cannot deadlock the system.
        """
        from repro.sim.events import first_of

        if not self._booted:
            yield from self.boot()
        while True:
            progressed = False
            fetched = self.dtu.fetch_message(KERNEL_SYSCALL_EP)
            if fetched is not None:
                yield from self._handle_syscall(*fetched)
                progressed = True
            fetched = self.dtu.fetch_message(KERNEL_REPLY_EP)
            if fetched is not None:
                yield from self._handle_service_reply(*fetched)
                progressed = True
            if self.peers:
                fetched = self.dtu.fetch_message(KERNEL_IK_EP)
                if fetched is not None:
                    yield from self._handle_ik_request(*fetched)
                    progressed = True
            if not progressed:
                waits = [
                    self.dtu.signal(KERNEL_SYSCALL_EP).wait(),
                    self.dtu.signal(KERNEL_REPLY_EP).wait(),
                ]
                if self.peers:
                    waits.append(self.dtu.signal(KERNEL_IK_EP).wait())
                yield first_of(self.sim, *waits)

    def _handle_syscall(self, slot: int, message):
        """Generator: dispatch one syscall message and reply."""
        self.syscall_count += 1
        obs = self.sim.obs
        started = self.sim.now
        vpe = self.vpes.get(message.label)
        # The opcode is parsed up front (a pure read) so the kernel
        # span carries it from the start; the span adopts the client's
        # trace context from the message header, linking the kernel's
        # work — and every send/config it performs — to the request.
        opcode, args = message.payload
        span = -1
        if obs is not None:
            if self.peers:
                obs.count(f"kernel{self.kernel_id}.syscalls")
            span = obs.begin(
                opcode, "syscall", self.node,
                parent=header_context(message.header),
                vpe=-1 if vpe is None else vpe.id,
            )
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        if vpe is None:
            self.dtu.ack_message(KERNEL_SYSCALL_EP, slot)
            if obs is not None:
                obs.end(span, status="no-vpe")
            return
        handler = getattr(self, f"_sys_{opcode}", None)
        try:
            if handler is None:
                raise SyscallError(f"unknown syscall {opcode!r}")
            result = yield from handler(vpe, slot, *args)
        except (SyscallError, KeyError, ValueError, TypeError) as exc:
            result = None
            reply = ("err", str(exc))
        else:
            if result is NO_REPLY:
                if obs is not None:
                    obs.observe("kernel.syscall_cycles", self.sim.now - started)
                    obs.end(span, phase="deferred")
                return
            reply = ("ok", result)
        yield self.sim.delay(params.M3_KERNEL_REPLY_CYCLES, tag=Tag.OS)
        yield self.dtu.reply(KERNEL_SYSCALL_EP, slot, reply, SYSCALL_MSG_BYTES)
        if obs is not None:
            obs.observe("kernel.syscall_cycles", self.sim.now - started)
            obs.end(span, status=reply[0])

    def _reply(self, vpe: VpeObject, slot: int, payload) -> None:
        """Late reply to a deferred syscall (fire-and-forget).

        The waiter may have *migrated* since it sent the syscall; the
        stored reply information is retargeted to its current node
        first (the kernel's bookkeeping of where each VPE lives).
        """
        self._retarget_parked_message(vpe, slot)
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        self.dtu.reply(KERNEL_SYSCALL_EP, slot, payload, SYSCALL_MSG_BYTES)

    def _retarget_parked_message(self, vpe: VpeObject, slot: int) -> None:
        import dataclasses

        ring = self.dtu.ringbuffer(KERNEL_SYSCALL_EP)
        message = ring.peek(slot)
        if message.header.reply_node == vpe.node:
            return
        header = dataclasses.replace(
            message.header, reply_node=vpe.node, reply_ep=APP_REPLY_EP
        )
        ring._slots[slot] = dataclasses.replace(message, header=header)

    # ------------------------------------------------------------------
    # Syscall handlers.  Each is a generator taking (vpe, slot, *args).
    # ------------------------------------------------------------------

    def _sys_noop(self, vpe, slot):
        return ()
        yield  # pragma: no cover - makes this a generator

    def _sys_create_vpe(self, vpe, slot, name, pe_type):
        try:
            child = yield from self.create_vpe(name, pe_type, creator=vpe)
        except SyscallError:
            if not self.peers:
                raise
            # Domain full: spill the VPE to a (live) peer kernel's domain.
            self._spill_create_vpe(vpe, slot, name, pe_type,
                                   self._live_peers(), 0)
            return NO_REPLY
        # Give the *parent* a capability for the child VPE and its SPM.
        child_vpe_cap = child.captable.get(0)
        child_spm_cap = child.captable.get(1)
        vpe_sel = vpe.captable.insert(child_vpe_cap.derive())
        spm_sel = vpe.captable.insert(child_spm_cap.derive())
        return (vpe_sel, spm_sel, child.id)

    def _spill_create_vpe(self, vpe, slot, name, pe_type, candidates,
                          index) -> None:
        """Ask peer kernels (in id order) to host a VPE this domain has
        no free PE for; the parent holds the child through a
        :class:`RemoteVpeObject` capability."""
        if index >= len(candidates):
            self._reply(vpe, slot, (
                "err",
                f"no free PE of type {pe_type or 'any'} for VPE {name!r}",
            ))
            return
        peer = candidates[index]

        def completion(payload):
            status, detail = payload
            if status != "ok":
                self._spill_create_vpe(vpe, slot, name, pe_type,
                                       candidates, index + 1)
                return
            child_id, node, spm_size = detail
            child = RemoteVpeObject(remote_id=child_id, kernel_id=peer,
                                    name=name, node=node)
            vpe_sel = vpe.captable.insert(Capability(CapKind.VPE, child))
            spm_cap = Capability(
                CapKind.MEM, MemObject(node, 0, spm_size, MemoryPerm.RW)
            )
            spm_cap.foreign = True
            spm_sel = vpe.captable.insert(spm_cap)
            self._reply(vpe, slot, ("ok", (vpe_sel, spm_sel, child_id)))

        self._ik_request(peer, "create_vpe", (name, pe_type), completion)

    def _sys_vpe_start(self, vpe, slot, vpe_sel, entry, args):
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):

            def completion(payload):
                if payload[0] == "ok":
                    child.state = VpeState.RUNNING
                self._reply(vpe, slot, payload)

            self._ik_request(child.kernel_id, "vpe_start",
                             (child.remote_id, entry, tuple(args)),
                             completion)
            return NO_REPLY
        self.start_vpe(child, entry, tuple(args))
        return ()
        yield  # pragma: no cover

    def _sys_vpe_wait(self, vpe, slot, vpe_sel):
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):
            if child.state == VpeState.DEAD:
                return child.exit_code

            def completion(payload):
                if payload[0] == "ok":
                    child.state = VpeState.DEAD
                    child.exit_code = payload[1]
                else:
                    # The child is gone or unreachable (killed remotely,
                    # or its whole domain failed): the proxy must not
                    # stay RUNNING forever, and local endpoints built
                    # from its foreign grants are dead hardware now.
                    child.state = VpeState.DEAD
                    child.exit_code = ("failed", payload[1])
                    self._revoke_foreign_for_node(child.node)
                self._reply(vpe, slot, payload)

            self._ik_request(child.kernel_id, "vpe_wait",
                             (child.remote_id,), completion,
                             no_timeout=True)
            return NO_REPLY
        if child.state == VpeState.DEAD:
            return child.exit_code
        child.waiters.append((vpe, slot))
        return NO_REPLY
        yield  # pragma: no cover

    def _sys_vpe_migrate(self, vpe, slot, vpe_sel):
        """Migrate a suspended/queued VPE (the caller must hold its
        capability) to a free PE; returns the new node."""
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if child.resident and child.state == VpeState.RUNNING:
            raise SyscallError(
                f"VPE {child.name!r} is running; only suspended or queued "
                "VPEs can migrate"
            )
        target = self.platform.find_free_pe(nodes=self.domain)
        if target is None or target.node == self.node:
            raise SyscallError("no free PE to migrate to")
        try:
            self.ctxsw.migrate(child, target)
        except ValueError as exc:
            raise SyscallError(str(exc)) from None
        return target.node
        yield  # pragma: no cover

    def _sys_vpe_wait_yield(self, vpe, slot, vpe_sel):
        """Wait for a VPE *and* offer the caller's PE for reuse —
        Section 3.3's "inform the kernel about a potentially reusable
        core"."""
        if not self.multiplexing:
            return (yield from self._sys_vpe_wait(vpe, slot, vpe_sel))
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):
            # A spilled child's PE belongs to the peer's domain; plain
            # cross-domain wait, nothing to yield locally.
            return (yield from self._sys_vpe_wait(vpe, slot, vpe_sel))
        return (yield from self.ctxsw.wait_yield(vpe, slot, child))

    def _sys_exit(self, vpe, slot, exit_code):
        self.dtu.ack_message(KERNEL_SYSCALL_EP, slot)
        self.vpe_exited(vpe, exit_code)
        return NO_REPLY
        yield  # pragma: no cover

    def _sys_request_mem(self, vpe, slot, size, perm_value):
        address = self.memory.allocate(size)
        obj = MemObject(
            self.platform.dram_node, address, size, MemoryPerm(perm_value)
        )
        return vpe.captable.insert(Capability(CapKind.MEM, obj))
        yield  # pragma: no cover

    def _sys_derive_mem(self, vpe, slot, mem_sel, offset, size, perm_value):
        parent_cap = vpe.captable.get(mem_sel, CapKind.MEM)
        derived = parent_cap.obj.slice(offset, size, MemoryPerm(perm_value))
        return vpe.captable.insert(parent_cap.derive(derived))
        yield  # pragma: no cover

    def _sys_create_rgate(self, vpe, slot, slot_size, slot_count):
        obj = RecvGateObject(slot_size=slot_size, slot_count=slot_count)
        return vpe.captable.insert(Capability(CapKind.RECV, obj))
        yield  # pragma: no cover

    def _sys_create_sgate(self, vpe, slot, rgate_sel, label, credits):
        rgate_cap = vpe.captable.get(rgate_sel, CapKind.RECV)
        obj = SendGateObject(rgate_cap.obj, label, credits)
        return vpe.captable.insert(rgate_cap.derive(obj, kind=CapKind.SEND))
        yield  # pragma: no cover

    def _sys_activate(self, vpe, slot, ep_index, cap_sel):
        if not (0 <= ep_index < len(vpe.pe.dtu.eps)):
            raise SyscallError(f"endpoint {ep_index} out of range")
        if cap_sel < 0:
            yield from self.dtu.configure_remote(vpe.node, "invalidate", ep_index)
            return ()
        cap = vpe.captable.get(cap_sel)
        if cap.kind == CapKind.RECV:
            if cap.obj.owner is not None and cap.obj.owner is not vpe:
                raise SyscallError(
                    "an active receive gate cannot move to another VPE"
                )
            cap.obj.owner = vpe
        elif cap.kind == CapKind.SEND and not cap.obj.target.active:
            # Defer until the receiver is ready (Section 4.5.4).
            cap.obj.target.pending_activations.append(
                (vpe, slot, ep_index, cap)
            )
            return NO_REPLY
        registers = self._registers_for(cap)
        yield from self.dtu.configure_remote(
            vpe.node, "configure", ep_index, registers
        )
        self._bind_ep(vpe, ep_index, cap)
        if cap.kind == CapKind.RECV:
            cap.obj.ep_index = ep_index
            self._flush_pending_activations(cap.obj)
        return ()

    def _bind_ep(self, vpe, ep_index: int, cap: Capability) -> None:
        """Record that ``cap`` now occupies (vpe, ep); unbind the previous
        occupant so revocation only invalidates live configurations."""
        key = (vpe.id, ep_index)
        previous = self._ep_bindings.get(key)
        if previous is not None:
            previous.bound_eps.discard(key)
        self._ep_bindings[key] = cap
        cap.bound_eps.add(key)

    def _flush_pending_activations(self, rgate: RecvGateObject) -> None:
        """Complete send-gate activations deferred on ``rgate``."""
        pending, rgate.pending_activations = rgate.pending_activations, []
        for waiter_vpe, slot, ep_index, cap in pending:

            def completion(waiter_vpe=waiter_vpe, slot=slot,
                           ep_index=ep_index, cap=cap):
                registers = self._registers_for(cap)
                yield from self.dtu.configure_remote(
                    waiter_vpe.node, "configure", ep_index, registers
                )
                self._bind_ep(waiter_vpe, ep_index, cap)
                self._reply(waiter_vpe, slot, ("ok", ()))

            self.sim.process(completion(), "kernel.deferred-activate")

    def _registers_for(self, cap: Capability) -> EndpointRegisters:
        if cap.kind == CapKind.SEND:
            gate: SendGateObject = cap.obj
            if gate.target.ep_index is None:
                raise SyscallError("target receive gate is not activated")
            return EndpointRegisters.send_config(
                target_node=gate.target.node,
                target_ep=gate.target.ep_index,
                label=gate.label,
                credits=gate.credits,
                msg_size=gate.target.slot_size,
            )
        if cap.kind == CapKind.RECV:
            gate: RecvGateObject = cap.obj
            return EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=gate.slot_size,
                slot_count=gate.slot_count,
            )
        if cap.kind == CapKind.MEM:
            region: MemObject = cap.obj
            return EndpointRegisters.memory_config(
                region.node, region.address, region.size, region.perm
            )
        raise SyscallError(f"cannot activate a {cap.kind.value} capability")

    def _sys_delegate(self, vpe, slot, vpe_sel, src_sel):
        target = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        source_cap = vpe.captable.get(src_sel)
        if isinstance(target, RemoteVpeObject):
            if source_cap.kind != CapKind.MEM:
                raise SyscallError(
                    "only memory capabilities can be delegated across "
                    "kernel domains"
                )
            region: MemObject = source_cap.obj

            def completion(payload):
                self._reply(vpe, slot, payload)

            self._ik_request(
                target.kernel_id, "delegate_mem",
                (target.remote_id, region.node, region.address,
                 region.size, region.perm.value),
                completion,
            )
            return NO_REPLY
        if source_cap.kind == CapKind.RECV and source_cap.obj.active:
            # "the kernel only allows to delegate/obtain send and memory
            # capabilities, but not receive capabilities" once active
            # (Section 4.5.4); inactive receive gates are still movable.
            raise SyscallError("active receive capabilities cannot be delegated")
        return target.captable.insert(source_cap.derive())
        yield  # pragma: no cover

    def _sys_revoke(self, vpe, slot, src_sel):
        cap = vpe.captable.get(src_sel)
        removed = revoke(cap)
        for victim in removed:
            yield from self._teardown(victim)
        return len(removed)

    def _teardown(self, cap: Capability):
        """Generator: undo hardware/software state behind a revoked cap."""
        # Invalidate every endpoint this capability is configured on —
        # revocation must cut hardware access, not just bookkeeping.
        for vpe_id, ep_index in sorted(cap.bound_eps):
            self._ep_bindings.pop((vpe_id, ep_index), None)
            holder = self.vpes.get(vpe_id)
            if holder is not None and holder.state != VpeState.DEAD:
                yield from self.dtu.configure_remote(
                    holder.node, "invalidate", ep_index
                )
        cap.bound_eps.clear()
        if cap.kind == CapKind.RECV and cap.obj.ep_index is not None:
            cap.obj.ep_index = None
        elif cap.kind == CapKind.VPE:
            vpe = cap.obj
            if isinstance(vpe, RemoteVpeObject):
                # Best-effort kill in the owning domain; the local proxy
                # is marked dead immediately.
                if vpe.state != VpeState.DEAD:
                    self._ik_request(vpe.kernel_id, "vpe_revoke",
                                     (vpe.remote_id,), lambda payload: None)
                    vpe.state = VpeState.DEAD
            elif vpe.state != VpeState.DEAD:
                # "the owner of the VPE capability could revoke it to let
                # the kernel reset the associated PE" (Section 4.5.5).
                occupant = vpe.pe.occupant
                if occupant is not None and occupant.alive:
                    occupant.interrupt("vpe-revoked")
                self.vpe_exited(vpe, None)
        elif cap.kind == CapKind.MEM and cap.parent is None and not cap.foreign:
            region: MemObject = cap.obj
            if region.node == self.platform.dram_node:
                self.memory.free(region.address, region.size)

    def _sys_create_srv(self, vpe, slot, name, rgate_sel):
        if name in self.services:
            raise SyscallError(f"service {name!r} already registered")
        rgate_cap = vpe.captable.get(rgate_sel, CapKind.RECV)
        if rgate_cap.obj.ep_index is None:
            raise SyscallError("service receive gate must be activated first")
        service = ServiceObject(name=name, rgate=rgate_cap.obj, owner=vpe)
        self.services[name] = service
        # The kernel<->service channel, "created at service registration"
        # (Section 4.5.3): a send endpoint on the kernel's own DTU.
        ep_index = self._next_service_ep
        if ep_index >= len(self.dtu.eps):
            raise SyscallError("kernel is out of service endpoints")
        self._next_service_ep += 1
        self._service_eps[name] = ep_index
        self.dtu.configure_local(
            "configure",
            ep_index,
            EndpointRegisters.send_config(
                target_node=service.rgate.node,
                target_ep=service.rgate.ep_index,
                label=0,  # label 0 marks the kernel to the service
                credits=service.rgate.slot_count,
                msg_size=service.rgate.slot_size,
            ),
        )
        return vpe.captable.insert(
            rgate_cap.derive(service, kind=CapKind.SERVICE)
        )
        yield  # pragma: no cover

    # -- the session router (replicated service tiers) -------------------

    def register_route(self, name: str, replicas,
                       policy: str = "rr") -> None:
        """Route ``open_session(name)`` across service replicas.

        ``replicas`` is an ordered sequence of ``(service_name,
        kernel_id)`` pairs — the concrete instances of a replicated
        service and the kernel domains hosting them.  Every kernel in
        the system registers the same route (see
        :meth:`M3System.register_service_route`), so each balances its
        own clients; remote replicas are reached through the existing
        inter-kernel ``srv_open`` path.

        ``policy`` selects the balancing strategy: ``"rr"`` (classic
        round-robin, the default) or ``"depth"`` (least queue depth
        with round-robin tiebreak, fed by the depth piggyback on
        inter-kernel traffic).  Re-registering an existing route —
        the autoscaler growing or shrinking the replica set — keeps
        the cursor, so surviving replicas keep their rotation slot.
        """
        if policy not in ("rr", "depth"):
            raise ValueError(f"unknown route policy {policy!r}")
        replicas = tuple(replicas)
        if not replicas:
            raise ValueError(f"route {name!r} needs at least one replica")
        for replica, owner in replicas:
            if replica == name:
                raise ValueError(
                    f"route {name!r} cannot contain itself as a replica"
                )
            if owner != self.kernel_id and owner not in self.peers:
                raise ValueError(f"route {name!r}: unknown domain {owner}")
        self.service_routes[name] = replicas
        self._route_cursor.setdefault(name, 0)
        self._route_policy[name] = policy
        if policy == "depth":
            self._gossip_depths = True

    def _resolve_route(self, name: str) -> str:
        """Logical name -> next live replica; a name with no route
        resolves to itself.

        ``"rr"`` routes rotate a cursor over the live replicas;
        ``"depth"`` routes pick the smallest known queue depth among
        them, breaking ties in cursor order (so equal-depth replicas
        still rotate).  When every replica's domain is dead the router
        fails fast with a deterministic error instead of handing a
        stale name to the remote-session probe.
        """
        replicas = self.service_routes.get(name)
        if not replicas:
            return name
        cursor = self._route_cursor[name]
        if self._route_policy.get(name) == "depth":
            best = None
            best_offset = None
            for offset in range(len(replicas)):
                replica, owner = replicas[(cursor + offset) % len(replicas)]
                if owner != self.kernel_id and owner in self.dead_peers:
                    continue
                depth = self._routed_depth(replica, owner)
                if best is None or depth < best[1]:
                    best = (replica, depth)
                    best_offset = offset
            if best is not None:
                self._route_cursor[name] = \
                    (cursor + best_offset + 1) % len(replicas)
                self.route_counts[best[0]] = \
                    self.route_counts.get(best[0], 0) + 1
                return best[0]
        else:
            for offset in range(len(replicas)):
                replica, owner = replicas[(cursor + offset) % len(replicas)]
                if owner == self.kernel_id or owner not in self.dead_peers:
                    self._route_cursor[name] = \
                        (cursor + offset + 1) % len(replicas)
                    self.route_counts[replica] = \
                        self.route_counts.get(replica, 0) + 1
                    return replica
        # Every replica domain is dead.  Fail fast and deterministically
        # — the cursor and route_counts stay untouched, so accounting
        # still matches the sessions actually dispatched, and no stale
        # replica name is handed to the remote-session probe toward a
        # domain failover already declared dead.
        if self.sim.obs is not None and self.sim.obs.flight is not None:
            self.sim.obs.flight.dump(
                f"kernel{self.kernel_id}: no live replica for route "
                f"{name!r}",
                domain=self.kernel_id,
            )
        raise SyscallError(f"no live replica for route {name!r}")

    # -- queue-depth telemetry (piggybacked on inter-kernel traffic) -----

    def _local_depth(self, replica: str) -> int:
        """Queue depth of a locally-owned replica: unserved messages in
        its service inbox (the receive ring the kernel configured for
        it) plus session negotiations still in flight toward it."""
        service = self.services.get(replica)
        if service is None:
            return 0
        rgate = service.rgate
        ring = self.platform.pe(rgate.node).dtu._ringbufs.get(rgate.ep_index)
        depth = ring.occupied if ring is not None else 0
        for pending in self._pending_sessions.values():
            if service in pending:
                depth += 1
        return depth

    def _routed_depth(self, replica: str, owner: int) -> int:
        """Best known queue depth of a routed replica: measured directly
        when this kernel owns it, else the freshest gossiped value (a
        replica never heard about counts as idle)."""
        if owner == self.kernel_id:
            return self._local_depth(replica)
        known = self.replica_depths.get(replica)
        return known[1] if known is not None else 0

    def _ik_rider(self):
        """The depth piggyback for an outgoing inter-kernel message:
        fresh samples for locally-owned routed replicas merged over the
        newest relayed knowledge, as sorted ``(name, stamp, depth)``
        rows.  ``None`` (the common case) keeps the wire payload
        byte-identical to the pre-elastic two-tuple."""
        if not self._gossip_depths:
            return None
        view = dict(self.replica_depths)
        for replicas in self.service_routes.values():
            for replica, owner in replicas:
                if owner == self.kernel_id and replica in self.services:
                    view[replica] = (self.sim.now, self._local_depth(replica))
        if not view:
            return None
        return tuple(sorted(
            (name, stamp, depth) for name, (stamp, depth) in view.items()
        ))

    def _absorb_rider(self, rider) -> None:
        """Merge a peer's depth piggyback; newest stamp per replica
        wins, so relayed third-party knowledge cannot roll back a
        fresher direct sample."""
        self._gossip_depths = True
        for name, stamp, depth in rider:
            known = self.replica_depths.get(name)
            if known is None or stamp > known[0]:
                self.replica_depths[name] = (stamp, depth)

    def _sys_open_session(self, vpe, slot, name):
        name = self._resolve_route(name)
        service = self.services.get(name)
        if service is None:
            if self.peers:
                # Remote service lookup: the name may be registered with
                # a peer kernel's domain.
                self._open_remote_session(vpe, slot, name)
                return NO_REPLY
            raise SyscallError(f"no service {name!r}")
        session_id = service.next_session_id()
        # Negotiate with the service over the kernel<->service channel;
        # the reply (labelled with the negotiation id) completes the
        # session asynchronously — the kernel loop must stay responsive
        # because the service may be blocked in a syscall of its own.
        negotiation = next(self._negotiation_ids)
        self._pending_sessions[negotiation] = (
            "local", vpe, slot, service, session_id
        )
        yield self.dtu.send(
            self._service_eps[name],
            ("open_session", (session_id, vpe.id)),
            SYSCALL_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )
        return NO_REPLY

    def _handle_service_reply(self, slot, message):
        """Generator: complete a parked negotiation — a session being
        opened with a local service, or an inter-kernel request this
        kernel sent to a peer."""
        obs = self.sim.obs
        self.dtu.ack_message(KERNEL_REPLY_EP, slot)
        continuation = self._ik_pending.pop(message.label, None)
        if continuation is not None:
            outstanding = self._ik_outstanding.pop(message.label, None)
            if outstanding is not None:
                # The RPC is answered: disarm the retry timer at once
                # (an uncancelled timer would also drag sim.now out) and
                # reconcile the credits spent on retransmits — kernel-
                # level duplicates are acked, not replied to, so they
                # never refill the peer send endpoint on their own.
                if outstanding["timer"] is not None:
                    self.sim.cancel(outstanding["timer"])
                self._refund_ik_credits(outstanding, outstanding["extra_sends"])
            # A peer kernel answered an inter-kernel request: the
            # continuation runs as a child of the peer's reply message,
            # so the cross-domain hop stays on the causal chain.
            span = -1
            if obs is not None:
                span = obs.begin("ik_reply", "ik", self.node,
                                 parent=header_context(message.header))
            yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
            try:
                continuation(message.payload)
            finally:
                if obs is not None:
                    obs.end(span)
            return
        pending = self._pending_sessions.pop(message.label, None)
        if pending is None:
            return
        span = -1
        if obs is not None:
            # Finishing a parked session negotiation: on behalf of a
            # peer domain ("remote" — inter-kernel work) or of a local
            # client's open_session syscall.
            name, category = (
                ("srv_open.finish", "ik") if pending[0] == "remote"
                else ("open_session.finish", "syscall")
            )
            span = obs.begin(name, category, self.node,
                             parent=header_context(message.header))
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        try:
            self._finish_pending_session(pending, message)
        finally:
            if obs is not None:
                obs.end(span)

    def _finish_pending_session(self, pending, message) -> None:
        """Complete one parked session negotiation (service replied)."""
        status, _detail = message.payload
        if pending[0] == "remote":
            # A session negotiated on behalf of a peer kernel's client:
            # answer over the inter-kernel channel with the service
            # gate's location so the peer can build the send gate.
            _kind, ik_slot, service, session_id, client_kernel, client_vpe \
                = pending
            if status != "ok":
                self._ik_reply(ik_slot, (
                    "err", f"service {service.name!r} denied the session"
                ))
                return
            service.sessions[session_id] = RemoteClientRef(
                kernel_id=client_kernel, vpe_id=client_vpe
            )
            rgate = service.rgate
            self._ik_reply(ik_slot, (
                "ok",
                (session_id, rgate.node, rgate.ep_index, rgate.slot_size),
            ))
            return
        _kind, vpe, syscall_slot, service, session_id = pending
        if status != "ok":
            self._reply(
                vpe, syscall_slot,
                ("err", f"service {service.name!r} denied the session"),
            )
            return
        session = SessionObject(service=service, label=session_id, client=vpe)
        session_sel = vpe.captable.insert(Capability(CapKind.SESSION, session))
        sgate = SendGateObject(
            target=service.rgate, label=session_id, credits=2
        )
        sgate_sel = vpe.captable.insert(Capability(CapKind.SEND, sgate))
        service.sessions[session_id] = vpe
        self._reply(vpe, syscall_slot, ("ok", (session_sel, sgate_sel)))

    def _open_remote_session(self, vpe, slot, name: str) -> None:
        """Probe peer kernels for service ``name``, cached owner first,
        then in kernel-id order, until one accepts the session.  Dead
        peers are skipped — failover purges their cache entries, so a
        replica registered with a surviving domain takes over."""
        candidates = self._live_peers()
        cached = self._remote_services.get(name)
        if cached is not None and cached in candidates:
            candidates.remove(cached)
            candidates.insert(0, cached)
        self._probe_remote_service(vpe, slot, name, candidates, 0)

    def _probe_remote_service(self, vpe, slot, name, candidates,
                              index) -> None:
        if index >= len(candidates):
            self._remote_services.pop(name, None)
            self._reply(vpe, slot, ("err", f"no service {name!r}"))
            return
        peer = candidates[index]

        def completion(payload):
            status, detail = payload
            if status != "ok":
                self._probe_remote_service(vpe, slot, name, candidates,
                                           index + 1)
                return
            session_id, rgate_node, rgate_ep, slot_size = detail
            self._remote_services[name] = peer
            stub = RemoteGateStub(node=rgate_node, ep_index=rgate_ep,
                                  slot_size=slot_size)
            session = SessionObject(
                service=RemoteServiceRef(name=name, kernel_id=peer),
                label=session_id, client=vpe,
            )
            session_sel = vpe.captable.insert(
                Capability(CapKind.SESSION, session)
            )
            sgate = SendGateObject(target=stub, label=session_id, credits=2)
            sgate_sel = vpe.captable.insert(Capability(CapKind.SEND, sgate))
            self._reply(vpe, slot, ("ok", (session_sel, sgate_sel)))

        self._ik_request(peer, "srv_open", (name, vpe.id), completion)

    def _sys_srv_delegate(self, vpe, slot, service_sel, session_id,
                          src_mem_sel, offset, size, perm_value):
        service_cap = vpe.captable.get(service_sel, CapKind.SERVICE)
        service: ServiceObject = service_cap.obj
        client = service.sessions.get(session_id)
        if client is None:
            raise SyscallError(f"no session {session_id} at {service.name!r}")
        source_cap = vpe.captable.get(src_mem_sel, CapKind.MEM)
        derived = source_cap.obj.slice(offset, size, MemoryPerm(perm_value))
        if isinstance(client, RemoteClientRef):
            # The client lives in a peer domain: forward the derived
            # region's descriptor; the peer installs a foreign cap and
            # replies with the client-side selector.
            def completion(payload):
                self._reply(vpe, slot, payload)

            self._ik_request(
                client.kernel_id, "delegate_mem",
                (client.vpe_id, derived.node, derived.address,
                 derived.size, derived.perm.value),
                completion,
            )
            return NO_REPLY
        return client.captable.insert(source_cap.derive(derived))
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Inter-kernel protocol (multi-kernel layouts only).  Requests ride
    # ordinary DTU messages between kernel send gates; replies come back
    # on the standard reply endpoint, labelled with a negotiation id
    # like a session negotiation (see docs/protocols.md).
    # ------------------------------------------------------------------

    def _ik_request(self, peer: int, operation: str, args: tuple,
                    continuation, no_timeout: bool = False,
                    timeout_base: int | None = None,
                    max_attempts: int | None = None) -> None:
        """Send ``(operation, args)`` to a peer kernel; ``continuation``
        is a plain (non-blocking) callable run with the peer's reply
        payload, so the kernel loop never waits on a peer.

        On a reliable DTU the request becomes an idempotent RPC: the
        negotiation id doubles as the kernel-level sequence number (it
        rides every copy as the reply label), a per-request timer
        retransmits the *same* id with capped exponential backoff, and
        a request that stays unanswered through ``max_attempts`` is
        completed with an explicit ``("timeout", ...)`` verdict instead
        of hanging forever.  ``no_timeout`` requests — cross-domain
        waits, which legitimately stay open arbitrarily long — re-poll
        at the capped interval (the peer's reply cache absorbs the
        duplicates) and are only failed by peer-death failover.  On a
        best-effort DTU nothing is armed and the path is cycle-
        identical to the fire-and-forget protocol.
        """
        if peer in self.dead_peers:
            # Fast-fail instead of waiting out a timeout against a peer
            # failover already declared dead.
            self.sim.call_soon(
                lambda _: continuation(
                    ("err", f"kernel domain {peer} failed")
                )
            )
            return
        negotiation = next(self._negotiation_ids)
        self._ik_pending[negotiation] = continuation
        self.ik_requests_sent += 1
        if self.sim.obs is not None:
            self.sim.obs.count(f"kernel{self.kernel_id}.ik_requests")
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        rider = self._ik_rider()
        done = self.dtu.send(
            self.peers[peer],
            (operation, args) if rider is None
            else (operation, args, rider),
            IK_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )
        if not self.dtu._reliable:
            return
        entry = {
            "peer": peer,
            "operation": operation,
            "args": args,
            "attempts": 1,
            "timer": None,
            "no_timeout": no_timeout,
            "base": timeout_base or params.IK_RPC_TIMEOUT_CYCLES,
            "max_attempts": max_attempts or params.IK_RPC_MAX_ATTEMPTS,
            "extra_sends": 0,
        }
        self._ik_outstanding[negotiation] = entry
        self._arm_ik_timer(negotiation, entry)
        done.add_callback(
            lambda event: self._ik_send_failed(negotiation, event)
        )

    def _ik_backoff(self, entry: dict) -> int:
        """The retry interval before attempt ``attempts + 1``: capped
        exponential backoff in pure integer arithmetic, so the schedule
        is exact and bit-identical across runs."""
        timeout = entry["base"] * (
            params.IK_RPC_BACKOFF ** (entry["attempts"] - 1)
        )
        return min(timeout, params.IK_RPC_TIMEOUT_CAP_CYCLES)

    def _arm_ik_timer(self, negotiation: int, entry: dict) -> None:
        entry["timer"] = self.sim.schedule(
            self._ik_backoff(entry),
            lambda _: self._ik_timer_fired(negotiation),
        )

    def _ik_send_failed(self, negotiation: int, event) -> None:
        """The DTU gave up on a copy of an outstanding RPC (the peer's
        hardware never acked — dead node or partitioned NoC): move the
        RPC forward immediately instead of waiting out its timer."""
        if event.ok or negotiation not in self._ik_outstanding:
            return
        self._ik_timer_fired(negotiation)

    def _ik_timer_fired(self, negotiation: int) -> None:
        """An outstanding RPC went unanswered for its backoff interval:
        retransmit it under the same negotiation id (the peer's dedup
        absorbs duplicates), or complete it with a timeout verdict."""
        entry = self._ik_outstanding.get(negotiation)
        if entry is None:
            return  # answered in the meantime
        if entry["timer"] is not None:
            self.sim.cancel(entry["timer"])
            entry["timer"] = None
        if self.pe.failed:
            # This kernel's own PE was killed: its RPCs die with it
            # (peers detect the death via their heartbeats).
            self._ik_outstanding.pop(negotiation, None)
            return
        peer = entry["peer"]
        if peer in self.dead_peers:
            return  # failover errs the continuation; nothing to retry to
        if not entry["no_timeout"] and entry["attempts"] >= entry["max_attempts"]:
            self._ik_outstanding.pop(negotiation, None)
            continuation = self._ik_pending.pop(negotiation, None)
            self.ik_timeouts += 1
            if self.sim.obs is not None:
                self.sim.obs.count(f"kernel{self.kernel_id}.ik_timeouts")
            self.sim.ledger.mark(
                self.sim.now, Tag.FAULT,
                f"{self.label}: ik {entry['operation']} to kernel {peer} "
                f"timed out after {entry['attempts']} attempts",
            )
            # No reply will ever refund these credits.
            self._refund_ik_credits(entry, entry["attempts"])
            if continuation is not None:
                continuation((
                    "timeout",
                    f"inter-kernel {entry['operation']} to kernel {peer} "
                    f"got no reply after {entry['attempts']} attempts",
                ))
            return
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        rider = self._ik_rider()
        try:
            done = self.dtu.send(
                self.peers[peer],
                (entry["operation"], entry["args"]) if rider is None
                else (entry["operation"], entry["args"], rider),
                IK_MSG_BYTES,
                reply_ep=KERNEL_REPLY_EP,
                reply_label=negotiation,
            )
        except MissingCredits:
            # Out of credits mid-burst: re-check after the base interval
            # without burning an attempt (credits come back with any
            # outstanding reply or reconciliation).
            entry["timer"] = self.sim.schedule(
                entry["base"], lambda _: self._ik_timer_fired(negotiation)
            )
            return
        entry["attempts"] += 1
        entry["extra_sends"] += 1
        self.ik_retries += 1
        self.ik_retry_log.append(
            (self.sim.now, negotiation, entry["attempts"])
        )
        if self.sim.obs is not None:
            self.sim.obs.count(f"kernel{self.kernel_id}.ik_retries")
            self.sim.obs.instant(
                "ik_retry", "ik", self.node, peer=peer,
                operation=entry["operation"], attempt=entry["attempts"],
            )
        self._arm_ik_timer(negotiation, entry)
        done.add_callback(
            lambda event: self._ik_send_failed(negotiation, event)
        )

    def _refund_ik_credits(self, entry: dict, count: int) -> None:
        """Reconcile peer-endpoint credits for RPC copies whose replies
        will never arrive (clamped at the endpoint's maximum, so an
        over-refund from a late duplicate reply is harmless)."""
        ep_index = self.peers[entry["peer"]]
        for _ in range(count):
            self.dtu._reconcile_credit(ep_index)

    def _handle_ik_request(self, slot: int, message):
        """Generator: serve one request from a peer kernel.  The message
        label is the sender's kernel id (fixed by its send gate)."""
        # Idempotency: the (sender, negotiation id) pair identifies an
        # RPC across retransmitted copies.  A copy of an RPC we already
        # answered is re-answered from the reply cache; a copy of one we
        # are still serving (or have parked) is acked and dropped — the
        # original slot will produce the one reply.
        # The depth rider (if any) is absorbed before the dedup check:
        # duplicates carry fresh telemetry even when their operation is
        # dropped, and gossip must not depend on execution.
        if len(message.payload) == 3:
            operation, args, rider = message.payload
            self._absorb_rider(rider)
        else:
            operation, args = message.payload
        key = (message.label, message.header.reply_label)
        if key in self._ik_replied:
            self.ik_duplicates += 1
            if self.sim.obs is not None:
                self.sim.obs.count(f"kernel{self.kernel_id}.ik_duplicates")
            self._ik_reply(slot, self._ik_replied[key])
            return
        if key in self._ik_inflight:
            self.ik_duplicates += 1
            if self.sim.obs is not None:
                self.sim.obs.count(f"kernel{self.kernel_id}.ik_duplicates")
            self.dtu.ack_message(KERNEL_IK_EP, slot)
            return
        self._ik_inflight[key] = slot
        self.ik_requests_served += 1
        obs = self.sim.obs
        span = -1
        if obs is not None:
            obs.count(f"kernel{self.kernel_id}.ik_served")
            # Served as a child of the peer's request message: spans for
            # cross-domain work land in the originating request's tree.
            span = obs.begin(operation, "ik", self.node,
                             parent=header_context(message.header),
                             peer=message.label)
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        handler = getattr(self, f"_ik_{operation}", None)
        try:
            if handler is None:
                raise SyscallError(f"unknown inter-kernel op {operation!r}")
            result = yield from handler(slot, message.label, *args)
        except (SyscallError, KeyError, ValueError, TypeError) as exc:
            reply = ("err", str(exc))
        else:
            if result is NO_REPLY:
                if obs is not None:
                    obs.end(span, phase="deferred")
                return
            reply = ("ok", result)
        self._ik_reply(slot, reply)
        if obs is not None:
            obs.end(span, status=reply[0])

    def _ik_reply(self, slot: int, payload) -> None:
        """Reply to (and thereby acknowledge) a peer kernel's request."""
        # Record the reply before sending it, keyed by the RPC identity
        # recovered from the still-unacked slot, so a retransmitted copy
        # of the same RPC gets the identical answer instead of being
        # re-executed (``create_vpe`` et al. are not naturally
        # idempotent).  The cache is bounded; the window only needs to
        # outlive the client's maximum backoff.
        try:
            message = self.dtu.ringbuffer(KERNEL_IK_EP).peek(slot)
        except (KeyError, ValueError):
            message = None
        if message is not None:
            key = (message.label, message.header.reply_label)
            if self._ik_inflight.get(key) == slot:
                del self._ik_inflight[key]
            self._ik_replied[key] = payload
            while len(self._ik_replied) > params.IK_RPC_REPLY_CACHE:
                self._ik_replied.popitem(last=False)
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        self.dtu.reply(KERNEL_IK_EP, slot, payload, IK_MSG_BYTES)

    # -- server side: what this kernel does for its peers ---------------

    def _ik_srv_open(self, slot, sender, name, client_vpe):
        """A peer kernel asks to open a session with a local service on
        behalf of one of its VPEs."""
        service = self.services.get(name)
        if service is None:
            raise SyscallError(f"no service {name!r}")
        session_id = service.next_session_id()
        negotiation = next(self._negotiation_ids)
        self._pending_sessions[negotiation] = (
            "remote", slot, service, session_id, sender, client_vpe
        )
        yield self.dtu.send(
            self._service_eps[name],
            ("open_session", (session_id, client_vpe)),
            SYSCALL_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )
        return NO_REPLY

    def _ik_delegate_mem(self, slot, sender, vpe_id, node, address, size,
                         perm_value):
        """Install a memory capability delegated from a peer domain.
        The cap is marked foreign: revoking it must not free the region
        into this kernel's allocator."""
        vpe = self.vpes.get(vpe_id)
        if vpe is None or vpe.state == VpeState.DEAD:
            raise SyscallError(f"no live VPE {vpe_id} in this domain")
        cap = Capability(
            CapKind.MEM, MemObject(node, address, size, MemoryPerm(perm_value))
        )
        cap.foreign = True
        return vpe.captable.insert(cap)
        yield  # pragma: no cover

    def _ik_create_vpe(self, slot, sender, name, pe_type):
        """Host a VPE spilled from a peer kernel's full domain."""
        child = yield from self.create_vpe(name, pe_type)
        return (child.id, child.node, child.pe.spm_data.size)

    def _ik_vpe_start(self, slot, sender, vpe_id, entry, args):
        vpe = self.vpes.get(vpe_id)
        if vpe is None:
            if self._forward_migrated(vpe_id, slot, "vpe_start",
                                      (entry, tuple(args))):
                return NO_REPLY
            raise SyscallError(f"no VPE {vpe_id} in this domain")
        self.start_vpe(vpe, entry, tuple(args))
        return ()
        yield  # pragma: no cover

    def _ik_vpe_wait(self, slot, sender, vpe_id):
        """Cross-domain VPE_WAIT: reply now if the VPE is dead, else
        park the ring slot until :meth:`vpe_exited` fires the exit
        notification."""
        vpe = self.vpes.get(vpe_id)
        if vpe is None:
            if self._forward_migrated(vpe_id, slot, "vpe_wait", ()):
                return NO_REPLY
            raise SyscallError(f"no VPE {vpe_id} in this domain")
        if vpe.state == VpeState.DEAD:
            return vpe.exit_code
        vpe.remote_waiters.append(slot)
        return NO_REPLY
        yield  # pragma: no cover

    def _ik_vpe_revoke(self, slot, sender, vpe_id):
        """Best-effort kill of a spilled VPE whose capability was
        revoked in the owning domain."""
        vpe = self.vpes.get(vpe_id)
        if vpe is None:
            if self._forward_migrated(vpe_id, slot, "vpe_revoke", ()):
                return NO_REPLY
            return ()
        if vpe.state == VpeState.DEAD:
            return ()
        occupant = vpe.pe.occupant
        if occupant is not None and occupant.alive:
            occupant.interrupt("vpe-revoked")
        self.vpe_exited(vpe, None)
        return ()
        yield  # pragma: no cover

    def _forward_migrated(self, vpe_id: int, slot: int, operation: str,
                          args: tuple) -> bool:
        """Forward a peer request naming a VPE this kernel migrated out
        to its new owner; the eventual verdict passes straight through
        to the original asker.  Returns whether it was forwarded."""
        forwarded = self._migrated_out.get(vpe_id)
        if forwarded is None:
            return False
        peer, new_id = forwarded
        self._ik_request(
            peer, operation, (new_id,) + tuple(args),
            lambda payload, s=slot: self._ik_reply(s, payload),
            no_timeout=(operation == "vpe_wait"),
        )
        return True

    def _ik_migrate_in(self, slot, sender, descriptor):
        """Host a VPE live-migrating in from a peer kernel's domain.

        The descriptor re-materializes on a free local PE: the SPM
        image and endpoint registers restore through the ordinary
        :meth:`restore_vpe` path (whose DTU redirect window now spans
        domains — the source DTU forwards in-flight traffic across the
        boundary until the window closes), the capability manifest
        rebuilds memory grants that stayed behind as foreign-flagged
        caps, and the syscall endpoint is rewired to *this* kernel with
        a locally-minted unforgeable id.  Duplicate deliveries (a
        retried RPC after a dropped reply) are absorbed by the
        inflight/reply-cache dedup before this handler runs, so the
        restore executes exactly once.
        """
        from repro.m3.kernel.checkpoint import VpeCheckpoint

        target = self.platform.find_free_pe(nodes=self.domain)
        if target is None or target.node == self.node:
            raise SyscallError(
                f"no free PE in kernel domain {self.kernel_id} to host a "
                f"migrating VPE"
            )
        source_pe = self.platform.pe(descriptor.node)
        vpe = VpeObject(descriptor.name, source_pe, next(self._vpe_ids))
        vpe.kernel = self
        vpe.state = VpeState.RUNNING
        vpe.migrations = descriptor.migrations
        vpe.last_entry = descriptor.last_entry
        self.vpes[vpe.id] = vpe
        for selector, kind_value, detail in descriptor.caps:
            kind = CapKind(kind_value)
            if kind == CapKind.VPE and detail is None:
                vpe.captable.insert(Capability(CapKind.VPE, vpe), selector)
            elif kind == CapKind.MEM and detail is not None:
                node, address, size, perm_value, was_foreign = detail
                if (node == descriptor.node and address == 0
                        and not was_foreign):
                    # The VPE's own SPM grant follows it to the new PE.
                    cap = Capability(CapKind.MEM, MemObject(
                        target.node, 0, size, MemoryPerm(perm_value)
                    ))
                else:
                    # Memory in (or delegated through) another domain:
                    # still reachable over the NoC, but never owned
                    # here — teardown must not free it locally.
                    cap = Capability(CapKind.MEM, MemObject(
                        node, address, size, MemoryPerm(perm_value)
                    ))
                    cap.foreign = True
                vpe.captable.insert(cap, selector)
            # Session/gate capabilities do not survive the crossing:
            # their kernel-side state lives with the source domain
            # (documented limitation — services reconnect after moving).
        env = descriptor.env
        if env is not None:
            env.vpe_id = vpe.id
            self.envs[vpe.id] = env
        checkpoint = VpeCheckpoint(
            vpe_id=descriptor.vpe_id,
            name=descriptor.name,
            node=descriptor.node,
            spm_image=descriptor.spm_image,
            alloc_mark=descriptor.alloc_mark,
            eps=descriptor.eps,
            caps=tuple(
                (selector, kind_value)
                for selector, kind_value, _detail in descriptor.caps
            ),
            taken_at=descriptor.taken_at,
        )
        yield from self.restore_vpe(checkpoint, target, vpe)
        if self.ctxsw.resident.get(target.node) is None:
            self.ctxsw.adopt(vpe)
        # The syscall channel now belongs to this kernel: same endpoint
        # index (client-side bindings stay valid), new target node, and
        # the id minted here — unforgeable, exactly like at boot.
        yield from self.dtu.configure_remote(
            target.node,
            "configure",
            APP_SYSCALL_EP,
            EndpointRegisters.send_config(
                target_node=self.node,
                target_ep=KERNEL_SYSCALL_EP,
                label=vpe.id,
                credits=2,
                msg_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
            ),
        )
        self.migrations_in += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.migrations_in")
            self.sim.obs.instant("migrate_in", "migrate", target.node,
                                 vpe=vpe.id, peer=sender,
                                 source=descriptor.node)
        return (vpe.id, target.node)

    def _ik_heartbeat(self, slot, sender, peer_id):
        """Liveness probe from the ring predecessor.  Serving the
        request at all is the proof of life; the payload confirms who
        answered."""
        return ("alive", self.kernel_id)
        yield  # pragma: no cover

    def _ik_peer_down(self, slot, sender, dead_id, reason):
        """A peer announces a third kernel's death so every survivor
        converges on the same membership view without waiting for its
        own heartbeat verdict."""
        if dead_id != self.kernel_id:
            self._declare_peer_dead(dead_id, reason, announce=False)
        return ()
        yield  # pragma: no cover

    # -- heartbeats and kernel-domain failover ---------------------------

    def start_heartbeat(self, period: int = params.KERNEL_HEARTBEAT_PERIOD,
                        miss_limit: int = params.KERNEL_HEARTBEAT_MISS_LIMIT):
        """Probe the next live kernel in the ring every ``period``
        cycles; ``miss_limit`` consecutive timeout verdicts declare the
        peer dead and trigger failover.  Heartbeats ride the reliable
        inter-kernel RPC layer, so they are only meaningful on reliable
        DTUs — a best-effort probe could never distinguish loss from
        death."""
        if not self.peers:
            raise RuntimeError(f"{self.label}: no peers to heartbeat")
        if self._heartbeat is not None and not self._heartbeat_stop:
            raise RuntimeError(f"{self.label}: heartbeat already running")
        self._heartbeat_stop = False
        self._heartbeat_misses = {}
        self._heartbeat = self.sim.process(
            self._heartbeat_loop(period, miss_limit),
            f"{self.label}.heartbeat",
        )
        return self._heartbeat

    def stop_heartbeat(self) -> None:
        self._heartbeat_stop = True

    def _ring_successor(self) -> int | None:
        """The next live kernel id after ours, wrapping around — each
        kernel probes exactly one successor, so the ring as a whole
        covers every member with k probes per period."""
        live = self._live_peers()
        if not live:
            return None
        for peer in live:
            if peer > self.kernel_id:
                return peer
        return live[0]

    def _heartbeat_loop(self, period: int, miss_limit: int):
        while True:
            yield self.sim.delay(period)
            if self._heartbeat_stop or self.pe.failed:
                return
            target = self._ring_successor()
            if target is None:
                return
            self.heartbeats_sent += 1
            if self.sim.obs is not None:
                self.sim.obs.count(f"kernel{self.kernel_id}.heartbeats")
            self.sim.ledger.charge(Tag.OS, params.KERNEL_PROBE_CYCLES)
            self._ik_request(
                target, "heartbeat", (self.kernel_id,),
                lambda payload, target=target: self._heartbeat_verdict(
                    target, payload, miss_limit
                ),
                timeout_base=params.KERNEL_HEARTBEAT_RPC_TIMEOUT_CYCLES,
                max_attempts=params.KERNEL_HEARTBEAT_RPC_ATTEMPTS,
            )

    def _heartbeat_verdict(self, target: int, payload, miss_limit: int) -> None:
        if target in self.dead_peers:
            return
        if payload[0] == "ok":
            self._heartbeat_misses[target] = 0
            return
        misses = self._heartbeat_misses.get(target, 0) + 1
        self._heartbeat_misses[target] = misses
        if self.sim.obs is not None:
            self.sim.obs.count(f"kernel{self.kernel_id}.heartbeat_misses")
        if misses >= miss_limit:
            self._declare_peer_dead(
                target, f"{misses} consecutive heartbeat timeouts"
            )

    def _declare_peer_dead(self, peer: int, reason: str,
                           announce: bool = True) -> None:
        """Commit to the verdict that kernel ``peer`` is gone and spawn
        the failover process that cleans up after it."""
        if peer in self.dead_peers or peer not in self.peers:
            return
        detected = self.sim.now
        self.dead_peers.add(peer)
        self._heartbeat_misses.pop(peer, None)
        obs = self.sim.obs
        if obs is not None:
            obs.count(f"kernel{self.kernel_id}.peer_deaths")
            alert = None
            if obs.slo_monitors:
                from repro.obs.slo import last_alert_before

                alert = last_alert_before(obs, detected)
                if alert is not None:
                    self.failover_alerts[peer] = alert
            if alert is not None:
                obs.instant(
                    "peer_dead", "ik", self.node, peer=peer,
                    reason=reason, slo=alert[1], slo_severity=alert[2],
                    slo_cycle=alert[0],
                )
            else:
                obs.instant(
                    "peer_dead", "ik", self.node, peer=peer,
                    reason=reason,
                )
            if obs.flight is not None:
                obs.flight.dump(
                    f"kernel{self.kernel_id}: domain {peer} declared "
                    f"dead ({reason})",
                    domain=peer,
                )
        self.sim.ledger.mark(
            detected, Tag.FAULT,
            f"{self.label}: declared kernel {peer} dead ({reason})",
        )
        self.sim.process(
            self._fail_over(peer, reason, detected, announce),
            f"{self.label}.failover.k{peer}",
        )

    def _fail_over(self, peer: int, reason: str, detected: int,
                   announce: bool):
        """Generator: quarantine a dead kernel domain.  Errs out every
        RPC we still owed it an answer for, answers every local wait
        that was parked on it, fails its PEs so orphaned software stops
        cleanly, revokes capabilities that point into the dead domain,
        and re-points cached service ownership at survivors."""
        # 1. Outstanding RPCs *to* the dead peer: no reply will ever
        # come — err their continuations now (this is what un-parks a
        # cross-domain VPE_WAIT whose target domain died).
        for negotiation in sorted(self._ik_outstanding):
            entry = self._ik_outstanding[negotiation]
            if entry["peer"] != peer:
                continue
            del self._ik_outstanding[negotiation]
            if entry["timer"] is not None:
                self.sim.cancel(entry["timer"])
                entry["timer"] = None
            self._refund_ik_credits(entry, entry["attempts"])
            continuation = self._ik_pending.pop(negotiation, None)
            if continuation is not None:
                continuation(
                    ("err", f"kernel domain {peer} failed: {reason}")
                )
        # 2. Requests *from* the dead peer that we were still serving or
        # had parked: nobody is waiting for these replies any more.
        for key in sorted(k for k in self._ik_inflight if k[0] == peer):
            slot = self._ik_inflight.pop(key)
            for vpe in self.vpes.values():
                if slot in vpe.remote_waiters:
                    vpe.remote_waiters.remove(slot)
            self.dtu.ack_message(KERNEL_IK_EP, slot)
        for negotiation in sorted(self._pending_sessions):
            pending = self._pending_sessions[negotiation]
            if pending[0] == "remote" and pending[4] == peer:
                del self._pending_sessions[negotiation]
        # 3. Quarantine the dead domain's PEs: fail them so any orphaned
        # software (spilled VPEs we started over there) stops instead of
        # deadlocking the run, and wipe their DTUs where reachable.
        dead_nodes = set(self._peer_domains.get(peer, ()))
        for node in sorted(dead_nodes):
            pe = self.platform.pe(node)
            if not pe.failed:
                pe.fail(cause=f"kernel domain {peer} failed")
            try:
                yield from self.dtu.configure_remote(node, "wipe")
            except DtuError:
                pass
        # 4. Capabilities that point into the dead domain are now
        # dangling: revoke them (sessions with its services, send gates
        # at its gates, foreign memory in its address space) and mark
        # proxies of its VPEs dead.
        for vpe_id in sorted(self.vpes):
            vpe = self.vpes[vpe_id]
            if vpe.state == VpeState.DEAD:
                continue
            for cap in vpe.captable.caps():
                if cap.table is None:
                    continue
                doomed = False
                obj = cap.obj
                if cap.kind == CapKind.VPE and isinstance(obj, RemoteVpeObject):
                    if obj.kernel_id == peer and obj.state != VpeState.DEAD:
                        obj.state = VpeState.DEAD
                        obj.exit_code = (
                            "failed", f"kernel domain {peer} failed"
                        )
                elif cap.kind == CapKind.SESSION and isinstance(
                        obj.service, RemoteServiceRef):
                    doomed = obj.service.kernel_id == peer
                elif cap.kind == CapKind.SEND and isinstance(
                        obj.target, RemoteGateStub):
                    doomed = obj.target.node in dead_nodes
                elif cap.kind == CapKind.MEM and cap.foreign:
                    doomed = obj.node in dead_nodes
                if doomed:
                    for victim in revoke(cap):
                        yield from self._teardown(victim)
        # Local services may hold sessions opened on behalf of the dead
        # kernel's clients; those clients are gone.
        for service in self.services.values():
            stale = [
                session_id
                for session_id, client in service.sessions.items()
                if isinstance(client, RemoteClientRef)
                and client.kernel_id == peer
            ]
            for session_id in stale:
                del service.sessions[session_id]
        # 5. Cached service ownership pointing at the dead kernel fails
        # over: drop the entries so the next open re-probes survivors.
        stale_services = [
            name for name, owner in self._remote_services.items()
            if owner == peer
        ]
        for name in stale_services:
            del self._remote_services[name]
        # 6. Tell the other survivors (idempotent: _declare_peer_dead
        # no-ops on kernels that already know).
        if announce:
            for other in self._live_peers():
                self._ik_request(
                    other, "peer_down", (peer, reason),
                    lambda payload: None,
                )
        self.failover_log.append((peer, detected, self.sim.now, reason))
        if self.sim.obs is not None:
            self.sim.obs.instant(
                "failover_done", "ik", self.node, peer=peer,
                cycles=self.sim.now - detected,
            )
        self.sim.ledger.mark(
            self.sim.now, Tag.FAULT,
            f"{self.label}: failover for kernel {peer} complete "
            f"({self.sim.now - detected} cycles after detection)",
        )
