"""The M3 kernel: boot, NoC-level isolation, and syscall dispatch.

The kernel runs on a dedicated PE and never shares it with
applications.  Its power comes solely from its privileged DTU: it
downgrades all application DTUs at boot and afterwards remotely
configures their endpoints (Section 3).
"""

from __future__ import annotations

import itertools
import typing

from repro import params
from repro.dtu.dtu import DtuError
from repro.dtu.message import HEADER_BYTES
from repro.dtu.registers import EndpointRegisters, MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.kernel.capability import Capability, CapKind, revoke
from repro.m3.kernel.memmgr import MemoryManager
from repro.m3.kernel.objects import (
    MemObject,
    RecvGateObject,
    RemoteClientRef,
    RemoteGateStub,
    RemoteServiceRef,
    RemoteVpeObject,
    SendGateObject,
    ServiceObject,
    SessionObject,
)
from repro.m3.kernel.vpe import VpeObject, VpeState
from repro.obs.causal import header_context
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.platform import Platform


class SyscallError(Exception):
    """A syscall was denied or failed; carried back in the reply."""


class _NoReply:
    """Sentinel: the handler acknowledged the slot itself or deferred."""


NO_REPLY = _NoReply()

#: kernel endpoint assignment.
KERNEL_SYSCALL_EP = 0  # receive endpoint for all syscalls
KERNEL_REPLY_EP = 1  # receive endpoint for replies to kernel-sent messages
KERNEL_FIRST_SRV_EP = 2  # send endpoints to services (single-kernel layout)
#: multi-kernel layout only: requests from peer kernels arrive here and
#: peer send endpoints follow; service endpoints then start after the
#: last peer.  A single kernel keeps the layout above unchanged.
KERNEL_IK_EP = 2
KERNEL_FIRST_PEER_EP = 3

#: application endpoint assignment (mirrored by libm3's Env).
APP_SYSCALL_EP = 0  # send endpoint to the kernel
APP_REPLY_EP = 1  # receive endpoint for syscall and service replies

#: syscall channel geometry.
SYSCALL_MSG_BYTES = 64
SYSCALL_RING_SLOTS = 64
#: reply ring slots are large enough for service replies too (services
#: answer clients through the same standard reply endpoint).
REPLY_SLOT_BYTES = 512
REPLY_RING_SLOTS = 8
#: the kernel's own reply ring must absorb a burst of session
#: negotiations (up to one per parked open_session).
KERNEL_REPLY_RING_SLOTS = 64
#: inter-kernel channel geometry: requests carry service lookups and
#: capability descriptors, so the slots match the reply ring's size.
IK_SLOT_BYTES = 512
IK_RING_SLOTS = 64
IK_MSG_BYTES = 256
#: per-peer in-flight request limit; with at most 3 peers the receive
#: ring (64 slots) can absorb every peer's burst at once.
IK_SEND_CREDITS = 16


class Kernel:
    """Kernel state plus the dispatch loop running on the kernel PE."""

    def __init__(self, platform: "Platform", node: int = 0,
                 dram_reserve: int = 0, kernel_id: int = 0,
                 domain=None, dram_base: int | None = None,
                 dram_bytes: int | None = None):
        self.platform = platform
        self.sim = platform.sim
        self.node = node
        self.pe = platform.pe(node)
        self.dtu = self.pe.dtu
        #: this kernel's id and the set of PE nodes it owns (``None``
        #: means the whole mesh — the classic single-kernel layout).
        self.kernel_id = kernel_id
        self.domain = set(domain) if domain is not None else None
        #: process-name stem (the system layer renames partitioned
        #: kernels to ``kernel<d>``).
        self.label = "kernel"
        #: VPE id -> kernel object.
        self.vpes: dict[int, VpeObject] = {}
        #: registered services by name.
        self.services: dict[str, ServiceObject] = {}
        #: DRAM allocator (`dram_reserve` bytes at the bottom stay free
        #: for platform-level uses); a partitioned kernel manages only
        #: its own shard ``[dram_base, dram_base + dram_bytes)``.
        if dram_base is None:
            dram_base = dram_reserve
            dram_bytes = platform.dram.memory.size - dram_reserve
        self.memory = MemoryManager(dram_base, dram_bytes)
        #: peer kernel id -> send-EP index on this kernel's DTU.
        self.peers: dict[int, int] = {}
        self._peer_nodes: dict[int, int] = {}
        #: parked inter-kernel requests: negotiation id -> completion
        #: callback run with the peer's reply payload.
        self._ik_pending: dict[int, typing.Callable] = {}
        #: service name -> owning peer kernel id (remote-lookup cache).
        self._remote_services: dict[str, int] = {}
        self.ik_requests_sent = 0
        self.ik_requests_served = 0
        #: send-EP index on the kernel DTU per service name.
        self._service_eps: dict[str, int] = {}
        self._next_service_ep = KERNEL_FIRST_SRV_EP
        self.syscall_count = 0
        #: (vpe_id, ep_index) -> capability currently configured there,
        #: so revocation can invalidate the hardware behind a grant.
        self._ep_bindings: dict[tuple, Capability] = {}
        #: parked open_session negotiations keyed by negotiation id.
        self._pending_sessions: dict[int, tuple] = {}
        self._negotiation_ids = itertools.count(1)
        #: per-kernel VPE ids, so runs are reproducible regardless of
        #: what else the hosting Python process simulated before.
        self._vpe_ids = itertools.count(1)
        self._booted = False
        #: callback used by the M3 system layer to start software on a
        #: PE (models the kernel writing the boot registers via the DTU).
        self.start_software = None
        #: PE time-multiplexing (Sections 3.3/7); off by default, like
        #: the paper's prototype.
        self.multiplexing = False
        #: move waiting VPEs to PEs that free up (Section 1.3's load
        #: balancing); only meaningful with multiplexing on.
        self.auto_rebalance = False
        from repro.m3.kernel.ctxsw import ContextSwitcher

        self.ctxsw = ContextSwitcher(self)
        #: vpe id -> libm3 Env, populated by the system layer (used by
        #: the context switcher to flush client-side endpoint bindings).
        self.envs: dict[int, object] = {}
        #: watchdog state (see :meth:`start_watchdog`).
        self._watchdog = None
        self._watchdog_stop = False
        self.probes_sent = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def set_peers(self, peer_nodes: dict) -> None:
        """Declare the other kernels (id -> node) before :meth:`boot`.

        Assigns one send endpoint per peer (after the inter-kernel
        receive endpoint) and moves the first service endpoint behind
        them.  Never called for a single-kernel system, whose endpoint
        layout is unchanged.
        """
        self._peer_nodes = dict(peer_nodes)
        self.peers = {}
        ep_index = KERNEL_FIRST_PEER_EP
        for peer_id in sorted(self._peer_nodes):
            self.peers[peer_id] = ep_index
            ep_index += 1
        if ep_index > len(self.dtu.eps):
            raise ValueError(
                f"{len(self._peer_nodes)} peer kernels do not fit "
                f"{len(self.dtu.eps)} DTU endpoints"
            )
        self._next_service_ep = ep_index

    def boot(self):
        """Generator: take control of the chip.

        Configures the kernel's own endpoints, then downgrades every
        other DTU — "during boot, the DTUs of the application PEs are
        downgraded by the kernel to become unprivileged" (Section 3).
        """
        self.dtu.configure_local(
            "configure",
            KERNEL_SYSCALL_EP,
            EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
                slot_count=SYSCALL_RING_SLOTS,
            ),
        )
        self.dtu.configure_local(
            "configure",
            KERNEL_REPLY_EP,
            EndpointRegisters.receive_config(
                buffer_addr=4096,
                slot_size=REPLY_SLOT_BYTES,
                slot_count=KERNEL_REPLY_RING_SLOTS,
            ),
        )
        if self._peer_nodes:
            self.dtu.configure_local(
                "configure",
                KERNEL_IK_EP,
                EndpointRegisters.receive_config(
                    buffer_addr=8192,
                    slot_size=IK_SLOT_BYTES,
                    slot_count=IK_RING_SLOTS,
                ),
            )
            for peer_id, ep_index in self.peers.items():
                self.dtu.configure_local(
                    "configure",
                    ep_index,
                    EndpointRegisters.send_config(
                        target_node=self._peer_nodes[peer_id],
                        target_ep=KERNEL_IK_EP,
                        label=self.kernel_id,
                        credits=IK_SEND_CREDITS,
                        msg_size=IK_SLOT_BYTES,
                    ),
                )
        for pe in self.platform.pes:
            if pe.node == self.node:
                continue
            if self.domain is not None and pe.node not in self.domain:
                continue  # a peer kernel downgrades its own domain
            yield from self.dtu.configure_remote(pe.node, "downgrade")
        self._booted = True

    # ------------------------------------------------------------------
    # VPE management (also used directly for boot-time root VPEs)
    # ------------------------------------------------------------------

    def create_vpe(self, name: str, pe_type: str | None = None,
                   creator: VpeObject | None = None):
        """Generator: allocate a PE, create the VPE, wire its syscall
        channel.  Returns the :class:`VpeObject`.

        With :attr:`multiplexing` enabled and no free PE, the VPE is
        queued on a time-shared PE instead (general-purpose cores only);
        the creator's PE is the preferred victim.
        """
        pe = self.platform.find_free_pe(pe_type, nodes=self.domain)
        if pe is None or pe.node == self.node:
            if self.multiplexing and pe_type in (None, "xtensa"):
                preferred = creator.node if creator is not None else None
                vpe = self._create_multiplexed(name, preferred)
                if vpe is not None:
                    return vpe
            raise SyscallError(
                f"no free PE of type {pe_type or 'any'} for VPE {name!r}"
            )
        vpe = VpeObject(name, pe, next(self._vpe_ids))
        vpe.kernel = self
        self.vpes[vpe.id] = vpe
        # Reserve the PE immediately so concurrent creates cannot race.
        pe.reserve()
        yield from self.wire_syscall_channel(vpe)
        # Self capability and a memory capability for the PE's SPM, used
        # by the parent for application loading (Section 4.5.5).
        vpe.captable.insert(Capability(CapKind.VPE, vpe))
        spm_cap = Capability(
            CapKind.MEM,
            MemObject(pe.node, 0, pe.spm_data.size, MemoryPerm.RW),
        )
        vpe.captable.insert(spm_cap)
        self.ctxsw.adopt(vpe)
        return vpe

    def _create_multiplexed(self, name: str,
                            preferred_node: int | None = None
                            ) -> VpeObject | None:
        """Queue a VPE on a time-shared PE (no endpoint wiring yet —
        that happens at switch-in)."""
        vpe = self.ctxsw.place(name, preferred_node)
        if vpe is None:
            return None
        vpe.kernel = self
        vpe.captable.insert(Capability(CapKind.VPE, vpe))
        # The loader capability targets the DRAM staging area, not the
        # (occupied) SPM.
        vpe.captable.insert(
            Capability(CapKind.MEM, self.ctxsw.staging_object(vpe))
        )
        return vpe

    def wire_syscall_channel(self, vpe: VpeObject):
        """Generator: configure the standard endpoints of a VPE's DTU
        (reply ringbuffer + send gate to the kernel)."""
        yield from self.dtu.configure_remote(
            vpe.node,
            "configure",
            APP_REPLY_EP,
            EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=REPLY_SLOT_BYTES,
                slot_count=REPLY_RING_SLOTS,
            ),
        )
        # The label is the VPE id, chosen by the kernel and unforgeable
        # by the application.
        yield from self.dtu.configure_remote(
            vpe.node,
            "configure",
            APP_SYSCALL_EP,
            EndpointRegisters.send_config(
                target_node=self.node,
                target_ep=KERNEL_SYSCALL_EP,
                label=vpe.id,
                credits=2,
                msg_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
            ),
        )

    def start_vpe(self, vpe: VpeObject, entry, args: tuple) -> None:
        """Start software on the VPE's PE (the M3 system layer provides
        the actual loader hook)."""
        if vpe.state == VpeState.DEAD:
            raise SyscallError(f"VPE {vpe.name!r} is dead")
        if self.start_software is None:
            raise RuntimeError("kernel has no software loader attached")
        if not vpe.resident:
            # A queued multiplexed VPE runs when it gets the PE.
            self.ctxsw.start_queued(vpe, entry, args)
            return
        vpe.state = VpeState.RUNNING
        self.start_software(vpe, entry, args)

    def vpe_exited(self, vpe: VpeObject, exit_code: object) -> None:
        """Mark a VPE dead, free its PE, and wake all waiters."""
        vpe.state = VpeState.DEAD
        vpe.exit_code = exit_code
        vpe.pe.release()
        for waiter_vpe, slot in vpe.waiters:
            self._reply(waiter_vpe, slot, ("ok", exit_code))
        vpe.waiters.clear()
        for ik_slot in vpe.remote_waiters:
            self._ik_reply(ik_slot, ("ok", exit_code))
        vpe.remote_waiters.clear()
        for event in vpe.exit_events:
            event.succeed(exit_code)
        vpe.exit_events.clear()
        self.ctxsw.vpe_gone(vpe)
        self.ctxsw.child_exited(vpe)

    # ------------------------------------------------------------------
    # Watchdog: failure detection and recovery
    # ------------------------------------------------------------------

    def start_watchdog(self, period: int = params.KERNEL_WATCHDOG_PERIOD,
                       probe_timeout: int =
                       params.KERNEL_PROBE_TIMEOUT_CYCLES):
        """Start the liveness watchdog on the kernel PE.

        Every ``period`` cycles the kernel probes the DTU of each
        running, resident VPE (the DTU answers in hardware with the
        core's halted bit, so a dead core cannot suppress the answer).
        A probe that reports "halted" — or that gets no answer within
        ``probe_timeout`` cycles, i.e. the whole node is unreachable —
        triggers :meth:`recover_vpe`.
        """
        if self._watchdog is not None and self._watchdog.alive:
            raise RuntimeError("watchdog already running")
        self._watchdog_stop = False
        self._watchdog = self.sim.process(
            self._watchdog_loop(period, probe_timeout), "kernel.watchdog"
        )
        return self._watchdog

    def stop_watchdog(self) -> None:
        """Let the watchdog loop exit at its next wake-up (so a bare
        ``sim.run()`` can drain the event queue)."""
        self._watchdog_stop = True

    def _watchdog_loop(self, period: int, probe_timeout: int):
        while True:
            yield self.sim.delay(period)
            if self._watchdog_stop:
                return
            for vpe in list(self.vpes.values()):
                if (vpe.state != VpeState.RUNNING or not vpe.resident
                        or vpe.failed or vpe.node == self.node):
                    continue
                yield self.sim.delay(params.KERNEL_PROBE_CYCLES, tag=Tag.OS)
                alive = yield from self._probe_vpe(vpe, probe_timeout)
                if not alive:
                    yield from self.recover_vpe(vpe, "watchdog probe failed")

    def _probe_vpe(self, vpe: VpeObject, timeout: int):
        """Generator: probe one VPE's node; returns whether it is alive.

        The probe races against ``timeout`` so an unreachable node
        (partitioned NoC, wedged DTU) is detected too, not only a
        cleanly-reported halted core.
        """
        from repro.sim.events import first_of

        self.probes_sent += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.probes_sent")
            self.sim.obs.instant("probe", "watchdog", vpe.node, vpe=vpe.id)
        probe = self.sim.process(
            self.dtu.configure_remote(vpe.node, "probe"),
            f"kernel.probe.vpe{vpe.id}",
        )
        yield first_of(self.sim, probe.done, self.sim.delay(timeout))
        return probe.done.triggered and probe.done.ok \
            and probe.done.value == "alive"

    def recover_vpe(self, vpe: VpeObject, reason: str):
        """Generator: tear a failed VPE out of the system.

        The PE's core is gone but its DTU still obeys privileged
        configuration packets, so the kernel (1) wipes the dead node's
        endpoints — NoC-level fencing that stops half-dead software
        state from being reachable, (2) quarantines the PE from
        allocation, (3) fails all VPE_WAIT callers with an error reply
        instead of leaving them blocked forever, and (4) revokes every
        capability the VPE held, which invalidates the endpoints other
        VPEs had configured from its grants.
        """
        self.recoveries += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.recoveries")
            self.sim.obs.instant("recover", "watchdog", vpe.node,
                                 vpe=vpe.id, reason=reason)
        vpe.failed = True
        self.sim.ledger.mark(
            self.sim.now, Tag.FAULT,
            f"kernel recovers VPE #{vpe.id} ({vpe.name}): {reason}",
        )
        try:
            yield from self.dtu.configure_remote(vpe.node, "wipe")
        except DtuError:
            pass  # node unreachable: fenced by the NoC instead
        vpe.pe.failed = True  # quarantine: find_free_pe skips it
        occupant = vpe.pe.occupant
        if occupant is not None and occupant.alive:
            try:
                occupant.interrupt("pe-failed")
            except RuntimeError:
                pass  # not blocked; it is dead hardware either way
        error = ("err", f"VPE {vpe.name!r} failed: {reason}")
        for waiter_vpe, slot in vpe.waiters + vpe.yield_waiters:
            self._reply(waiter_vpe, slot, error)
        vpe.waiters.clear()
        vpe.yield_waiters.clear()
        for ik_slot in vpe.remote_waiters:
            self._ik_reply(ik_slot, error)
        vpe.remote_waiters.clear()
        # DEAD before revoking, so _teardown's VPE branch does not try
        # to "exit" the corpse a second time.
        self.vpe_exited(vpe, ("failed", reason))
        for cap in vpe.captable.caps():
            if cap.table is None:
                continue  # removed with an earlier cap's subtree
            for victim in revoke(cap):
                yield from self._teardown(victim)

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def run(self):
        """Generator: the kernel main loop (runs forever on the kernel PE).

        The loop is strictly event-driven and never blocks on a single
        peer: it serves syscall messages *and* service replies (session
        negotiations, Section 4.5.3), so a service doing a syscall while
        the kernel negotiates with it cannot deadlock the system.
        """
        from repro.sim.events import first_of

        if not self._booted:
            yield from self.boot()
        while True:
            progressed = False
            fetched = self.dtu.fetch_message(KERNEL_SYSCALL_EP)
            if fetched is not None:
                yield from self._handle_syscall(*fetched)
                progressed = True
            fetched = self.dtu.fetch_message(KERNEL_REPLY_EP)
            if fetched is not None:
                yield from self._handle_service_reply(*fetched)
                progressed = True
            if self.peers:
                fetched = self.dtu.fetch_message(KERNEL_IK_EP)
                if fetched is not None:
                    yield from self._handle_ik_request(*fetched)
                    progressed = True
            if not progressed:
                waits = [
                    self.dtu.signal(KERNEL_SYSCALL_EP).wait(),
                    self.dtu.signal(KERNEL_REPLY_EP).wait(),
                ]
                if self.peers:
                    waits.append(self.dtu.signal(KERNEL_IK_EP).wait())
                yield first_of(self.sim, *waits)

    def _handle_syscall(self, slot: int, message):
        """Generator: dispatch one syscall message and reply."""
        self.syscall_count += 1
        obs = self.sim.obs
        started = self.sim.now
        vpe = self.vpes.get(message.label)
        # The opcode is parsed up front (a pure read) so the kernel
        # span carries it from the start; the span adopts the client's
        # trace context from the message header, linking the kernel's
        # work — and every send/config it performs — to the request.
        opcode, args = message.payload
        span = -1
        if obs is not None:
            if self.peers:
                obs.count(f"kernel{self.kernel_id}.syscalls")
            span = obs.begin(
                opcode, "syscall", self.node,
                parent=header_context(message.header),
                vpe=-1 if vpe is None else vpe.id,
            )
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        if vpe is None:
            self.dtu.ack_message(KERNEL_SYSCALL_EP, slot)
            if obs is not None:
                obs.end(span, status="no-vpe")
            return
        handler = getattr(self, f"_sys_{opcode}", None)
        try:
            if handler is None:
                raise SyscallError(f"unknown syscall {opcode!r}")
            result = yield from handler(vpe, slot, *args)
        except (SyscallError, KeyError, ValueError, TypeError) as exc:
            result = None
            reply = ("err", str(exc))
        else:
            if result is NO_REPLY:
                if obs is not None:
                    obs.observe("kernel.syscall_cycles", self.sim.now - started)
                    obs.end(span, phase="deferred")
                return
            reply = ("ok", result)
        yield self.sim.delay(params.M3_KERNEL_REPLY_CYCLES, tag=Tag.OS)
        yield self.dtu.reply(KERNEL_SYSCALL_EP, slot, reply, SYSCALL_MSG_BYTES)
        if obs is not None:
            obs.observe("kernel.syscall_cycles", self.sim.now - started)
            obs.end(span, status=reply[0])

    def _reply(self, vpe: VpeObject, slot: int, payload) -> None:
        """Late reply to a deferred syscall (fire-and-forget).

        The waiter may have *migrated* since it sent the syscall; the
        stored reply information is retargeted to its current node
        first (the kernel's bookkeeping of where each VPE lives).
        """
        self._retarget_parked_message(vpe, slot)
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        self.dtu.reply(KERNEL_SYSCALL_EP, slot, payload, SYSCALL_MSG_BYTES)

    def _retarget_parked_message(self, vpe: VpeObject, slot: int) -> None:
        import dataclasses

        ring = self.dtu.ringbuffer(KERNEL_SYSCALL_EP)
        message = ring.peek(slot)
        if message.header.reply_node == vpe.node:
            return
        header = dataclasses.replace(
            message.header, reply_node=vpe.node, reply_ep=APP_REPLY_EP
        )
        ring._slots[slot] = dataclasses.replace(message, header=header)

    # ------------------------------------------------------------------
    # Syscall handlers.  Each is a generator taking (vpe, slot, *args).
    # ------------------------------------------------------------------

    def _sys_noop(self, vpe, slot):
        return ()
        yield  # pragma: no cover - makes this a generator

    def _sys_create_vpe(self, vpe, slot, name, pe_type):
        try:
            child = yield from self.create_vpe(name, pe_type, creator=vpe)
        except SyscallError:
            if not self.peers:
                raise
            # Domain full: spill the VPE to a peer kernel's domain.
            self._spill_create_vpe(vpe, slot, name, pe_type,
                                   sorted(self.peers), 0)
            return NO_REPLY
        # Give the *parent* a capability for the child VPE and its SPM.
        child_vpe_cap = child.captable.get(0)
        child_spm_cap = child.captable.get(1)
        vpe_sel = vpe.captable.insert(child_vpe_cap.derive())
        spm_sel = vpe.captable.insert(child_spm_cap.derive())
        return (vpe_sel, spm_sel, child.id)

    def _spill_create_vpe(self, vpe, slot, name, pe_type, candidates,
                          index) -> None:
        """Ask peer kernels (in id order) to host a VPE this domain has
        no free PE for; the parent holds the child through a
        :class:`RemoteVpeObject` capability."""
        if index >= len(candidates):
            self._reply(vpe, slot, (
                "err",
                f"no free PE of type {pe_type or 'any'} for VPE {name!r}",
            ))
            return
        peer = candidates[index]

        def completion(payload):
            status, detail = payload
            if status != "ok":
                self._spill_create_vpe(vpe, slot, name, pe_type,
                                       candidates, index + 1)
                return
            child_id, node, spm_size = detail
            child = RemoteVpeObject(remote_id=child_id, kernel_id=peer,
                                    name=name, node=node)
            vpe_sel = vpe.captable.insert(Capability(CapKind.VPE, child))
            spm_cap = Capability(
                CapKind.MEM, MemObject(node, 0, spm_size, MemoryPerm.RW)
            )
            spm_cap.foreign = True
            spm_sel = vpe.captable.insert(spm_cap)
            self._reply(vpe, slot, ("ok", (vpe_sel, spm_sel, child_id)))

        self._ik_request(peer, "create_vpe", (name, pe_type), completion)

    def _sys_vpe_start(self, vpe, slot, vpe_sel, entry, args):
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):

            def completion(payload):
                if payload[0] == "ok":
                    child.state = VpeState.RUNNING
                self._reply(vpe, slot, payload)

            self._ik_request(child.kernel_id, "vpe_start",
                             (child.remote_id, entry, tuple(args)),
                             completion)
            return NO_REPLY
        self.start_vpe(child, entry, tuple(args))
        return ()
        yield  # pragma: no cover

    def _sys_vpe_wait(self, vpe, slot, vpe_sel):
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):
            if child.state == VpeState.DEAD:
                return child.exit_code

            def completion(payload):
                if payload[0] == "ok":
                    child.state = VpeState.DEAD
                    child.exit_code = payload[1]
                self._reply(vpe, slot, payload)

            self._ik_request(child.kernel_id, "vpe_wait",
                             (child.remote_id,), completion)
            return NO_REPLY
        if child.state == VpeState.DEAD:
            return child.exit_code
        child.waiters.append((vpe, slot))
        return NO_REPLY
        yield  # pragma: no cover

    def _sys_vpe_migrate(self, vpe, slot, vpe_sel):
        """Migrate a suspended/queued VPE (the caller must hold its
        capability) to a free PE; returns the new node."""
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if child.resident and child.state == VpeState.RUNNING:
            raise SyscallError(
                f"VPE {child.name!r} is running; only suspended or queued "
                "VPEs can migrate"
            )
        target = self.platform.find_free_pe(nodes=self.domain)
        if target is None or target.node == self.node:
            raise SyscallError("no free PE to migrate to")
        try:
            self.ctxsw.migrate(child, target)
        except ValueError as exc:
            raise SyscallError(str(exc)) from None
        return target.node
        yield  # pragma: no cover

    def _sys_vpe_wait_yield(self, vpe, slot, vpe_sel):
        """Wait for a VPE *and* offer the caller's PE for reuse —
        Section 3.3's "inform the kernel about a potentially reusable
        core"."""
        if not self.multiplexing:
            return (yield from self._sys_vpe_wait(vpe, slot, vpe_sel))
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if isinstance(child, RemoteVpeObject):
            # A spilled child's PE belongs to the peer's domain; plain
            # cross-domain wait, nothing to yield locally.
            return (yield from self._sys_vpe_wait(vpe, slot, vpe_sel))
        return (yield from self.ctxsw.wait_yield(vpe, slot, child))

    def _sys_exit(self, vpe, slot, exit_code):
        self.dtu.ack_message(KERNEL_SYSCALL_EP, slot)
        self.vpe_exited(vpe, exit_code)
        return NO_REPLY
        yield  # pragma: no cover

    def _sys_request_mem(self, vpe, slot, size, perm_value):
        address = self.memory.allocate(size)
        obj = MemObject(
            self.platform.dram_node, address, size, MemoryPerm(perm_value)
        )
        return vpe.captable.insert(Capability(CapKind.MEM, obj))
        yield  # pragma: no cover

    def _sys_derive_mem(self, vpe, slot, mem_sel, offset, size, perm_value):
        parent_cap = vpe.captable.get(mem_sel, CapKind.MEM)
        derived = parent_cap.obj.slice(offset, size, MemoryPerm(perm_value))
        return vpe.captable.insert(parent_cap.derive(derived))
        yield  # pragma: no cover

    def _sys_create_rgate(self, vpe, slot, slot_size, slot_count):
        obj = RecvGateObject(slot_size=slot_size, slot_count=slot_count)
        return vpe.captable.insert(Capability(CapKind.RECV, obj))
        yield  # pragma: no cover

    def _sys_create_sgate(self, vpe, slot, rgate_sel, label, credits):
        rgate_cap = vpe.captable.get(rgate_sel, CapKind.RECV)
        obj = SendGateObject(rgate_cap.obj, label, credits)
        return vpe.captable.insert(rgate_cap.derive(obj, kind=CapKind.SEND))
        yield  # pragma: no cover

    def _sys_activate(self, vpe, slot, ep_index, cap_sel):
        if not (0 <= ep_index < len(vpe.pe.dtu.eps)):
            raise SyscallError(f"endpoint {ep_index} out of range")
        if cap_sel < 0:
            yield from self.dtu.configure_remote(vpe.node, "invalidate", ep_index)
            return ()
        cap = vpe.captable.get(cap_sel)
        if cap.kind == CapKind.RECV:
            if cap.obj.owner is not None and cap.obj.owner is not vpe:
                raise SyscallError(
                    "an active receive gate cannot move to another VPE"
                )
            cap.obj.owner = vpe
        elif cap.kind == CapKind.SEND and not cap.obj.target.active:
            # Defer until the receiver is ready (Section 4.5.4).
            cap.obj.target.pending_activations.append(
                (vpe, slot, ep_index, cap)
            )
            return NO_REPLY
        registers = self._registers_for(cap)
        yield from self.dtu.configure_remote(
            vpe.node, "configure", ep_index, registers
        )
        self._bind_ep(vpe, ep_index, cap)
        if cap.kind == CapKind.RECV:
            cap.obj.ep_index = ep_index
            self._flush_pending_activations(cap.obj)
        return ()

    def _bind_ep(self, vpe, ep_index: int, cap: Capability) -> None:
        """Record that ``cap`` now occupies (vpe, ep); unbind the previous
        occupant so revocation only invalidates live configurations."""
        key = (vpe.id, ep_index)
        previous = self._ep_bindings.get(key)
        if previous is not None:
            previous.bound_eps.discard(key)
        self._ep_bindings[key] = cap
        cap.bound_eps.add(key)

    def _flush_pending_activations(self, rgate: RecvGateObject) -> None:
        """Complete send-gate activations deferred on ``rgate``."""
        pending, rgate.pending_activations = rgate.pending_activations, []
        for waiter_vpe, slot, ep_index, cap in pending:

            def completion(waiter_vpe=waiter_vpe, slot=slot,
                           ep_index=ep_index, cap=cap):
                registers = self._registers_for(cap)
                yield from self.dtu.configure_remote(
                    waiter_vpe.node, "configure", ep_index, registers
                )
                self._bind_ep(waiter_vpe, ep_index, cap)
                self._reply(waiter_vpe, slot, ("ok", ()))

            self.sim.process(completion(), "kernel.deferred-activate")

    def _registers_for(self, cap: Capability) -> EndpointRegisters:
        if cap.kind == CapKind.SEND:
            gate: SendGateObject = cap.obj
            if gate.target.ep_index is None:
                raise SyscallError("target receive gate is not activated")
            return EndpointRegisters.send_config(
                target_node=gate.target.node,
                target_ep=gate.target.ep_index,
                label=gate.label,
                credits=gate.credits,
                msg_size=gate.target.slot_size,
            )
        if cap.kind == CapKind.RECV:
            gate: RecvGateObject = cap.obj
            return EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=gate.slot_size,
                slot_count=gate.slot_count,
            )
        if cap.kind == CapKind.MEM:
            region: MemObject = cap.obj
            return EndpointRegisters.memory_config(
                region.node, region.address, region.size, region.perm
            )
        raise SyscallError(f"cannot activate a {cap.kind.value} capability")

    def _sys_delegate(self, vpe, slot, vpe_sel, src_sel):
        target = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        source_cap = vpe.captable.get(src_sel)
        if isinstance(target, RemoteVpeObject):
            if source_cap.kind != CapKind.MEM:
                raise SyscallError(
                    "only memory capabilities can be delegated across "
                    "kernel domains"
                )
            region: MemObject = source_cap.obj

            def completion(payload):
                self._reply(vpe, slot, payload)

            self._ik_request(
                target.kernel_id, "delegate_mem",
                (target.remote_id, region.node, region.address,
                 region.size, region.perm.value),
                completion,
            )
            return NO_REPLY
        if source_cap.kind == CapKind.RECV and source_cap.obj.active:
            # "the kernel only allows to delegate/obtain send and memory
            # capabilities, but not receive capabilities" once active
            # (Section 4.5.4); inactive receive gates are still movable.
            raise SyscallError("active receive capabilities cannot be delegated")
        return target.captable.insert(source_cap.derive())
        yield  # pragma: no cover

    def _sys_revoke(self, vpe, slot, src_sel):
        cap = vpe.captable.get(src_sel)
        removed = revoke(cap)
        for victim in removed:
            yield from self._teardown(victim)
        return len(removed)

    def _teardown(self, cap: Capability):
        """Generator: undo hardware/software state behind a revoked cap."""
        # Invalidate every endpoint this capability is configured on —
        # revocation must cut hardware access, not just bookkeeping.
        for vpe_id, ep_index in sorted(cap.bound_eps):
            self._ep_bindings.pop((vpe_id, ep_index), None)
            holder = self.vpes.get(vpe_id)
            if holder is not None and holder.state != VpeState.DEAD:
                yield from self.dtu.configure_remote(
                    holder.node, "invalidate", ep_index
                )
        cap.bound_eps.clear()
        if cap.kind == CapKind.RECV and cap.obj.ep_index is not None:
            cap.obj.ep_index = None
        elif cap.kind == CapKind.VPE:
            vpe = cap.obj
            if isinstance(vpe, RemoteVpeObject):
                # Best-effort kill in the owning domain; the local proxy
                # is marked dead immediately.
                if vpe.state != VpeState.DEAD:
                    self._ik_request(vpe.kernel_id, "vpe_revoke",
                                     (vpe.remote_id,), lambda payload: None)
                    vpe.state = VpeState.DEAD
            elif vpe.state != VpeState.DEAD:
                # "the owner of the VPE capability could revoke it to let
                # the kernel reset the associated PE" (Section 4.5.5).
                occupant = vpe.pe.occupant
                if occupant is not None and occupant.alive:
                    occupant.interrupt("vpe-revoked")
                self.vpe_exited(vpe, None)
        elif cap.kind == CapKind.MEM and cap.parent is None and not cap.foreign:
            region: MemObject = cap.obj
            if region.node == self.platform.dram_node:
                self.memory.free(region.address, region.size)

    def _sys_create_srv(self, vpe, slot, name, rgate_sel):
        if name in self.services:
            raise SyscallError(f"service {name!r} already registered")
        rgate_cap = vpe.captable.get(rgate_sel, CapKind.RECV)
        if rgate_cap.obj.ep_index is None:
            raise SyscallError("service receive gate must be activated first")
        service = ServiceObject(name=name, rgate=rgate_cap.obj, owner=vpe)
        self.services[name] = service
        # The kernel<->service channel, "created at service registration"
        # (Section 4.5.3): a send endpoint on the kernel's own DTU.
        ep_index = self._next_service_ep
        if ep_index >= len(self.dtu.eps):
            raise SyscallError("kernel is out of service endpoints")
        self._next_service_ep += 1
        self._service_eps[name] = ep_index
        self.dtu.configure_local(
            "configure",
            ep_index,
            EndpointRegisters.send_config(
                target_node=service.rgate.node,
                target_ep=service.rgate.ep_index,
                label=0,  # label 0 marks the kernel to the service
                credits=service.rgate.slot_count,
                msg_size=service.rgate.slot_size,
            ),
        )
        return vpe.captable.insert(
            rgate_cap.derive(service, kind=CapKind.SERVICE)
        )
        yield  # pragma: no cover

    def _sys_open_session(self, vpe, slot, name):
        service = self.services.get(name)
        if service is None:
            if self.peers:
                # Remote service lookup: the name may be registered with
                # a peer kernel's domain.
                self._open_remote_session(vpe, slot, name)
                return NO_REPLY
            raise SyscallError(f"no service {name!r}")
        session_id = service.next_session_id()
        # Negotiate with the service over the kernel<->service channel;
        # the reply (labelled with the negotiation id) completes the
        # session asynchronously — the kernel loop must stay responsive
        # because the service may be blocked in a syscall of its own.
        negotiation = next(self._negotiation_ids)
        self._pending_sessions[negotiation] = (
            "local", vpe, slot, service, session_id
        )
        yield self.dtu.send(
            self._service_eps[name],
            ("open_session", (session_id, vpe.id)),
            SYSCALL_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )
        return NO_REPLY

    def _handle_service_reply(self, slot, message):
        """Generator: complete a parked negotiation — a session being
        opened with a local service, or an inter-kernel request this
        kernel sent to a peer."""
        obs = self.sim.obs
        self.dtu.ack_message(KERNEL_REPLY_EP, slot)
        continuation = self._ik_pending.pop(message.label, None)
        if continuation is not None:
            # A peer kernel answered an inter-kernel request: the
            # continuation runs as a child of the peer's reply message,
            # so the cross-domain hop stays on the causal chain.
            span = -1
            if obs is not None:
                span = obs.begin("ik_reply", "ik", self.node,
                                 parent=header_context(message.header))
            yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
            try:
                continuation(message.payload)
            finally:
                if obs is not None:
                    obs.end(span)
            return
        pending = self._pending_sessions.pop(message.label, None)
        if pending is None:
            return
        span = -1
        if obs is not None:
            # Finishing a parked session negotiation: on behalf of a
            # peer domain ("remote" — inter-kernel work) or of a local
            # client's open_session syscall.
            name, category = (
                ("srv_open.finish", "ik") if pending[0] == "remote"
                else ("open_session.finish", "syscall")
            )
            span = obs.begin(name, category, self.node,
                             parent=header_context(message.header))
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        try:
            self._finish_pending_session(pending, message)
        finally:
            if obs is not None:
                obs.end(span)

    def _finish_pending_session(self, pending, message) -> None:
        """Complete one parked session negotiation (service replied)."""
        status, _detail = message.payload
        if pending[0] == "remote":
            # A session negotiated on behalf of a peer kernel's client:
            # answer over the inter-kernel channel with the service
            # gate's location so the peer can build the send gate.
            _kind, ik_slot, service, session_id, client_kernel, client_vpe \
                = pending
            if status != "ok":
                self._ik_reply(ik_slot, (
                    "err", f"service {service.name!r} denied the session"
                ))
                return
            service.sessions[session_id] = RemoteClientRef(
                kernel_id=client_kernel, vpe_id=client_vpe
            )
            rgate = service.rgate
            self._ik_reply(ik_slot, (
                "ok",
                (session_id, rgate.node, rgate.ep_index, rgate.slot_size),
            ))
            return
        _kind, vpe, syscall_slot, service, session_id = pending
        if status != "ok":
            self._reply(
                vpe, syscall_slot,
                ("err", f"service {service.name!r} denied the session"),
            )
            return
        session = SessionObject(service=service, label=session_id, client=vpe)
        session_sel = vpe.captable.insert(Capability(CapKind.SESSION, session))
        sgate = SendGateObject(
            target=service.rgate, label=session_id, credits=2
        )
        sgate_sel = vpe.captable.insert(Capability(CapKind.SEND, sgate))
        service.sessions[session_id] = vpe
        self._reply(vpe, syscall_slot, ("ok", (session_sel, sgate_sel)))

    def _open_remote_session(self, vpe, slot, name: str) -> None:
        """Probe peer kernels for service ``name``, cached owner first,
        then in kernel-id order, until one accepts the session."""
        candidates = sorted(self.peers)
        cached = self._remote_services.get(name)
        if cached in self.peers:
            candidates.remove(cached)
            candidates.insert(0, cached)
        self._probe_remote_service(vpe, slot, name, candidates, 0)

    def _probe_remote_service(self, vpe, slot, name, candidates,
                              index) -> None:
        if index >= len(candidates):
            self._remote_services.pop(name, None)
            self._reply(vpe, slot, ("err", f"no service {name!r}"))
            return
        peer = candidates[index]

        def completion(payload):
            status, detail = payload
            if status != "ok":
                self._probe_remote_service(vpe, slot, name, candidates,
                                           index + 1)
                return
            session_id, rgate_node, rgate_ep, slot_size = detail
            self._remote_services[name] = peer
            stub = RemoteGateStub(node=rgate_node, ep_index=rgate_ep,
                                  slot_size=slot_size)
            session = SessionObject(
                service=RemoteServiceRef(name=name, kernel_id=peer),
                label=session_id, client=vpe,
            )
            session_sel = vpe.captable.insert(
                Capability(CapKind.SESSION, session)
            )
            sgate = SendGateObject(target=stub, label=session_id, credits=2)
            sgate_sel = vpe.captable.insert(Capability(CapKind.SEND, sgate))
            self._reply(vpe, slot, ("ok", (session_sel, sgate_sel)))

        self._ik_request(peer, "srv_open", (name, vpe.id), completion)

    def _sys_srv_delegate(self, vpe, slot, service_sel, session_id,
                          src_mem_sel, offset, size, perm_value):
        service_cap = vpe.captable.get(service_sel, CapKind.SERVICE)
        service: ServiceObject = service_cap.obj
        client = service.sessions.get(session_id)
        if client is None:
            raise SyscallError(f"no session {session_id} at {service.name!r}")
        source_cap = vpe.captable.get(src_mem_sel, CapKind.MEM)
        derived = source_cap.obj.slice(offset, size, MemoryPerm(perm_value))
        if isinstance(client, RemoteClientRef):
            # The client lives in a peer domain: forward the derived
            # region's descriptor; the peer installs a foreign cap and
            # replies with the client-side selector.
            def completion(payload):
                self._reply(vpe, slot, payload)

            self._ik_request(
                client.kernel_id, "delegate_mem",
                (client.vpe_id, derived.node, derived.address,
                 derived.size, derived.perm.value),
                completion,
            )
            return NO_REPLY
        return client.captable.insert(source_cap.derive(derived))
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Inter-kernel protocol (multi-kernel layouts only).  Requests ride
    # ordinary DTU messages between kernel send gates; replies come back
    # on the standard reply endpoint, labelled with a negotiation id
    # like a session negotiation (see docs/protocols.md).
    # ------------------------------------------------------------------

    def _ik_request(self, peer: int, operation: str, args: tuple,
                    continuation) -> None:
        """Send ``(operation, args)`` to a peer kernel; ``continuation``
        is a plain (non-blocking) callable run with the peer's reply
        payload, so the kernel loop never waits on a peer."""
        negotiation = next(self._negotiation_ids)
        self._ik_pending[negotiation] = continuation
        self.ik_requests_sent += 1
        if self.sim.obs is not None:
            self.sim.obs.count(f"kernel{self.kernel_id}.ik_requests")
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        self.dtu.send(
            self.peers[peer],
            (operation, args),
            IK_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )

    def _handle_ik_request(self, slot: int, message):
        """Generator: serve one request from a peer kernel.  The message
        label is the sender's kernel id (fixed by its send gate)."""
        self.ik_requests_served += 1
        obs = self.sim.obs
        operation, args = message.payload
        span = -1
        if obs is not None:
            obs.count(f"kernel{self.kernel_id}.ik_served")
            # Served as a child of the peer's request message: spans for
            # cross-domain work land in the originating request's tree.
            span = obs.begin(operation, "ik", self.node,
                             parent=header_context(message.header),
                             peer=message.label)
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        handler = getattr(self, f"_ik_{operation}", None)
        try:
            if handler is None:
                raise SyscallError(f"unknown inter-kernel op {operation!r}")
            result = yield from handler(slot, message.label, *args)
        except (SyscallError, KeyError, ValueError, TypeError) as exc:
            reply = ("err", str(exc))
        else:
            if result is NO_REPLY:
                if obs is not None:
                    obs.end(span, phase="deferred")
                return
            reply = ("ok", result)
        self._ik_reply(slot, reply)
        if obs is not None:
            obs.end(span, status=reply[0])

    def _ik_reply(self, slot: int, payload) -> None:
        """Reply to (and thereby acknowledge) a peer kernel's request."""
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        self.dtu.reply(KERNEL_IK_EP, slot, payload, IK_MSG_BYTES)

    # -- server side: what this kernel does for its peers ---------------

    def _ik_srv_open(self, slot, sender, name, client_vpe):
        """A peer kernel asks to open a session with a local service on
        behalf of one of its VPEs."""
        service = self.services.get(name)
        if service is None:
            raise SyscallError(f"no service {name!r}")
        session_id = service.next_session_id()
        negotiation = next(self._negotiation_ids)
        self._pending_sessions[negotiation] = (
            "remote", slot, service, session_id, sender, client_vpe
        )
        yield self.dtu.send(
            self._service_eps[name],
            ("open_session", (session_id, client_vpe)),
            SYSCALL_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )
        return NO_REPLY

    def _ik_delegate_mem(self, slot, sender, vpe_id, node, address, size,
                         perm_value):
        """Install a memory capability delegated from a peer domain.
        The cap is marked foreign: revoking it must not free the region
        into this kernel's allocator."""
        vpe = self.vpes.get(vpe_id)
        if vpe is None or vpe.state == VpeState.DEAD:
            raise SyscallError(f"no live VPE {vpe_id} in this domain")
        cap = Capability(
            CapKind.MEM, MemObject(node, address, size, MemoryPerm(perm_value))
        )
        cap.foreign = True
        return vpe.captable.insert(cap)
        yield  # pragma: no cover

    def _ik_create_vpe(self, slot, sender, name, pe_type):
        """Host a VPE spilled from a peer kernel's full domain."""
        child = yield from self.create_vpe(name, pe_type)
        return (child.id, child.node, child.pe.spm_data.size)

    def _ik_vpe_start(self, slot, sender, vpe_id, entry, args):
        vpe = self.vpes.get(vpe_id)
        if vpe is None:
            raise SyscallError(f"no VPE {vpe_id} in this domain")
        self.start_vpe(vpe, entry, tuple(args))
        return ()
        yield  # pragma: no cover

    def _ik_vpe_wait(self, slot, sender, vpe_id):
        """Cross-domain VPE_WAIT: reply now if the VPE is dead, else
        park the ring slot until :meth:`vpe_exited` fires the exit
        notification."""
        vpe = self.vpes.get(vpe_id)
        if vpe is None:
            raise SyscallError(f"no VPE {vpe_id} in this domain")
        if vpe.state == VpeState.DEAD:
            return vpe.exit_code
        vpe.remote_waiters.append(slot)
        return NO_REPLY
        yield  # pragma: no cover

    def _ik_vpe_revoke(self, slot, sender, vpe_id):
        """Best-effort kill of a spilled VPE whose capability was
        revoked in the owning domain."""
        vpe = self.vpes.get(vpe_id)
        if vpe is None or vpe.state == VpeState.DEAD:
            return ()
        occupant = vpe.pe.occupant
        if occupant is not None and occupant.alive:
            occupant.interrupt("vpe-revoked")
        self.vpe_exited(vpe, None)
        return ()
        yield  # pragma: no cover
