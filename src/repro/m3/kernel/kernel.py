"""The M3 kernel: boot, NoC-level isolation, and syscall dispatch.

The kernel runs on a dedicated PE and never shares it with
applications.  Its power comes solely from its privileged DTU: it
downgrades all application DTUs at boot and afterwards remotely
configures their endpoints (Section 3).
"""

from __future__ import annotations

import itertools
import typing

from repro import params
from repro.dtu.dtu import DtuError
from repro.dtu.message import HEADER_BYTES
from repro.dtu.registers import EndpointRegisters, MemoryPerm
from repro.m3.kernel import syscalls
from repro.m3.kernel.capability import Capability, CapKind, revoke
from repro.m3.kernel.memmgr import MemoryManager
from repro.m3.kernel.objects import (
    MemObject,
    RecvGateObject,
    SendGateObject,
    ServiceObject,
    SessionObject,
)
from repro.m3.kernel.vpe import VpeObject, VpeState
from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.platform import Platform


class SyscallError(Exception):
    """A syscall was denied or failed; carried back in the reply."""


class _NoReply:
    """Sentinel: the handler acknowledged the slot itself or deferred."""


NO_REPLY = _NoReply()

#: kernel endpoint assignment.
KERNEL_SYSCALL_EP = 0  # receive endpoint for all syscalls
KERNEL_REPLY_EP = 1  # receive endpoint for replies to kernel-sent messages
KERNEL_FIRST_SRV_EP = 2  # send endpoints to services

#: application endpoint assignment (mirrored by libm3's Env).
APP_SYSCALL_EP = 0  # send endpoint to the kernel
APP_REPLY_EP = 1  # receive endpoint for syscall and service replies

#: syscall channel geometry.
SYSCALL_MSG_BYTES = 64
SYSCALL_RING_SLOTS = 64
#: reply ring slots are large enough for service replies too (services
#: answer clients through the same standard reply endpoint).
REPLY_SLOT_BYTES = 512
REPLY_RING_SLOTS = 8
#: the kernel's own reply ring must absorb a burst of session
#: negotiations (up to one per parked open_session).
KERNEL_REPLY_RING_SLOTS = 64


class Kernel:
    """Kernel state plus the dispatch loop running on the kernel PE."""

    def __init__(self, platform: "Platform", node: int = 0,
                 dram_reserve: int = 0):
        self.platform = platform
        self.sim = platform.sim
        self.node = node
        self.pe = platform.pe(node)
        self.dtu = self.pe.dtu
        #: VPE id -> kernel object.
        self.vpes: dict[int, VpeObject] = {}
        #: registered services by name.
        self.services: dict[str, ServiceObject] = {}
        #: DRAM allocator (`dram_reserve` bytes at the bottom stay free
        #: for platform-level uses).
        self.memory = MemoryManager(
            dram_reserve, platform.dram.memory.size - dram_reserve
        )
        #: send-EP index on the kernel DTU per service name.
        self._service_eps: dict[str, int] = {}
        self._next_service_ep = KERNEL_FIRST_SRV_EP
        self.syscall_count = 0
        #: (vpe_id, ep_index) -> capability currently configured there,
        #: so revocation can invalidate the hardware behind a grant.
        self._ep_bindings: dict[tuple, Capability] = {}
        #: parked open_session negotiations keyed by negotiation id.
        self._pending_sessions: dict[int, tuple] = {}
        self._negotiation_ids = itertools.count(1)
        #: per-kernel VPE ids, so runs are reproducible regardless of
        #: what else the hosting Python process simulated before.
        self._vpe_ids = itertools.count(1)
        self._booted = False
        #: callback used by the M3 system layer to start software on a
        #: PE (models the kernel writing the boot registers via the DTU).
        self.start_software = None
        #: PE time-multiplexing (Sections 3.3/7); off by default, like
        #: the paper's prototype.
        self.multiplexing = False
        #: move waiting VPEs to PEs that free up (Section 1.3's load
        #: balancing); only meaningful with multiplexing on.
        self.auto_rebalance = False
        from repro.m3.kernel.ctxsw import ContextSwitcher

        self.ctxsw = ContextSwitcher(self)
        #: vpe id -> libm3 Env, populated by the system layer (used by
        #: the context switcher to flush client-side endpoint bindings).
        self.envs: dict[int, object] = {}
        #: watchdog state (see :meth:`start_watchdog`).
        self._watchdog = None
        self._watchdog_stop = False
        self.probes_sent = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def boot(self):
        """Generator: take control of the chip.

        Configures the kernel's own endpoints, then downgrades every
        other DTU — "during boot, the DTUs of the application PEs are
        downgraded by the kernel to become unprivileged" (Section 3).
        """
        self.dtu.configure_local(
            "configure",
            KERNEL_SYSCALL_EP,
            EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
                slot_count=SYSCALL_RING_SLOTS,
            ),
        )
        self.dtu.configure_local(
            "configure",
            KERNEL_REPLY_EP,
            EndpointRegisters.receive_config(
                buffer_addr=4096,
                slot_size=REPLY_SLOT_BYTES,
                slot_count=KERNEL_REPLY_RING_SLOTS,
            ),
        )
        for pe in self.platform.pes:
            if pe.node == self.node:
                continue
            yield from self.dtu.configure_remote(pe.node, "downgrade")
        self._booted = True

    # ------------------------------------------------------------------
    # VPE management (also used directly for boot-time root VPEs)
    # ------------------------------------------------------------------

    def create_vpe(self, name: str, pe_type: str | None = None,
                   creator: VpeObject | None = None):
        """Generator: allocate a PE, create the VPE, wire its syscall
        channel.  Returns the :class:`VpeObject`.

        With :attr:`multiplexing` enabled and no free PE, the VPE is
        queued on a time-shared PE instead (general-purpose cores only);
        the creator's PE is the preferred victim.
        """
        pe = self.platform.find_free_pe(pe_type)
        if pe is None or pe.node == self.node:
            if self.multiplexing and pe_type in (None, "xtensa"):
                preferred = creator.node if creator is not None else None
                vpe = self._create_multiplexed(name, preferred)
                if vpe is not None:
                    return vpe
            raise SyscallError(
                f"no free PE of type {pe_type or 'any'} for VPE {name!r}"
            )
        vpe = VpeObject(name, pe, next(self._vpe_ids))
        self.vpes[vpe.id] = vpe
        # Reserve the PE immediately so concurrent creates cannot race.
        pe.reserve()
        yield from self.wire_syscall_channel(vpe)
        # Self capability and a memory capability for the PE's SPM, used
        # by the parent for application loading (Section 4.5.5).
        vpe.captable.insert(Capability(CapKind.VPE, vpe))
        spm_cap = Capability(
            CapKind.MEM,
            MemObject(pe.node, 0, pe.spm_data.size, MemoryPerm.RW),
        )
        vpe.captable.insert(spm_cap)
        self.ctxsw.adopt(vpe)
        return vpe

    def _create_multiplexed(self, name: str,
                            preferred_node: int | None = None
                            ) -> VpeObject | None:
        """Queue a VPE on a time-shared PE (no endpoint wiring yet —
        that happens at switch-in)."""
        vpe = self.ctxsw.place(name, preferred_node)
        if vpe is None:
            return None
        vpe.captable.insert(Capability(CapKind.VPE, vpe))
        # The loader capability targets the DRAM staging area, not the
        # (occupied) SPM.
        vpe.captable.insert(
            Capability(CapKind.MEM, self.ctxsw.staging_object(vpe))
        )
        return vpe

    def wire_syscall_channel(self, vpe: VpeObject):
        """Generator: configure the standard endpoints of a VPE's DTU
        (reply ringbuffer + send gate to the kernel)."""
        yield from self.dtu.configure_remote(
            vpe.node,
            "configure",
            APP_REPLY_EP,
            EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=REPLY_SLOT_BYTES,
                slot_count=REPLY_RING_SLOTS,
            ),
        )
        # The label is the VPE id, chosen by the kernel and unforgeable
        # by the application.
        yield from self.dtu.configure_remote(
            vpe.node,
            "configure",
            APP_SYSCALL_EP,
            EndpointRegisters.send_config(
                target_node=self.node,
                target_ep=KERNEL_SYSCALL_EP,
                label=vpe.id,
                credits=2,
                msg_size=SYSCALL_MSG_BYTES + HEADER_BYTES,
            ),
        )

    def start_vpe(self, vpe: VpeObject, entry, args: tuple) -> None:
        """Start software on the VPE's PE (the M3 system layer provides
        the actual loader hook)."""
        if vpe.state == VpeState.DEAD:
            raise SyscallError(f"VPE {vpe.name!r} is dead")
        if self.start_software is None:
            raise RuntimeError("kernel has no software loader attached")
        if not vpe.resident:
            # A queued multiplexed VPE runs when it gets the PE.
            self.ctxsw.start_queued(vpe, entry, args)
            return
        vpe.state = VpeState.RUNNING
        self.start_software(vpe, entry, args)

    def vpe_exited(self, vpe: VpeObject, exit_code: object) -> None:
        """Mark a VPE dead, free its PE, and wake all waiters."""
        vpe.state = VpeState.DEAD
        vpe.exit_code = exit_code
        vpe.pe.release()
        for waiter_vpe, slot in vpe.waiters:
            self._reply(waiter_vpe, slot, ("ok", exit_code))
        vpe.waiters.clear()
        for event in vpe.exit_events:
            event.succeed(exit_code)
        vpe.exit_events.clear()
        self.ctxsw.vpe_gone(vpe)
        self.ctxsw.child_exited(vpe)

    # ------------------------------------------------------------------
    # Watchdog: failure detection and recovery
    # ------------------------------------------------------------------

    def start_watchdog(self, period: int = params.KERNEL_WATCHDOG_PERIOD,
                       probe_timeout: int =
                       params.KERNEL_PROBE_TIMEOUT_CYCLES):
        """Start the liveness watchdog on the kernel PE.

        Every ``period`` cycles the kernel probes the DTU of each
        running, resident VPE (the DTU answers in hardware with the
        core's halted bit, so a dead core cannot suppress the answer).
        A probe that reports "halted" — or that gets no answer within
        ``probe_timeout`` cycles, i.e. the whole node is unreachable —
        triggers :meth:`recover_vpe`.
        """
        if self._watchdog is not None and self._watchdog.alive:
            raise RuntimeError("watchdog already running")
        self._watchdog_stop = False
        self._watchdog = self.sim.process(
            self._watchdog_loop(period, probe_timeout), "kernel.watchdog"
        )
        return self._watchdog

    def stop_watchdog(self) -> None:
        """Let the watchdog loop exit at its next wake-up (so a bare
        ``sim.run()`` can drain the event queue)."""
        self._watchdog_stop = True

    def _watchdog_loop(self, period: int, probe_timeout: int):
        while True:
            yield self.sim.delay(period)
            if self._watchdog_stop:
                return
            for vpe in list(self.vpes.values()):
                if (vpe.state != VpeState.RUNNING or not vpe.resident
                        or vpe.failed or vpe.node == self.node):
                    continue
                yield self.sim.delay(params.KERNEL_PROBE_CYCLES, tag=Tag.OS)
                alive = yield from self._probe_vpe(vpe, probe_timeout)
                if not alive:
                    yield from self.recover_vpe(vpe, "watchdog probe failed")

    def _probe_vpe(self, vpe: VpeObject, timeout: int):
        """Generator: probe one VPE's node; returns whether it is alive.

        The probe races against ``timeout`` so an unreachable node
        (partitioned NoC, wedged DTU) is detected too, not only a
        cleanly-reported halted core.
        """
        from repro.sim.events import first_of

        self.probes_sent += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.probes_sent")
            self.sim.obs.instant("probe", "watchdog", vpe.node, vpe=vpe.id)
        probe = self.sim.process(
            self.dtu.configure_remote(vpe.node, "probe"),
            f"kernel.probe.vpe{vpe.id}",
        )
        yield first_of(self.sim, probe.done, self.sim.delay(timeout))
        return probe.done.triggered and probe.done.ok \
            and probe.done.value == "alive"

    def recover_vpe(self, vpe: VpeObject, reason: str):
        """Generator: tear a failed VPE out of the system.

        The PE's core is gone but its DTU still obeys privileged
        configuration packets, so the kernel (1) wipes the dead node's
        endpoints — NoC-level fencing that stops half-dead software
        state from being reachable, (2) quarantines the PE from
        allocation, (3) fails all VPE_WAIT callers with an error reply
        instead of leaving them blocked forever, and (4) revokes every
        capability the VPE held, which invalidates the endpoints other
        VPEs had configured from its grants.
        """
        self.recoveries += 1
        if self.sim.obs is not None:
            self.sim.obs.count("kernel.recoveries")
            self.sim.obs.instant("recover", "watchdog", vpe.node,
                                 vpe=vpe.id, reason=reason)
        vpe.failed = True
        self.sim.ledger.mark(
            self.sim.now, Tag.FAULT,
            f"kernel recovers VPE #{vpe.id} ({vpe.name}): {reason}",
        )
        try:
            yield from self.dtu.configure_remote(vpe.node, "wipe")
        except DtuError:
            pass  # node unreachable: fenced by the NoC instead
        vpe.pe.failed = True  # quarantine: find_free_pe skips it
        occupant = vpe.pe.occupant
        if occupant is not None and occupant.alive:
            try:
                occupant.interrupt("pe-failed")
            except RuntimeError:
                pass  # not blocked; it is dead hardware either way
        error = ("err", f"VPE {vpe.name!r} failed: {reason}")
        for waiter_vpe, slot in vpe.waiters + vpe.yield_waiters:
            self._reply(waiter_vpe, slot, error)
        vpe.waiters.clear()
        vpe.yield_waiters.clear()
        # DEAD before revoking, so _teardown's VPE branch does not try
        # to "exit" the corpse a second time.
        self.vpe_exited(vpe, ("failed", reason))
        for cap in vpe.captable.caps():
            if cap.table is None:
                continue  # removed with an earlier cap's subtree
            for victim in revoke(cap):
                yield from self._teardown(victim)

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def run(self):
        """Generator: the kernel main loop (runs forever on the kernel PE).

        The loop is strictly event-driven and never blocks on a single
        peer: it serves syscall messages *and* service replies (session
        negotiations, Section 4.5.3), so a service doing a syscall while
        the kernel negotiates with it cannot deadlock the system.
        """
        from repro.sim.events import first_of

        if not self._booted:
            yield from self.boot()
        while True:
            progressed = False
            fetched = self.dtu.fetch_message(KERNEL_SYSCALL_EP)
            if fetched is not None:
                yield from self._handle_syscall(*fetched)
                progressed = True
            fetched = self.dtu.fetch_message(KERNEL_REPLY_EP)
            if fetched is not None:
                yield from self._handle_service_reply(*fetched)
                progressed = True
            if not progressed:
                yield first_of(
                    self.sim,
                    self.dtu.signal(KERNEL_SYSCALL_EP).wait(),
                    self.dtu.signal(KERNEL_REPLY_EP).wait(),
                )

    def _handle_syscall(self, slot: int, message):
        """Generator: dispatch one syscall message and reply."""
        self.syscall_count += 1
        obs = self.sim.obs
        started = self.sim.now
        vpe = self.vpes.get(message.label)
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        if vpe is None:
            self.dtu.ack_message(KERNEL_SYSCALL_EP, slot)
            return
        opcode, args = message.payload
        handler = getattr(self, f"_sys_{opcode}", None)
        try:
            if handler is None:
                raise SyscallError(f"unknown syscall {opcode!r}")
            result = yield from handler(vpe, slot, *args)
        except (SyscallError, KeyError, ValueError, TypeError) as exc:
            result = None
            reply = ("err", str(exc))
        else:
            if result is NO_REPLY:
                if obs is not None:
                    obs.observe("kernel.syscall_cycles", self.sim.now - started)
                    obs.complete(opcode, "syscall", self.node, started,
                                 vpe=vpe.id, phase="deferred")
                return
            reply = ("ok", result)
        yield self.sim.delay(params.M3_KERNEL_REPLY_CYCLES, tag=Tag.OS)
        yield self.dtu.reply(KERNEL_SYSCALL_EP, slot, reply, SYSCALL_MSG_BYTES)
        if obs is not None:
            obs.observe("kernel.syscall_cycles", self.sim.now - started)
            obs.complete(opcode, "syscall", self.node, started,
                         vpe=vpe.id, status=reply[0])

    def _reply(self, vpe: VpeObject, slot: int, payload) -> None:
        """Late reply to a deferred syscall (fire-and-forget).

        The waiter may have *migrated* since it sent the syscall; the
        stored reply information is retargeted to its current node
        first (the kernel's bookkeeping of where each VPE lives).
        """
        self._retarget_parked_message(vpe, slot)
        self.sim.ledger.charge(Tag.OS, params.M3_KERNEL_REPLY_CYCLES)
        self.dtu.reply(KERNEL_SYSCALL_EP, slot, payload, SYSCALL_MSG_BYTES)

    def _retarget_parked_message(self, vpe: VpeObject, slot: int) -> None:
        import dataclasses

        ring = self.dtu.ringbuffer(KERNEL_SYSCALL_EP)
        message = ring.peek(slot)
        if message.header.reply_node == vpe.node:
            return
        header = dataclasses.replace(
            message.header, reply_node=vpe.node, reply_ep=APP_REPLY_EP
        )
        ring._slots[slot] = dataclasses.replace(message, header=header)

    # ------------------------------------------------------------------
    # Syscall handlers.  Each is a generator taking (vpe, slot, *args).
    # ------------------------------------------------------------------

    def _sys_noop(self, vpe, slot):
        return ()
        yield  # pragma: no cover - makes this a generator

    def _sys_create_vpe(self, vpe, slot, name, pe_type):
        child = yield from self.create_vpe(name, pe_type, creator=vpe)
        # Give the *parent* a capability for the child VPE and its SPM.
        child_vpe_cap = child.captable.get(0)
        child_spm_cap = child.captable.get(1)
        vpe_sel = vpe.captable.insert(child_vpe_cap.derive())
        spm_sel = vpe.captable.insert(child_spm_cap.derive())
        return (vpe_sel, spm_sel, child.id)

    def _sys_vpe_start(self, vpe, slot, vpe_sel, entry, args):
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        self.start_vpe(child, entry, tuple(args))
        return ()
        yield  # pragma: no cover

    def _sys_vpe_wait(self, vpe, slot, vpe_sel):
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if child.state == VpeState.DEAD:
            return child.exit_code
        child.waiters.append((vpe, slot))
        return NO_REPLY
        yield  # pragma: no cover

    def _sys_vpe_migrate(self, vpe, slot, vpe_sel):
        """Migrate a suspended/queued VPE (the caller must hold its
        capability) to a free PE; returns the new node."""
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        if child.resident and child.state == VpeState.RUNNING:
            raise SyscallError(
                f"VPE {child.name!r} is running; only suspended or queued "
                "VPEs can migrate"
            )
        target = self.platform.find_free_pe()
        if target is None or target.node == self.node:
            raise SyscallError("no free PE to migrate to")
        try:
            self.ctxsw.migrate(child, target)
        except ValueError as exc:
            raise SyscallError(str(exc)) from None
        return target.node
        yield  # pragma: no cover

    def _sys_vpe_wait_yield(self, vpe, slot, vpe_sel):
        """Wait for a VPE *and* offer the caller's PE for reuse —
        Section 3.3's "inform the kernel about a potentially reusable
        core"."""
        if not self.multiplexing:
            return (yield from self._sys_vpe_wait(vpe, slot, vpe_sel))
        child = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        return (yield from self.ctxsw.wait_yield(vpe, slot, child))

    def _sys_exit(self, vpe, slot, exit_code):
        self.dtu.ack_message(KERNEL_SYSCALL_EP, slot)
        self.vpe_exited(vpe, exit_code)
        return NO_REPLY
        yield  # pragma: no cover

    def _sys_request_mem(self, vpe, slot, size, perm_value):
        address = self.memory.allocate(size)
        obj = MemObject(
            self.platform.dram_node, address, size, MemoryPerm(perm_value)
        )
        return vpe.captable.insert(Capability(CapKind.MEM, obj))
        yield  # pragma: no cover

    def _sys_derive_mem(self, vpe, slot, mem_sel, offset, size, perm_value):
        parent_cap = vpe.captable.get(mem_sel, CapKind.MEM)
        derived = parent_cap.obj.slice(offset, size, MemoryPerm(perm_value))
        return vpe.captable.insert(parent_cap.derive(derived))
        yield  # pragma: no cover

    def _sys_create_rgate(self, vpe, slot, slot_size, slot_count):
        obj = RecvGateObject(slot_size=slot_size, slot_count=slot_count)
        return vpe.captable.insert(Capability(CapKind.RECV, obj))
        yield  # pragma: no cover

    def _sys_create_sgate(self, vpe, slot, rgate_sel, label, credits):
        rgate_cap = vpe.captable.get(rgate_sel, CapKind.RECV)
        obj = SendGateObject(rgate_cap.obj, label, credits)
        return vpe.captable.insert(rgate_cap.derive(obj, kind=CapKind.SEND))
        yield  # pragma: no cover

    def _sys_activate(self, vpe, slot, ep_index, cap_sel):
        if not (0 <= ep_index < len(vpe.pe.dtu.eps)):
            raise SyscallError(f"endpoint {ep_index} out of range")
        if cap_sel < 0:
            yield from self.dtu.configure_remote(vpe.node, "invalidate", ep_index)
            return ()
        cap = vpe.captable.get(cap_sel)
        if cap.kind == CapKind.RECV:
            if cap.obj.owner is not None and cap.obj.owner is not vpe:
                raise SyscallError(
                    "an active receive gate cannot move to another VPE"
                )
            cap.obj.owner = vpe
        elif cap.kind == CapKind.SEND and not cap.obj.target.active:
            # Defer until the receiver is ready (Section 4.5.4).
            cap.obj.target.pending_activations.append(
                (vpe, slot, ep_index, cap)
            )
            return NO_REPLY
        registers = self._registers_for(cap)
        yield from self.dtu.configure_remote(
            vpe.node, "configure", ep_index, registers
        )
        self._bind_ep(vpe, ep_index, cap)
        if cap.kind == CapKind.RECV:
            cap.obj.ep_index = ep_index
            self._flush_pending_activations(cap.obj)
        return ()

    def _bind_ep(self, vpe, ep_index: int, cap: Capability) -> None:
        """Record that ``cap`` now occupies (vpe, ep); unbind the previous
        occupant so revocation only invalidates live configurations."""
        key = (vpe.id, ep_index)
        previous = self._ep_bindings.get(key)
        if previous is not None:
            previous.bound_eps.discard(key)
        self._ep_bindings[key] = cap
        cap.bound_eps.add(key)

    def _flush_pending_activations(self, rgate: RecvGateObject) -> None:
        """Complete send-gate activations deferred on ``rgate``."""
        pending, rgate.pending_activations = rgate.pending_activations, []
        for waiter_vpe, slot, ep_index, cap in pending:

            def completion(waiter_vpe=waiter_vpe, slot=slot,
                           ep_index=ep_index, cap=cap):
                registers = self._registers_for(cap)
                yield from self.dtu.configure_remote(
                    waiter_vpe.node, "configure", ep_index, registers
                )
                self._bind_ep(waiter_vpe, ep_index, cap)
                self._reply(waiter_vpe, slot, ("ok", ()))

            self.sim.process(completion(), "kernel.deferred-activate")

    def _registers_for(self, cap: Capability) -> EndpointRegisters:
        if cap.kind == CapKind.SEND:
            gate: SendGateObject = cap.obj
            if gate.target.ep_index is None:
                raise SyscallError("target receive gate is not activated")
            return EndpointRegisters.send_config(
                target_node=gate.target.node,
                target_ep=gate.target.ep_index,
                label=gate.label,
                credits=gate.credits,
                msg_size=gate.target.slot_size,
            )
        if cap.kind == CapKind.RECV:
            gate: RecvGateObject = cap.obj
            return EndpointRegisters.receive_config(
                buffer_addr=0,
                slot_size=gate.slot_size,
                slot_count=gate.slot_count,
            )
        if cap.kind == CapKind.MEM:
            region: MemObject = cap.obj
            return EndpointRegisters.memory_config(
                region.node, region.address, region.size, region.perm
            )
        raise SyscallError(f"cannot activate a {cap.kind.value} capability")

    def _sys_delegate(self, vpe, slot, vpe_sel, src_sel):
        target = vpe.captable.get(vpe_sel, CapKind.VPE).obj
        source_cap = vpe.captable.get(src_sel)
        if source_cap.kind == CapKind.RECV and source_cap.obj.active:
            # "the kernel only allows to delegate/obtain send and memory
            # capabilities, but not receive capabilities" once active
            # (Section 4.5.4); inactive receive gates are still movable.
            raise SyscallError("active receive capabilities cannot be delegated")
        return target.captable.insert(source_cap.derive())
        yield  # pragma: no cover

    def _sys_revoke(self, vpe, slot, src_sel):
        cap = vpe.captable.get(src_sel)
        removed = revoke(cap)
        for victim in removed:
            yield from self._teardown(victim)
        return len(removed)

    def _teardown(self, cap: Capability):
        """Generator: undo hardware/software state behind a revoked cap."""
        # Invalidate every endpoint this capability is configured on —
        # revocation must cut hardware access, not just bookkeeping.
        for vpe_id, ep_index in sorted(cap.bound_eps):
            self._ep_bindings.pop((vpe_id, ep_index), None)
            holder = self.vpes.get(vpe_id)
            if holder is not None and holder.state != VpeState.DEAD:
                yield from self.dtu.configure_remote(
                    holder.node, "invalidate", ep_index
                )
        cap.bound_eps.clear()
        if cap.kind == CapKind.RECV and cap.obj.ep_index is not None:
            cap.obj.ep_index = None
        elif cap.kind == CapKind.VPE:
            vpe: VpeObject = cap.obj
            if vpe.state != VpeState.DEAD:
                # "the owner of the VPE capability could revoke it to let
                # the kernel reset the associated PE" (Section 4.5.5).
                occupant = vpe.pe.occupant
                if occupant is not None and occupant.alive:
                    occupant.interrupt("vpe-revoked")
                self.vpe_exited(vpe, None)
        elif cap.kind == CapKind.MEM and cap.parent is None:
            region: MemObject = cap.obj
            if region.node == self.platform.dram_node:
                self.memory.free(region.address, region.size)

    def _sys_create_srv(self, vpe, slot, name, rgate_sel):
        if name in self.services:
            raise SyscallError(f"service {name!r} already registered")
        rgate_cap = vpe.captable.get(rgate_sel, CapKind.RECV)
        if rgate_cap.obj.ep_index is None:
            raise SyscallError("service receive gate must be activated first")
        service = ServiceObject(name=name, rgate=rgate_cap.obj, owner=vpe)
        self.services[name] = service
        # The kernel<->service channel, "created at service registration"
        # (Section 4.5.3): a send endpoint on the kernel's own DTU.
        ep_index = self._next_service_ep
        if ep_index >= len(self.dtu.eps):
            raise SyscallError("kernel is out of service endpoints")
        self._next_service_ep += 1
        self._service_eps[name] = ep_index
        self.dtu.configure_local(
            "configure",
            ep_index,
            EndpointRegisters.send_config(
                target_node=service.rgate.node,
                target_ep=service.rgate.ep_index,
                label=0,  # label 0 marks the kernel to the service
                credits=service.rgate.slot_count,
                msg_size=service.rgate.slot_size,
            ),
        )
        return vpe.captable.insert(
            rgate_cap.derive(service, kind=CapKind.SERVICE)
        )
        yield  # pragma: no cover

    def _sys_open_session(self, vpe, slot, name):
        service = self.services.get(name)
        if service is None:
            raise SyscallError(f"no service {name!r}")
        session_id = service.next_session_id()
        # Negotiate with the service over the kernel<->service channel;
        # the reply (labelled with the negotiation id) completes the
        # session asynchronously — the kernel loop must stay responsive
        # because the service may be blocked in a syscall of its own.
        negotiation = next(self._negotiation_ids)
        self._pending_sessions[negotiation] = (vpe, slot, service, session_id)
        yield self.dtu.send(
            self._service_eps[name],
            ("open_session", (session_id, vpe.id)),
            SYSCALL_MSG_BYTES,
            reply_ep=KERNEL_REPLY_EP,
            reply_label=negotiation,
        )
        return NO_REPLY

    def _handle_service_reply(self, slot, message):
        """Generator: complete a parked session negotiation."""
        self.dtu.ack_message(KERNEL_REPLY_EP, slot)
        pending = self._pending_sessions.pop(message.label, None)
        if pending is None:
            return
        vpe, syscall_slot, service, session_id = pending
        yield self.sim.delay(params.M3_KERNEL_DISPATCH_CYCLES, tag=Tag.OS)
        status, _detail = message.payload
        if status != "ok":
            self._reply(
                vpe, syscall_slot,
                ("err", f"service {service.name!r} denied the session"),
            )
            return
        session = SessionObject(service=service, label=session_id, client=vpe)
        session_sel = vpe.captable.insert(Capability(CapKind.SESSION, session))
        sgate = SendGateObject(
            target=service.rgate, label=session_id, credits=2
        )
        sgate_sel = vpe.captable.insert(Capability(CapKind.SEND, sgate))
        service.sessions[session_id] = vpe
        self._reply(vpe, syscall_slot, ("ok", (session_sel, sgate_sel)))

    def _sys_srv_delegate(self, vpe, slot, service_sel, session_id,
                          src_mem_sel, offset, size, perm_value):
        service_cap = vpe.captable.get(service_sel, CapKind.SERVICE)
        service: ServiceObject = service_cap.obj
        client = service.sessions.get(session_id)
        if client is None:
            raise SyscallError(f"no session {session_id} at {service.name!r}")
        source_cap = vpe.captable.get(src_mem_sel, CapKind.MEM)
        derived = source_cap.obj.slice(offset, size, MemoryPerm(perm_value))
        return client.captable.insert(source_cap.derive(derived))
        yield  # pragma: no cover
