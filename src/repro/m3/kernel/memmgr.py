"""DRAM region management.

"The kernel is responsible for managing the memories in the system.
That is, it decides which application can use which parts of which
memories" (Section 4.5.4).  A first-fit free list is plenty for the
prototype's single DRAM module.
"""

from __future__ import annotations


class OutOfMemory(Exception):
    """No free region large enough."""


class MemoryManager:
    """First-fit allocator over one linear memory."""

    def __init__(self, base: int, size: int):
        if size <= 0 or base < 0:
            raise ValueError("invalid managed region")
        self.base = base
        self.size = size
        #: sorted list of free (start, length) holes.
        self._free: list[tuple[int, int]] = [(base, size)]

    def allocate(self, size: int, align: int = 64) -> int:
        """Reserve ``size`` bytes; returns the start address."""
        if size <= 0:
            raise ValueError(f"invalid allocation size: {size}")
        if align < 1:
            raise ValueError("alignment must be positive")
        for index, (start, length) in enumerate(self._free):
            aligned = -(-start // align) * align
            waste = aligned - start
            if length >= waste + size:
                remainder_start = aligned + size
                remainder_len = (start + length) - remainder_start
                holes = []
                if waste:
                    holes.append((start, waste))
                if remainder_len:
                    holes.append((remainder_start, remainder_len))
                self._free[index : index + 1] = holes
                return aligned
        raise OutOfMemory(f"no free region of {size}B available")

    def free(self, address: int, size: int) -> None:
        """Return a region to the free list, coalescing neighbours."""
        if size <= 0:
            raise ValueError("invalid free size")
        if address < self.base or address + size > self.base + self.size:
            raise ValueError("freeing outside the managed region")
        self._free.append((address, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for start, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] >= start:
                last_start, last_len = merged[-1]
                if last_start + last_len > start:
                    raise ValueError("double free or overlapping free")
                merged[-1] = (last_start, last_len + length)
            else:
                merged.append((start, length))
        self._free = merged

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def largest_hole(self) -> int:
        return max((length for _, length in self._free), default=0)
