"""The syscall ABI: operation codes carried in DTU messages.

"System calls are not handled on the same core by performing a mode
switch, but by sending a message over the DTU to the corresponding
kernel PE" (Section 3).  Each syscall message is
``(opcode, args_tuple)``; each reply is ``("ok", result)`` or
``("err", text)``.
"""

from __future__ import annotations

# -- VPE lifecycle -----------------------------------------------------------

#: (name, pe_type|None) -> (vpe_sel, spm_mem_sel); allocates a PE.
CREATE_VPE = "create_vpe"
#: (vpe_sel, entry, args) -> ok; starts software on the VPE's PE.
VPE_START = "vpe_start"
#: (vpe_sel,) -> exit_code; reply deferred until the VPE exits.
VPE_WAIT = "vpe_wait"
#: (vpe_sel,) -> exit_code; like VPE_WAIT but offers the caller's PE
#: for reuse while waiting (context switching, Sections 3.3/7).
VPE_WAIT_YIELD = "vpe_wait_yield"
#: (vpe_sel,) -> new node; move a suspended/queued VPE to a free PE
#: ("we plan to allow the migration of VPEs", Section 4.3).
VPE_MIGRATE = "vpe_migrate"
#: (vpe_sel,) -> new node; live-migrate a *running* VPE: checkpoint its
#: PE-local state, restore it on a free PE, and redirect in-flight
#: messages for a window while the old DTU drains.
MIGRATE_VPE = "migrate_vpe"
#: (exit_code,) -> no reply; marks the calling VPE dead.
EXIT = "exit"

#: (,) -> ok; no-op, for the Figure 3 microbenchmark.
NOOP = "noop"

# -- memory ------------------------------------------------------------------

#: (size, perm) -> mem_sel; allocates a DRAM region.
REQUEST_MEM = "request_mem"
#: (mem_sel, offset, size, perm) -> new mem_sel (a derived sub-region).
DERIVE_MEM = "derive_mem"

# -- gates -------------------------------------------------------------------

#: (slot_size, slot_count) -> rgate_sel.
CREATE_RGATE = "create_rgate"
#: (rgate_sel, label, credits) -> sgate_sel.
CREATE_SGATE = "create_sgate"
#: (ep_index, cap_sel) -> ok; configure one of the caller's endpoints
#: for the gate behind ``cap_sel`` (or invalidate it with cap_sel < 0).
ACTIVATE = "activate"

# -- capability exchange ------------------------------------------------------

#: (vpe_sel, src_sel) -> selector in the target VPE's table.
DELEGATE = "delegate"
#: (src_sel,) -> ok; recursively revoke all grants of the capability.
REVOKE = "revoke"

# -- services and sessions -----------------------------------------------------

#: (name, rgate_sel) -> service_sel; register a service.
CREATE_SRV = "create_srv"
#: (name,) -> (session_sel, sgate_sel); negotiated with the service.
OPEN_SESSION = "open_session"
#: (service_sel, session_id, src_mem_sel, offset, size, perm) -> selector
#: in the session's client table; the service-side delegation used by
#: m3fs to hand out extent capabilities.
SRV_DELEGATE = "srv_delegate"

ALL_OPCODES = frozenset(
    {
        CREATE_VPE,
        VPE_START,
        VPE_WAIT,
        VPE_WAIT_YIELD,
        VPE_MIGRATE,
        MIGRATE_VPE,
        EXIT,
        NOOP,
        REQUEST_MEM,
        DERIVE_MEM,
        CREATE_RGATE,
        CREATE_SGATE,
        ACTIVATE,
        DELEGATE,
        REVOKE,
        CREATE_SRV,
        OPEN_SESSION,
        SRV_DELEGATE,
    }
)
