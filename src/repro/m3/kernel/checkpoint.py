"""VPE checkpoints: deterministic in-sim snapshots of PE-local state.

A checkpoint captures everything a VPE keeps on its PE — the data-SPM
image, the DTU endpoint registers, the SPM allocator mark — plus a
summary of its capability table.  The kernel uses checkpoints for two
things: live migration (``migrate_vpe`` re-materialises the state on a
free PE and redirects in-flight messages) and recover-by-migrate (the
watchdog salvages the SPM image off a node whose *core* died — the DTU
keeps answering reads in hardware — and restarts the VPE elsewhere).

Checkpoints are in-sim objects, not serialised blobs, but they are
deterministic: two runs with the same seed produce byte-identical SPM
images and identical register tuples, which is what the determinism
gates in ``eval/domain_failover`` rely on.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class VpeCheckpoint:
    """One VPE's PE-local state, snapshotted at ``taken_at``."""

    vpe_id: int
    name: str
    #: the node the VPE ran on when the snapshot was taken.
    node: int
    #: full data-SPM image (the code SPM is re-loaded from the entry).
    spm_image: bytes
    #: the PE's bump-allocator position, so live restore keeps buffer
    #: addresses stable.  Restart-style recovery deliberately ignores
    #: it: re-running the entry re-allocates the same addresses and
    #: finds its previous progress in the restored image.
    alloc_mark: int
    #: ``(index, EndpointRegisters)`` pairs for every configured
    #: endpoint, cloned via ``dataclasses.replace`` so later mutation
    #: of the live registers cannot leak into the snapshot.
    eps: tuple
    #: ``(selector, kind)`` summary of the capability table — the caps
    #: themselves stay kernel-owned; the summary exists for audits and
    #: round-trip tests.
    caps: tuple
    taken_at: int

    @property
    def spm_bytes(self) -> int:
        return len(self.spm_image)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VpeCheckpoint vpe={self.vpe_id} node={self.node} "
            f"{self.spm_bytes}B spm, {len(self.eps)} eps, "
            f"{len(self.caps)} caps @ {self.taken_at}>"
        )


@dataclasses.dataclass(frozen=True)
class MigrationDescriptor:
    """A checkpoint serialized for the ``ik_migrate_in`` RPC.

    Everything the *target* kernel needs to re-materialize a VPE in its
    own domain: the checkpoint image and endpoint registers, a
    capability manifest rich enough to rebuild memory grants (regions
    left behind in the source domain become foreign-flagged caps), and
    the software context.  In a real system the software state lives in
    the SPM image itself; the in-sim ``env`` object stands in for it,
    the same way ``ik_vpe_start`` carries entry callables.
    """

    vpe_id: int
    name: str
    node: int
    spm_image: bytes
    alloc_mark: int
    eps: tuple
    #: ``(selector, kind value, detail)`` rows; ``detail`` is
    #: ``(node, address, size, perm value, foreign)`` for memory caps
    #: and ``None`` for everything else.
    caps: tuple
    taken_at: int
    migrations: int
    last_entry: object
    env: object

    @classmethod
    def capture(cls, vpe, checkpoint: VpeCheckpoint,
                env=None) -> "MigrationDescriptor":
        """Wrap ``checkpoint`` plus ``vpe``'s capability manifest."""
        from repro.m3.kernel.capability import CapKind

        manifest = []
        for cap in vpe.captable.caps():
            if cap.table is None:
                continue
            if cap.kind == CapKind.MEM:
                obj = cap.obj
                detail = (obj.node, obj.address, obj.size, obj.perm.value,
                          cap.foreign)
            else:
                detail = None
            manifest.append((cap.selector, cap.kind.value, detail))
        return cls(
            vpe_id=vpe.id,
            name=vpe.name,
            node=checkpoint.node,
            spm_image=checkpoint.spm_image,
            alloc_mark=checkpoint.alloc_mark,
            eps=checkpoint.eps,
            caps=tuple(manifest),
            taken_at=checkpoint.taken_at,
            migrations=vpe.migrations,
            last_entry=vpe.last_entry,
            env=env,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MigrationDescriptor vpe={self.vpe_id} node={self.node} "
            f"{len(self.spm_image)}B spm, {len(self.eps)} eps, "
            f"{len(self.caps)} caps @ {self.taken_at}>"
        )
