"""VPE checkpoints: deterministic in-sim snapshots of PE-local state.

A checkpoint captures everything a VPE keeps on its PE — the data-SPM
image, the DTU endpoint registers, the SPM allocator mark — plus a
summary of its capability table.  The kernel uses checkpoints for two
things: live migration (``migrate_vpe`` re-materialises the state on a
free PE and redirects in-flight messages) and recover-by-migrate (the
watchdog salvages the SPM image off a node whose *core* died — the DTU
keeps answering reads in hardware — and restarts the VPE elsewhere).

Checkpoints are in-sim objects, not serialised blobs, but they are
deterministic: two runs with the same seed produce byte-identical SPM
images and identical register tuples, which is what the determinism
gates in ``eval/domain_failover`` rely on.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class VpeCheckpoint:
    """One VPE's PE-local state, snapshotted at ``taken_at``."""

    vpe_id: int
    name: str
    #: the node the VPE ran on when the snapshot was taken.
    node: int
    #: full data-SPM image (the code SPM is re-loaded from the entry).
    spm_image: bytes
    #: the PE's bump-allocator position, so live restore keeps buffer
    #: addresses stable.  Restart-style recovery deliberately ignores
    #: it: re-running the entry re-allocates the same addresses and
    #: finds its previous progress in the restored image.
    alloc_mark: int
    #: ``(index, EndpointRegisters)`` pairs for every configured
    #: endpoint, cloned via ``dataclasses.replace`` so later mutation
    #: of the live registers cannot leak into the snapshot.
    eps: tuple
    #: ``(selector, kind)`` summary of the capability table — the caps
    #: themselves stay kernel-owned; the summary exists for audits and
    #: round-trip tests.
    caps: tuple
    taken_at: int

    @property
    def spm_bytes(self) -> int:
        return len(self.spm_image)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VpeCheckpoint vpe={self.vpe_id} node={self.node} "
            f"{self.spm_bytes}B spm, {len(self.eps)} eps, "
            f"{len(self.caps)} caps @ {self.taken_at}>"
        )
