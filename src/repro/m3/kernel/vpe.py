"""Kernel-side VPE objects.

"Applications consist of at least one VPE, whereas each VPE is assigned
to exactly one PE at any point in time" (Section 4.3); the kernel
tracks each VPE's PE binding, capability table, and exit state.
"""

from __future__ import annotations

import enum
import typing

from repro.m3.kernel.capability import CapTable

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.pe import ProcessingElement
    from repro.sim.events import Event


class VpeState(enum.Enum):
    INIT = "init"  # created, nothing running yet
    RUNNING = "running"
    DEAD = "dead"  # exited or killed


class VpeObject:
    """One virtual processing element, bound to a physical PE."""

    def __init__(self, name: str, pe: "ProcessingElement", vpe_id: int):
        # Ids are allocated by the owning kernel, not a process-global
        # counter: exported traces must be a pure function of the run,
        # not of how many systems this Python process booted before it.
        self.id = vpe_id
        self.name = name
        self.pe = pe
        self.captable = CapTable(self)
        self.state = VpeState.INIT
        self.exit_code: object = None
        #: set when the kernel's watchdog declared this VPE's PE dead.
        self.failed = False
        #: pending VPE_WAIT replies: (waiting VPE, ringbuffer slot) pairs.
        self.waiters: list[tuple] = []
        #: pending vpe_wait_yield replies (context-switching waiters).
        self.yield_waiters: list[tuple] = []
        #: parked inter-kernel ``vpe_wait`` requests (ringbuffer slots on
        #: the owning kernel's kernel<->kernel endpoint) — the exit
        #: notification that makes VPE_WAIT work across kernel domains.
        self.remote_waiters: list[int] = []
        #: the kernel that owns this VPE (set at creation; ``None`` only
        #: for hand-built VPEs in unit tests).
        self.kernel = None
        #: events the kernel fires on exit (for boot-level joins).
        self.exit_events: list["Event"] = []
        # -- context-switching state (see repro.m3.kernel.ctxsw) --------
        #: whether the VPE currently occupies its PE.
        self.resident = True
        #: whether a saved SPM image exists in the staging area.
        self.saved = False
        #: DRAM staging area for the SPM image (queued/saved VPEs).
        self.staging_addr: int | None = None
        #: entry point recorded before the first switch-in.
        self.pending_entry: tuple | None = None
        #: a deferred syscall reply to deliver after restoration.
        self.parked_reply: tuple | None = None
        #: SPM bump-allocator mark captured at switch-out.
        self.saved_alloc_mark = 0
        # -- checkpoint/migration state (see repro.m3.kernel.checkpoint) -
        #: ``(entry, args)`` recorded at start, so recover-by-migrate can
        #: restart the software on a new PE after restoring its SPM.
        self.last_entry: tuple | None = None
        #: the most recent :class:`VpeCheckpoint` taken of this VPE.
        self.last_checkpoint = None
        #: how many times this VPE has been migrated between PEs.
        self.migrations = 0

    @property
    def node(self) -> int:
        return self.pe.node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VPE #{self.id} {self.name!r} on PE{self.node} {self.state.value}>"
