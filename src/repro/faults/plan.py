"""Seeded fault plans: deterministic NoC and PE fault injection.

MGSim-style deterministic event injection for the M3 reproduction: a
:class:`FaultPlan` owns a seeded PRNG (never wall-clock — the engine is
deterministic, and so are fault schedules) and a set of composable
rules that drop, corrupt, or delay individual NoC packets, or stall and
kill whole PEs.  The plan hooks into
:meth:`repro.noc.network.Network.send` and into
:class:`repro.hw.pe.ProcessingElement`; with no plan installed the
network pays exactly one ``is None`` branch per packet, so all
calibrated figures stay cycle-identical.

Every injected fault is recorded twice: in :attr:`FaultPlan.events`
(for assertions and reports) and as a :class:`~repro.sim.ledger.TimeLedger`
mark under the ``fault`` tag (so faults show up next to the App/OS/Xfer
cycle accounting in traces).
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.sim.ledger import Tag

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.platform import Platform
    from repro.noc.network import Network
    from repro.noc.packet import Packet
    from repro.sim import Simulator

#: packet-fault actions a rule can take.
DROP = "drop"
CORRUPT = "corrupt"
DELAY = "delay"

#: every packet kind the NoC carries; a rule naming anything else is a
#: typo that would silently never fire, so construction rejects it.
KNOWN_PACKET_KINDS = frozenset({
    "message",
    "reply",
    "msg_ack",
    "mem_read",
    "mem_write",
    "mem_resp",
    "ep_config",
    "config_ack",
})


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """One injected fault, as recorded in :attr:`FaultPlan.events`."""

    cycle: int
    action: str  # drop | corrupt | delay | kill | stall
    detail: str


@dataclasses.dataclass(frozen=True)
class PacketRule:
    """A rate-based packet fault, optionally windowed and targeted.

    ``rate`` is the per-matching-packet probability of firing.  The
    filters compose: a packet must match *all* given filters for the
    rule to draw from the PRNG at all (non-matching packets consume no
    randomness, which keeps unrelated traffic schedules independent).
    """

    action: str
    rate: float
    #: restrict to these packet kinds (None = all kinds).
    kinds: frozenset | None = None
    #: restrict to packets injected at / destined to one node.
    source: int | None = None
    destination: int | None = None
    #: restrict to packets whose XY path crosses this directed link.
    link: tuple | None = None
    #: half-open cycle window [start, end) in which the rule is armed.
    window: tuple | None = None
    #: delay bounds in cycles (DELAY rules only).
    delay_min: int = 0
    delay_max: int = 0

    def matches(self, packet: "Packet", now: int, network: "Network") -> bool:
        if self.window is not None and not (self.window[0] <= now < self.window[1]):
            return False
        if self.kinds is not None and packet.kind not in self.kinds:
            return False
        if self.source is not None and packet.source != self.source:
            return False
        if self.destination is not None and packet.destination != self.destination:
            return False
        if self.link is not None:
            if packet.source == packet.destination:
                return False
            path = network.router.links_on_path(packet.source, packet.destination)
            if tuple(self.link) not in path:
                return False
        return True


@dataclasses.dataclass(frozen=True)
class NodeFault:
    """A whole-PE fault: kill the core, or stall the node's NoC interface."""

    action: str  # kill | stall
    node: int
    at: int
    #: stall duration in cycles (stalls only).
    duration: int = 0

    @property
    def end(self) -> int:
        return self.at + self.duration


class FaultPlan:
    """A deterministic, seeded schedule of NoC and PE faults.

    Build a plan with the fluent rule methods, then :meth:`install` it
    on a :class:`~repro.hw.platform.Platform` (packet rules + node
    faults) or a bare :class:`~repro.noc.network.Network` (packet rules
    only).  The same seed over the same simulation produces the same
    fault schedule, packet for packet.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)
        self.packet_rules: list[PacketRule] = []
        self.node_faults: list[NodeFault] = []
        #: every injected fault, in injection order.
        self.events: list[FaultRecord] = []
        self.sim: "Simulator | None" = None

    # -- rule construction (fluent) -------------------------------------

    def drop(self, rate: float, **filters) -> "FaultPlan":
        """Drop matching packets with probability ``rate``."""
        return self._rule(DROP, rate, **filters)

    def corrupt(self, rate: float, **filters) -> "FaultPlan":
        """Flip bits in matching packets: the receiver's CRC check
        discards them, so a corruption behaves like a loss that still
        burned NoC bandwidth."""
        return self._rule(CORRUPT, rate, **filters)

    def delay(self, rate: float, cycles: tuple, **filters) -> "FaultPlan":
        """Delay matching packets by a uniform draw from ``cycles``."""
        lo, hi = cycles
        if lo < 0 or hi < lo:
            raise ValueError(f"bad delay bounds {cycles}")
        return self._rule(DELAY, rate, delay_min=lo, delay_max=hi, **filters)

    def _rule(self, action: str, rate: float, kinds=None, source=None,
              destination=None, link=None, window=None,
              delay_min=0, delay_max=0) -> "FaultPlan":
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"rate must be a probability, got {rate}")
        if kinds is not None:
            unknown = sorted(set(kinds) - KNOWN_PACKET_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown packet kind(s) {unknown}; valid kinds are "
                    f"{sorted(KNOWN_PACKET_KINDS)}"
                )
        if window is not None:
            start, end = window
            if start < 0 or end < start:
                raise ValueError(
                    f"bad fault window {tuple(window)}: need 0 <= start <= end"
                )
        for label, node in (("source", source), ("destination", destination)):
            if node is not None and node < 0:
                raise ValueError(f"{label} node must be >= 0, got {node}")
        if link is not None:
            if len(tuple(link)) != 2 or any(n < 0 for n in link):
                raise ValueError(
                    f"link must be a (src, dst) pair of node ids, got {link!r}"
                )
        self.packet_rules.append(
            PacketRule(
                action=action,
                rate=rate,
                kinds=frozenset(kinds) if kinds is not None else None,
                source=source,
                destination=destination,
                link=tuple(link) if link is not None else None,
                window=tuple(window) if window is not None else None,
                delay_min=delay_min,
                delay_max=delay_max,
            )
        )
        return self

    def kill_pe(self, node: int, at: int) -> "FaultPlan":
        """Halt the core at ``node`` at cycle ``at``.

        The *core* dies; the DTU survives — it is separate hardware, and
        the kernel keeps its remote-configuration grip on the node
        (which is exactly what makes kernel-driven recovery possible).
        """
        if at < 0:
            raise ValueError(f"kill cycle must be >= 0, got {at}")
        self.node_faults.append(NodeFault("kill", node, at))
        return self

    def stall_pe(self, node: int, at: int, duration: int) -> "FaultPlan":
        """Clock-gate the node's NoC interface for ``duration`` cycles:
        packets to or from the node are held until the window ends.
        (The model keeps the core's own computation advancing — only
        the node's NoC traffic stalls.)"""
        if at < 0:
            raise ValueError(f"stall cycle must be >= 0, got {at}")
        if duration <= 0:
            raise ValueError("stall duration must be positive")
        self.node_faults.append(NodeFault("stall", node, at, duration))
        return self

    # -- installation ----------------------------------------------------

    def install(self, target) -> "FaultPlan":
        """Hook the plan into a Platform (or bare Network) and schedule
        the node faults.  Returns self."""
        from repro.hw.platform import Platform

        if isinstance(target, Platform):
            network, platform = target.network, target
        else:
            network, platform = target, None
        if network.fault_plan is not None:
            raise RuntimeError("network already has a fault plan installed")
        # Validate every target against the actual topology now, so a
        # plan naming a nonexistent PE or link fails loudly at install
        # time instead of silently never firing.
        for fault in self.node_faults:
            if platform is not None:
                platform.pe(fault.node)  # raises ValueError on a bad node
            else:
                network.topology._check(fault.node)
        for rule in self.packet_rules:
            for node in (rule.source, rule.destination):
                if node is not None:
                    network.topology._check(node)
            if rule.link is not None:
                network.link(*rule.link)  # raises ValueError on a bad link
        self.sim = network.sim
        network.fault_plan = self
        for fault in self.node_faults:
            if fault.action == "kill":
                if platform is None:
                    raise ValueError("PE faults need a Platform, not a bare Network")
                self._schedule_kill(platform, fault)
        return self

    def _schedule_kill(self, platform: "Platform", fault: NodeFault) -> None:
        pe = platform.pe(fault.node)

        def kill(_):
            self._record(fault.at, "kill", f"PE {fault.node} core halted")
            pe.fail(cause=f"fault-plan kill at cycle {fault.at}")

        self.sim.schedule(max(0, fault.at - self.sim.now), kill)

    # -- the per-packet decision ------------------------------------------

    def judge(self, packet: "Packet", now: int,
              network: "Network") -> tuple[str, int]:
        """Decide this packet's fate: ``(verdict, extra_delay_cycles)``.

        ``verdict`` is ``"deliver"``, ``"drop"``, or ``"corrupt"``;
        stall windows and DELAY rules accumulate into the extra delay.
        Called once per packet from :meth:`Network.send`, which keeps
        the PRNG consumption order deterministic.
        """
        extra = 0
        for fault in self.node_faults:
            if fault.action != "stall":
                continue
            if packet.destination != fault.node and packet.source != fault.node:
                continue
            if fault.at <= now < fault.end:
                held = fault.end - now
                extra = max(extra, held)
                self._record(now, "stall", f"{packet.kind} held {held} cycles "
                                           f"at stalled node {fault.node}")
        for rule in self.packet_rules:
            if not rule.matches(packet, now, network):
                continue
            if self.rng.random() >= rule.rate:
                continue
            if rule.action == DROP:
                self._record(now, DROP, self._describe(packet))
                return DROP, 0
            if rule.action == CORRUPT:
                self._record(now, CORRUPT, self._describe(packet))
                return CORRUPT, extra
            jitter = self.rng.randint(rule.delay_min, rule.delay_max)
            extra += jitter
            self._record(now, DELAY, f"{self._describe(packet)} +{jitter} cycles")
        if extra and self.sim is not None:
            self.sim.ledger.charge(Tag.FAULT, extra)
        return "deliver", extra

    def _describe(self, packet: "Packet") -> str:
        return (f"{packet.kind} #{packet.packet_id} "
                f"{packet.source}->{packet.destination}")

    def _record(self, cycle: int, action: str, detail: str) -> None:
        self.events.append(FaultRecord(cycle, action, detail))
        if self.sim is not None:
            self.sim.ledger.mark(cycle, Tag.FAULT, f"{action}: {detail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultPlan seed={self.seed} rules={len(self.packet_rules)} "
                f"node_faults={len(self.node_faults)} "
                f"injected={len(self.events)}>")
