"""Deterministic fault injection for the NoC and the PEs.

See :mod:`repro.faults.plan` for the model; the short version:

>>> plan = FaultPlan(seed=42).drop(rate=1e-3).kill_pe(node=2, at=50_000)
>>> plan.install(platform)

With no plan installed every fast path is untouched — the reliability
and fault machinery is zero-overhead by default.
"""

from repro.faults.plan import (
    CORRUPT,
    DELAY,
    DROP,
    FaultPlan,
    FaultRecord,
    NodeFault,
    PacketRule,
)

__all__ = [
    "FaultPlan",
    "FaultRecord",
    "NodeFault",
    "PacketRule",
    "DROP",
    "CORRUPT",
    "DELAY",
]
